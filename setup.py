"""Setuptools shim (metadata lives in pyproject.toml).

Kept so the package installs in offline environments whose setuptools
predates PEP 660 editable wheels (legacy `pip install -e .` path).
"""

from setuptools import setup

setup()
