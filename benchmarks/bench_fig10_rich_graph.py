"""Figure 10: the ERV model's rich bibliographical graph.

The paper shows the out-degree of the ``author`` rectangle following the
requested Zipfian and the in-degree following the requested Gaussian.
Regenerates that rectangle and validates both marginals.
"""

import numpy as np
import pytest

from repro.analysis import fit_gaussian, fit_kronecker_class_slope
from repro.rich_graph import RichGraphGenerator, bibliographical_config

VERTICES = 1 << 14


@pytest.fixture(scope="module")
def author_degrees():
    config = bibliographical_config(VERTICES)
    typed = RichGraphGenerator(config, seed=21).generate()
    author = typed[0]
    src_lo, src_hi = config.vertex_range("researcher")
    dst_lo, dst_hi = config.vertex_range("paper")
    out_deg = np.bincount(author.edges[:, 0] - src_lo,
                          minlength=src_hi - src_lo)
    in_deg = np.bincount(author.edges[:, 1] - dst_lo,
                         minlength=dst_hi - dst_lo)
    return config, author, out_deg, in_deg


def test_figure10_table(benchmark, author_degrees, table):
    config, author, out_deg, in_deg = author_degrees

    def rows():
        in_fit = fit_gaussian(in_deg)
        return [
            ["out (researcher)", "Zipfian",
             f"slope {author.rule.out_distribution.slope}",
             f"slope {fit_kronecker_class_slope(out_deg):.3f}"],
            ["in (paper)", "Gaussian",
             "mean |E|/|Vpaper|",
             f"mean {in_fit.mean:.2f}, std {in_fit.std:.2f}, "
             f"kurtosis {in_fit.excess_kurtosis:.2f}"],
        ]

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 10: author rectangle degree marginals",
          ["side", "requested", "target", "measured"], data)


def test_out_degree_zipfian(benchmark, author_degrees):
    _, author, out_deg, _ = author_degrees
    slope = benchmark.pedantic(
        lambda: fit_kronecker_class_slope(out_deg), rounds=1, iterations=1)
    assert abs(slope - author.rule.out_distribution.slope) < 0.3


def test_in_degree_gaussian(benchmark, author_degrees):
    config, author, _, in_deg = author_degrees
    fit = benchmark.pedantic(lambda: fit_gaussian(in_deg), rounds=1,
                             iterations=1)
    assert fit.looks_gaussian
    expected_mean = (config.rule_edge_budget(author.rule)
                     / in_deg.size)
    assert abs(fit.mean - expected_mean) / expected_mean < 0.05


def test_out_degree_not_gaussian(benchmark, author_degrees):
    """The two marginals really are different families."""
    _, _, out_deg, _ = author_degrees
    fit = benchmark.pedantic(lambda: fit_gaussian(out_deg), rounds=1,
                             iterations=1)
    assert not fit.looks_gaussian


def test_rich_generation_throughput(benchmark):
    config = bibliographical_config(1 << 12)

    def run():
        return RichGraphGenerator(config, seed=22).all_triples()

    triples = benchmark(run)
    assert triples.shape[0] > 10000
