"""External-memory merge engine benchmarks: streaming vs naive merge,
and the bounded-RSS proof run.

The pipelined engine (:mod:`repro.util.external_sort`) replaced a
whole-array external sort; these benchmarks keep it honest:

- ``test_streaming_beats_naive`` is the CI perf-smoke gate: the chunked
  k-way merge must sustain >= 1.5x the keys/s of a naive element-level
  ``heapq.merge`` + Python dedup over the same scale-18 spill volume
  (it lands far above that — the margin is a regression tripwire, not a
  target).
- ``test_spill_exceeds_rss_cap`` is the bounded-memory proof: a fresh
  subprocess spills and merges several times more bytes than a hard
  peak-RSS cap, and ``resource.getrusage`` must show the process never
  grew past the cap while ``extsort.spill_bytes`` shows the volume
  really went through disk.
- ``test_emit_bench_json`` writes ``BENCH_extmem.json`` at the repo
  root so later PRs have an engine-perf trajectory to compare against.
"""

import heapq
import itertools
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.telemetry import registry, reset_telemetry
from repro.util.external_sort import (_RunReader, collect_chunks,
                                      iter_unique_keys)
from repro.util.spill import SpillStore

SMOKE_SCALE = 18
EDGE_FACTOR = 16
NUM_RUNS = 16
FAN_IN = 4
SEED = 23

#: Hard peak-RSS cap for the proof run (bytes) — the merge must move
#: several times this volume through disk without ever holding it.
RSS_CAP_BYTES = 256 * 1024 * 1024

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _spill_runs(directory, total_keys, num_runs, seed=SEED):
    """Spill ``num_runs`` sorted runs of random packed keys."""
    rng = np.random.default_rng(seed)
    space = np.int64(1) << np.int64(SMOKE_SCALE + 8)
    store = SpillStore(directory)
    per_run = total_keys // num_runs
    for _ in range(num_runs):
        store.add_run(np.sort(rng.integers(0, space, size=per_run,
                                           dtype=np.int64)))
    return store


def _naive_merge_rate(store):
    """Element-level ``heapq.merge`` + Python dedup: the shape of merge
    the chunked engine replaced.  Returns (unique_keys, seconds)."""
    readers = [_RunReader(p, 1 << 16) for p in store.runs]
    t0 = time.perf_counter()
    unique = 0
    for _key, _ in itertools.groupby(heapq.merge(*readers)):
        unique += 1
    seconds = time.perf_counter() - t0
    for reader in readers:
        reader.close()
    return unique, seconds


def _streaming_merge_rate(store):
    """The bounded fan-in chunked merge. Returns (unique_keys, seconds)."""
    t0 = time.perf_counter()
    unique = 0
    for chunk in store.iter_unique(fan_in=FAN_IN):
        unique += int(chunk.size)
    return unique, time.perf_counter() - t0


def _measure(total_keys):
    with tempfile.TemporaryDirectory(prefix="bench-extmem-") as work:
        store = _spill_runs(Path(work) / "spill", total_keys, NUM_RUNS)
        naive_unique, naive_s = _naive_merge_rate(store)
        stream_unique, stream_s = _streaming_merge_rate(store)
    assert stream_unique == naive_unique
    return {
        "scale": SMOKE_SCALE,
        "total_keys": total_keys,
        "unique_keys": stream_unique,
        "num_runs": NUM_RUNS,
        "fan_in": FAN_IN,
        "naive_seconds": round(naive_s, 4),
        "streaming_seconds": round(stream_s, 4),
        "naive_keys_per_second": round(total_keys / naive_s),
        "streaming_keys_per_second": round(total_keys / stream_s),
        "speedup": round((total_keys / stream_s)
                         / (total_keys / naive_s), 2),
    }


def _rss_proof_code(work_dir):
    """Script for the fresh-process bounded-RSS proof run."""
    return (
        "import json, resource, sys\n"
        "from pathlib import Path\n"
        "import numpy as np\n"
        "from repro.telemetry import registry\n"
        "from repro.util.spill import SpillStore\n"
        f"work = Path({str(work_dir)!r})\n"
        "rng = np.random.default_rng(7)\n"
        "store = SpillStore(work / 'spill')\n"
        "space = np.int64(1) << np.int64(26)\n"
        "for _ in range(32):\n"
        "    store.add_run(np.sort(rng.integers(0, space,\n"
        "        size=1_000_000, dtype=np.int64)))\n"
        "unique = 0\n"
        "for chunk in store.iter_unique(chunk_items=1 << 16, fan_in=4):\n"
        "    unique += int(chunk.size)\n"
        "rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss\n"
        "spilled = registry().counter('extsort.spill_bytes').value\n"
        "json.dump({'unique': unique, 'rss_bytes': rss_kb * 1024,\n"
        "           'spill_bytes': spilled}, sys.stdout)\n"
    )


def _run_rss_proof():
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    with tempfile.TemporaryDirectory(prefix="bench-extmem-rss-") as work:
        out = subprocess.run(
            [sys.executable, "-c", _rss_proof_code(work)],
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


def test_streaming_beats_naive(table):
    """CI perf smoke: the chunked engine must hold >= 1.5x the naive
    element-level merge's throughput at the scale-18 spill volume."""
    total_keys = EDGE_FACTOR << SMOKE_SCALE
    record = _measure(total_keys)
    table(f"Streaming vs naive merge (scale {SMOKE_SCALE}, "
          f"{NUM_RUNS} runs, fan-in {FAN_IN})",
          ["engine", "keys/s", "seconds", "speedup"],
          [["naive heapq", f"{record['naive_keys_per_second']:,}",
            record["naive_seconds"], "1.00x"],
           ["streaming", f"{record['streaming_keys_per_second']:,}",
            record["streaming_seconds"], f"{record['speedup']:.2f}x"]])
    assert record["speedup"] >= 1.5, (
        f"streaming merge only {record['speedup']:.2f}x over the naive "
        f"baseline at scale {SMOKE_SCALE}; the chunked engine regressed")


def test_spill_exceeds_rss_cap(table):
    """Bounded-memory proof: merge a spill volume several times the
    RSS cap in a fresh process that never exceeds the cap."""
    proof = _run_rss_proof()
    table("Bounded-RSS proof run (fresh process)",
          ["metric", "value"],
          [["peak RSS", f"{proof['rss_bytes'] / 2**20:,.0f} MiB"],
           ["bytes spilled", f"{proof['spill_bytes'] / 2**20:,.0f} MiB"],
           ["RSS cap", f"{RSS_CAP_BYTES / 2**20:,.0f} MiB"],
           ["unique keys", f"{proof['unique']:,}"]])
    assert proof["spill_bytes"] > RSS_CAP_BYTES, (
        "proof run did not spill more than the RSS cap; raise the "
        "workload")
    assert proof["rss_bytes"] < RSS_CAP_BYTES, (
        f"peak RSS {proof['rss_bytes'] / 2**20:.0f} MiB breached the "
        f"{RSS_CAP_BYTES / 2**20:.0f} MiB cap: the merge is no longer "
        "memory-bounded")


def test_streaming_identical_to_in_memory_small_scale():
    """The streamed merge emits byte-for-byte the keys ``np.unique``
    produces over the same spilled batches (small scale)."""
    rng = np.random.default_rng(3)
    batches = [rng.integers(0, 1 << 16, size=5000, dtype=np.int64)
               for _ in range(9)]
    with tempfile.TemporaryDirectory(prefix="bench-extmem-eq-") as work:
        store = SpillStore(Path(work) / "spill")
        for batch in batches:
            store.add_run(np.sort(batch))
        streamed = collect_chunks(store.iter_unique(chunk_items=512,
                                                    fan_in=2))
        direct = collect_chunks(iter_unique_keys(store.runs,
                                                 prefetch=False))
    expected = np.unique(np.concatenate(batches))
    assert streamed.tobytes() == expected.tobytes()
    assert direct.tobytes() == expected.tobytes()


def test_emit_bench_json(table):
    """Record the engine-perf trajectory into ``BENCH_extmem.json``."""
    reset_telemetry()
    record = _measure(EDGE_FACTOR << SMOKE_SCALE)
    reg = registry()
    record["peak_buffered_items"] = int(
        reg.gauge("extsort.peak_buffered_items", mode="max").value)
    record["merge_passes"] = int(
        reg.counter("extsort.merge_passes").value)
    proof = _run_rss_proof()
    record["rss_proof"] = {
        "rss_cap_bytes": RSS_CAP_BYTES,
        "peak_rss_bytes": int(proof["rss_bytes"]),
        "spill_bytes": int(proof["spill_bytes"]),
        "unique_keys": int(proof["unique"]),
    }
    (_REPO_ROOT / "BENCH_extmem.json").write_text(
        json.dumps([record], indent=2) + "\n")
    table(f"BENCH_extmem.json (scale {SMOKE_SCALE})",
          ["engine", "keys/s"],
          [["naive heapq", f"{record['naive_keys_per_second']:,}"],
           ["streaming", f"{record['streaming_keys_per_second']:,}"]])
    assert record["streaming_keys_per_second"] > 0
