"""Figure 13: impact of the three performance Ideas.

Runs the instrumented reference engine through all eight on/off
combinations of (Idea #1 reuse RecVec, Idea #2 fewer recursions, Idea #3
one random value) at scale 12 (paper: 27) and reports both wall time and
the work counters.  Shape assertions from the paper:

- Idea #1 alone improves performance "at least by 3.38 times" — here the
  all-off vs #1-only comparison must show a large gap;
- with #1 applied, turning on #2 and #3 together gives a further ~2x;
- all-on is the fastest configuration.
"""

import time

import pytest

from benchmarks.conftest import PAPER
from repro.core.generator import IdeaToggles, RecursiveVectorGenerator

SCALE = 12
EDGE_FACTOR = 8

COMBOS = [(i1, i2, i3) for i1 in (False, True) for i2 in (False, True)
          for i3 in (False, True)]


@pytest.fixture(scope="module")
def ablation():
    results = {}
    for combo in COMBOS:
        g = RecursiveVectorGenerator(SCALE, EDGE_FACTOR, seed=13,
                                     engine="reference",
                                     ideas=IdeaToggles(*combo))
        t0 = time.perf_counter()
        g.edges()
        results[combo] = (time.perf_counter() - t0, g.stats)
    return results


def fmt(flag: bool) -> str:
    return "O" if flag else "X"


def test_figure13_table(benchmark, ablation, table):
    def rows():
        out = []
        for combo in COMBOS:
            dt, stats = ablation[combo]
            paper_s = PAPER["fig13"][combo]
            out.append([fmt(combo[0]), fmt(combo[1]), fmt(combo[2]),
                        round(dt, 3), paper_s, stats.recursion_steps,
                        stats.random_draws, stats.recvec_builds])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 13: idea ablation (scale 12; paper column is scale 27 "
          "on 60 threads)",
          ["Idea#1", "Idea#2", "Idea#3", "ours (s)", "paper (s)",
           "recursions", "draws", "recvec builds"], data)


def test_all_on_is_fastest(benchmark, ablation):
    times = benchmark.pedantic(
        lambda: {c: ablation[c][0] for c in COMBOS}, rounds=1,
        iterations=1)
    fastest = min(times, key=times.get)
    # All-on must be fastest or within noise (10%) of the fastest combo.
    assert times[(True, True, True)] <= 1.1 * times[fastest]


def test_idea1_dominates(benchmark, ablation):
    """Idea #1 is the paper's biggest single win (>= 3.38x there; the
    Python reference loop shows the same dominance)."""

    def ratio():
        return (ablation[(False, True, True)][0]
                / ablation[(True, True, True)][0])

    value = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert value > 1.5


def test_ideas_2_and_3_help_once_1_is_on(benchmark, ablation):
    """With Idea #1 applied, #2+#3 together give a further speedup
    (paper: 2.47x)."""

    def ratio():
        return (ablation[(True, False, False)][0]
                / ablation[(True, True, True)][0])

    value = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert value > 1.3


def test_work_counters_match_idea_semantics(benchmark, ablation):
    def counters():
        return {c: ablation[c][1] for c in COMBOS}

    stats = benchmark.pedantic(counters, rounds=1, iterations=1)
    on = stats[(True, True, True)]
    # Idea #2 off => recursions jump to log|V| per attempt.
    assert stats[(True, False, True)].recursion_steps \
        > 2.5 * on.recursion_steps
    # Idea #3 off => one draw per recursion instead of one per edge.
    assert stats[(True, True, False)].random_draws > 2 * on.random_draws
    # Idea #1 off => one RecVec build per attempt instead of per scope.
    assert stats[(False, True, True)].recvec_builds \
        > 5 * on.recvec_builds


def test_idea1_helps_in_every_configuration(benchmark, ablation):
    """Pairwise version of the published dominance of Idea #1: for every
    setting of Ideas #2/#3, switching Idea #1 on speeds the run up.

    (The paper's stronger ordering — every with-#1 config beating every
    without-#1 config — holds in their Scala implementation where the
    RecVec build is relatively costlier; in this Python reference loop
    the (X,O,O) and (O,X,X) cells can tie within noise.)
    """

    def verdict():
        return {(i2, i3): (ablation[(False, i2, i3)][0],
                           ablation[(True, i2, i3)][0])
                for i2 in (False, True) for i3 in (False, True)}

    pairs = benchmark.pedantic(verdict, rounds=1, iterations=1)
    for key, (off, on) in pairs.items():
        assert on < off, (key, on, off)


def test_overall_ablation_span(benchmark, ablation):
    """All ideas together vs none: the paper's combined effect is
    159/19 ~ 8.4x; the reference loop shows a span of the same order."""

    def ratio():
        return (ablation[(False, False, False)][0]
                / ablation[(True, True, True)][0])

    value = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert value > 4
