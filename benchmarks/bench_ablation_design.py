"""Ablations of this implementation's own design choices (see DESIGN.md).

Not a paper figure — these benches justify the engineering decisions the
reproduction makes on top of the paper's algorithm:

- engine choice (reference vs vectorized vs bitwise),
- block size (randomness/batching granularity),
- duplicate elimination on/off,
- Theorem 1 approximation (normal vs exact binomial vs Poisson).
"""

import time

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator

SCALE = 13


@pytest.mark.parametrize("engine", ["vectorized", "bitwise"])
def test_engine_throughput(benchmark, engine):
    g = RecursiveVectorGenerator(SCALE, 16, seed=1, engine=engine)
    edges = benchmark(g.edges)
    assert edges.shape[0] > 100000


def test_engine_reference_throughput(benchmark):
    # Smaller scale: the per-edge Python loop is ~100x slower.
    g = RecursiveVectorGenerator(10, 16, seed=1, engine="reference")
    edges = benchmark.pedantic(g.edges, rounds=1, iterations=1)
    assert edges.shape[0] > 14000


def test_engine_speed_ordering(benchmark, table):
    """bitwise >= vectorized >> reference in edges/second."""

    def run():
        out = {}
        for engine, scale in (("reference", 10), ("vectorized", SCALE),
                              ("bitwise", SCALE)):
            g = RecursiveVectorGenerator(scale, 16, seed=2, engine=engine)
            t0 = time.perf_counter()
            edges = g.edges()
            out[engine] = edges.shape[0] / (time.perf_counter() - t0)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Design ablation: engine throughput",
          ["engine", "edges/s"],
          [[k, f"{v:,.0f}"] for k, v in rates.items()])
    assert rates["vectorized"] > 3 * rates["reference"]
    assert rates["bitwise"] > rates["vectorized"] * 0.8


def test_block_size_ablation(benchmark, table):
    """Bigger blocks amortize per-block numpy overhead until arrays no
    longer fit caches; the default (4096) sits on the flat part."""

    def run():
        out = []
        for block_size in (64, 512, 4096, 16384):
            g = RecursiveVectorGenerator(SCALE, 16, seed=3,
                                         block_size=block_size)
            t0 = time.perf_counter()
            g.edges()
            out.append([block_size, round(time.perf_counter() - t0, 4)])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Design ablation: block size", ["block_size", "seconds"], rows)
    times = {r[0]: r[1] for r in rows}
    assert times[4096] < times[64]      # batching must pay off


def test_dedup_cost(benchmark, table):
    """Algorithm 2's set semantics (dedup + top-up) versus raw output."""

    def run():
        out = {}
        for dedup in (True, False):
            g = RecursiveVectorGenerator(SCALE, 16, seed=4, dedup=dedup)
            t0 = time.perf_counter()
            edges = g.edges()
            out[dedup] = (time.perf_counter() - t0, edges.shape[0])
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Design ablation: duplicate elimination",
          ["dedup", "seconds", "edges"],
          [[k, round(v[0], 4), v[1]] for k, v in result.items()])
    # Dedup costs extra time but the budget is still met.
    assert result[True][1] <= result[False][1]


def test_degree_method_ablation(benchmark, table):
    """Theorem 1's normal approximation vs exact binomial vs Poisson:
    all three must deliver ~|E| edges with similar degree spread."""

    def run():
        out = []
        for method in ("normal", "binomial", "poisson"):
            g = RecursiveVectorGenerator(SCALE, 16, seed=5,
                                         degree_method=method)
            edges = g.edges()
            deg = np.bincount(edges[:, 0], minlength=g.num_vertices)
            out.append([method, edges.shape[0], round(float(deg.std()), 2)])
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Design ablation: Theorem 1 approximation",
          ["method", "edges", "degree std"], rows)
    target = 16 * (1 << SCALE)
    for method, count, _ in rows:
        assert abs(count - target) / target < 0.05, method
    stds = [r[2] for r in rows]
    assert max(stds) / min(stds) < 1.2
