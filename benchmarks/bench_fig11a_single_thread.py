"""Figure 11(a): single-threaded generators across scales.

Two parts:

1. **Measured** (scales 12-15, this machine): TrillionG/seq must beat
   RMAT-mem, RMAT-disk and FastKronecker, with the gap growing with
   scale; the O.O.M behaviour is reproduced with an enforced memory
   budget.
2. **Paper scale** (20-28, cost model): the published series is printed
   next to the model's prediction; shape assertions (winner, ~10x vs
   FastKronecker at 25, OOM at 26, ~18.5x vs RMAT-disk at 28) are
   enforced in ``tests/cluster``.
"""

import time

import pytest

from benchmarks.conftest import PAPER
from repro.cluster import single_pc_model
from repro.errors import OutOfMemoryError
from repro.models import (FastKroneckerGenerator, RmatDiskGenerator,
                          RmatMemGenerator, TrillionGSeqGenerator)

MEASURED_SCALES = (12, 13, 14, 15)
MODELS = [RmatMemGenerator, RmatDiskGenerator, FastKroneckerGenerator,
          TrillionGSeqGenerator]


@pytest.fixture(scope="module")
def measured():
    rows = {}
    for cls in MODELS:
        for scale in MEASURED_SCALES:
            g = cls(scale, 16, seed=7)
            t0 = time.perf_counter()
            g.generate()
            rows[(cls.name, scale)] = time.perf_counter() - t0
    return rows


def test_measured_table(benchmark, measured, table):
    data = benchmark.pedantic(
        lambda: [[name] + [round(measured[(name, s)], 3)
                           for s in MEASURED_SCALES]
                 for name in (c.name for c in MODELS)],
        rounds=1, iterations=1)
    table("Figure 11(a) measured seconds (this machine, scales 12-15)",
          ["model"] + [f"scale{s}" for s in MEASURED_SCALES], data)


def test_trilliong_beats_disk_rmat_measured(benchmark, measured):
    """The transfer-safe wall-clock claim at reduced scale: the external
    sort makes RMAT-disk lose to TrillionG/seq as |E| grows.

    (The in-memory RMAT/FastKronecker baselines are *batched numpy* here
    and therefore enjoy constant factors the paper's per-edge Scala
    implementations did not; the paper-scale wall-clock ordering is
    asserted against the calibrated cost model in
    ``test_paper_scale_table`` and ``tests/cluster``.)
    """
    def run():
        g_tg = TrillionGSeqGenerator(16, 16, seed=7, engine="bitwise")
        t0 = time.perf_counter()
        g_tg.generate()
        t_tg = time.perf_counter() - t0
        g_disk = RmatDiskGenerator(16, 16, seed=7)
        t0 = time.perf_counter()
        g_disk.generate()
        return t_tg, time.perf_counter() - t0

    t_tg, t_disk = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t_tg < t_disk, (t_tg, t_disk)


def test_algorithmic_work_advantage(benchmark):
    """The three Ideas' measured work reduction (engine-independent).

    Runs the instrumented reference engine twice at the same scale: full
    TrillionG (Ideas on) vs the RMAT-equivalent per-edge process (Ideas
    off) and compares the paper's three cost drivers: recursion steps
    (Idea #2: ~0.24 log|V| vs log|V|), random draws (Idea #3: 1 vs one
    per recursion), RecVec builds (Idea #1: one per scope vs per edge).
    """
    from repro.core.generator import IdeaToggles, RecursiveVectorGenerator

    def run():
        on = RecursiveVectorGenerator(10, 8, seed=5, engine="reference")
        on.edges()
        off = RecursiveVectorGenerator(10, 8, seed=5, engine="reference",
                                       ideas=IdeaToggles.all_off())
        off.edges()
        return on.stats, off.stats

    stats_on, stats_off = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats_off.recursion_steps > 2.5 * stats_on.recursion_steps
    assert stats_off.random_draws > 4 * stats_on.random_draws
    # One build per edge attempt vs one per scope: the ratio is the mean
    # scope size plus retries (~10 at this scale, |E|/|V| = 8).
    assert stats_off.recvec_builds > 8 * stats_on.recvec_builds


def test_oom_reproduction(benchmark):
    """With the same budget, RMAT-mem and FastKronecker die while
    TrillionG/seq and RMAT-disk complete — the Figure 11(a) O.O.M bars."""

    def run():
        budget = 256 * 1024     # scaled-down '32 GB'
        outcomes = {}
        for cls in (RmatMemGenerator, FastKroneckerGenerator):
            try:
                cls(13, 16, seed=1, memory_budget=budget).generate()
                outcomes[cls.name] = "ok"
            except OutOfMemoryError:
                outcomes[cls.name] = "O.O.M"
        for cls in (RmatDiskGenerator, TrillionGSeqGenerator):
            kwargs = {"batch_edges": 4096} if cls is RmatDiskGenerator \
                else {"block_size": 128}
            cls(13, 16, seed=1, memory_budget=budget, **kwargs).generate()
            outcomes[cls.name] = "ok"
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcomes["RMAT-mem"] == "O.O.M"
    assert outcomes["FastKronecker"] == "O.O.M"
    assert outcomes["RMAT-disk"] == "ok"
    assert outcomes["TrillionG/seq"] == "ok"


def test_paper_scale_table(benchmark, table):
    """Cost-model predictions beside the published Figure 11(a) values."""
    model = single_pc_model()
    methods = {"RMAT-mem": model.rmat_mem, "RMAT-disk": model.rmat_disk,
               "FastKronecker": model.fast_kronecker,
               "TrillionG/seq": model.trilliong_seq}

    def rows():
        out = []
        for scale in range(20, 29):
            for name, fn in methods.items():
                est = fn(scale)
                published = PAPER["fig11a"][name].get(scale)
                ours = "O.O.M" if est.oom else round(est.elapsed_seconds)
                out.append([scale, name, ours,
                            published if published is not None
                            else "O.O.M"])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 11(a) paper scale: cost model vs published",
          ["scale", "model", "ours (s)", "paper (s)"], data)
    # Every published (non-OOM) cell must be within 2x of the model.
    for scale, name, ours, published in data:
        if isinstance(ours, int) and isinstance(published, int):
            assert 0.5 < ours / published < 2.0, (scale, name)


def test_bench_trilliong_seq_scale15(benchmark):
    g = TrillionGSeqGenerator(15, 16, seed=3)
    edges = benchmark.pedantic(g.generate, rounds=1, iterations=1)
    assert edges.shape[0] > 500000
