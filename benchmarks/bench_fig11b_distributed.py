"""Figure 11(b): distributed generation — RMAT/p vs TrillionG.

Measured part (this machine): the WES/p dataflow (generate, hash-shuffle,
merge) against the AVS dataflow (range partition, generate, write) with
the same logical worker count; plus a real multiprocess run through
:class:`repro.dist.LocalCluster`.  Paper-scale part: the calibrated cost
model beside the published series, including the O.O.M wall at scale 29
for RMAT/p-mem and the growing TrillionG advantage (98x at scale 31).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import PAPER
from repro.cluster import PAPER_CLUSTER, CostModel
from repro.core.generator import RecursiveVectorGenerator
from repro.dist import ClusterSpec, LocalCluster
from repro.models import WespDiskGenerator, WespMemGenerator

SCALE = 14
WORKERS = 4


def test_measured_wesp_phases(benchmark, table):
    """WES/p's cost is dominated by shuffle+merge phases that AVS does
    not have at all."""

    def run():
        g = WespMemGenerator(SCALE, 16, seed=3, num_workers=WORKERS)
        g.generate()
        return dict(g.report.phase_seconds), g.skew

    phases, skew = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Figure 11(b) measured: RMAT/p-mem phase breakdown",
          ["phase", "seconds"],
          [[k, round(v, 4)] for k, v in phases.items()]
          + [["(partition skew)", round(skew, 3)]])
    assert {"generate", "shuffle", "merge"} <= set(phases)
    assert phases["merge"] > 0


def test_measured_distributed_trilliong(benchmark, tmp_path, table):
    """Real multiprocess AVS generation: near-balanced parts, no shuffle
    phase, output identical to sequential."""

    def run():
        g = RecursiveVectorGenerator(SCALE, 16, seed=4, block_size=128)
        cluster = LocalCluster(ClusterSpec(machines=2,
                                           threads_per_machine=2))
        result = cluster.generate_to_files(g, tmp_path / "parts", "adj6",
                                           processes=2)
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Figure 11(b) measured: TrillionG distributed run",
          ["worker", "edges", "seconds"],
          [[w.worker, w.num_edges, round(w.elapsed_seconds, 3)]
           for w in result.workers])
    assert result.skew < 1.6
    seq = RecursiveVectorGenerator(SCALE, 16, seed=4,
                                   block_size=128).edges().shape[0]
    assert result.num_edges == seq


def test_wesp_disk_equals_mem_output(benchmark):
    mem = WespMemGenerator(12, 16, seed=5, num_workers=3)
    disk = WespDiskGenerator(12, 16, seed=5, num_workers=3,
                             batch_edges=4096)

    def run():
        return mem.generate(), disk.generate()

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    np.testing.assert_array_equal(a, b)


def test_paper_scale_table(benchmark, table):
    model = CostModel(PAPER_CLUSTER)
    methods = {
        "RMAT/p-mem": model.wesp_mem,
        "RMAT/p-disk": model.wesp_disk,
        "TrillionG (TSV)": lambda s: model.trilliong(s, "tsv"),
        "TrillionG (ADJ6)": lambda s: model.trilliong(s, "adj6"),
    }

    def rows():
        out = []
        for scale in range(24, 32):
            for name, fn in methods.items():
                est = fn(scale)
                published = PAPER["fig11b"][name].get(scale)
                ours = "O.O.M" if est.oom else round(est.elapsed_seconds)
                out.append([scale, name, ours,
                            published if published is not None
                            else "O.O.M"])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 11(b) paper scale: cost model vs published",
          ["scale", "model", "ours (s)", "paper (s)"], data)
    for scale, name, ours, published in data:
        if isinstance(ours, int) and isinstance(published, int):
            assert 0.4 < ours / published < 2.5, (scale, name)


def test_headline_gap_at_scale31(benchmark):
    """Paper: TrillionG (ADJ6) outperforms RMAT/p-disk by up to 98x."""
    model = CostModel(PAPER_CLUSTER)

    def gap():
        return (model.wesp_disk(31).elapsed_seconds
                / model.trilliong(31, "adj6").elapsed_seconds)

    ratio = benchmark.pedantic(gap, rounds=1, iterations=1)
    assert 50 < ratio < 200


def test_measured_faulty_run_overhead(benchmark, tmp_path, table):
    """Fault-tolerance column: the same distributed run with an injected
    crash and hang recovers via retries and yields the identical graph,
    at a bounded wall-clock premium."""
    from repro.dist import FaultPlan, RetryPolicy

    def sort_edges(edges):
        return edges[np.lexsort((edges[:, 1], edges[:, 0]))]

    def run_one(out_dir, faults):
        g = RecursiveVectorGenerator(SCALE, 16, seed=4, block_size=128)
        cluster = LocalCluster(ClusterSpec(machines=2,
                                           threads_per_machine=2))
        policy = RetryPolicy(task_timeout=6.0, backoff_base=0.01,
                             backoff_max=0.05, jitter=0.0)
        t0 = time.perf_counter()
        result = cluster.generate_to_files(g, out_dir, "adj6",
                                           processes=2, retry=policy,
                                           faults=faults)
        elapsed = time.perf_counter() - t0
        edges = cluster.read_all_edges(result, "adj6")
        return result, elapsed, sort_edges(edges)

    def run():
        clean = run_one(tmp_path / "clean", FaultPlan())
        faulty = run_one(tmp_path / "faulty",
                         FaultPlan(crash_tasks=frozenset({0}),
                                   hang_tasks=frozenset({1}),
                                   hang_seconds=120.0))
        return clean, faulty

    clean, faulty = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (result, elapsed, _) in (("clean", clean),
                                        ("crash+hang injected", faulty)):
        rows.append([label, result.num_edges, round(elapsed, 3),
                     result.num_retries, result.num_fallbacks])
    table("Figure 11(b) measured: fault-tolerant run vs clean run",
          ["run", "edges", "seconds", "retries", "fallbacks"], rows)
    np.testing.assert_array_equal(clean[2], faulty[2])
    assert faulty[0].num_retries >= 2
