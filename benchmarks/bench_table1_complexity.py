"""Table 1: time and space complexities of the scope-based models.

Regenerates the complexity summary from the model classes' metadata and
spot-validates the space column empirically: the in-memory WES models'
working set grows linearly in |E| while AVS's grows like d_max.
"""

import numpy as np

from repro.models import (FastKroneckerGenerator, KroneckerAesGenerator,
                          RmatMemGenerator, TrillionGSeqGenerator,
                          WespMemGenerator)

MODELS = [RmatMemGenerator, KroneckerAesGenerator, FastKroneckerGenerator,
          WespMemGenerator, TrillionGSeqGenerator]


def build_table1():
    return [[cls.name, cls.complexity.scope, cls.complexity.time,
             cls.complexity.space] for cls in MODELS]


def test_table1_rows(benchmark, table):
    rows = benchmark(build_table1)
    table("Table 1: complexities of the scope-based models",
          ["model", "scope", "time", "space"], rows)
    scopes = {r[1] for r in rows}
    assert {"WES", "AES", "AVS", "WES/p"} <= scopes


def test_table1_space_scaling_empirical(benchmark, table):
    """WES peak memory doubles with |E|; AVS peak grows ~1.5x per scale
    (the d_max = |E| * 0.76^scale law)."""

    def measure():
        rows = []
        for scale in (10, 11, 12):
            wes = RmatMemGenerator(scale, 16, seed=1)
            wes.generate()
            avs = TrillionGSeqGenerator(scale, 16, seed=1)
            avs_edges = avs.generate()
            dmax = int(np.bincount(avs_edges[:, 0]).max())
            rows.append([scale, wes.report.peak_memory_bytes, dmax])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table("Table 1 check: WES peak bytes vs AVS d_max",
          ["scale", "WES peak bytes", "AVS d_max"], rows)
    # WES doubles with |E|.
    assert 1.8 < rows[1][1] / rows[0][1] < 2.2
    assert 1.8 < rows[2][1] / rows[1][1] < 2.2
    # AVS d_max grows ~2 * 0.76 = 1.52x per scale.
    for a, b in zip(rows, rows[1:]):
        assert 1.1 < b[2] / a[2] < 2.0
