"""Figure 9: NSKG noise removes the degree-plot oscillation.

Generates Scale-16 graphs (paper: 27) with noise N = 0, 0.05, 0.1 and
measures the oscillation score of the log-log degree plot.  The paper's
claim: the oscillation visible at N=0 disappears as N grows.
"""

import pytest

from repro.analysis import oscillation_score, out_degrees
from repro.core.generator import RecursiveVectorGenerator

SCALE = 16
NOISES = (0.0, 0.05, 0.1)


SEEDS = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def scores():
    """Mean oscillation score over several seeds (single-seed scores vary
    by ~20%; the noise effect is on the mean)."""
    result = {}
    for noise in NOISES:
        values = []
        for seed in SEEDS:
            g = RecursiveVectorGenerator(SCALE, 16, seed=seed,
                                         noise=noise, engine="bitwise")
            values.append(oscillation_score(
                out_degrees(g.edges(), g.num_vertices)))
        result[noise] = sum(values) / len(values)
    return result


def test_figure9_table(benchmark, scores, table):
    rows = benchmark.pedantic(
        lambda: [[n, round(s, 4)] for n, s in scores.items()],
        rounds=1, iterations=1)
    table("Figure 9: mean oscillation score vs noise N "
          f"(scale {SCALE}, {len(SEEDS)} seeds)",
          ["noise N", "oscillation score"], rows)


def test_noise_reduces_oscillation(benchmark, scores):
    result = benchmark.pedantic(lambda: scores, rounds=1, iterations=1)
    assert result[0.05] < result[0.0]
    assert result[0.1] < result[0.0]


def test_oscillation_drop_is_substantial(benchmark, scores):
    """The paper's plots show the oscillation essentially disappearing;
    require at least a ~20% mean drop at N = 0.1."""
    result = benchmark.pedantic(lambda: scores, rounds=1, iterations=1)
    assert result[0.1] < 0.85 * result[0.0]


def test_noisy_graph_keeps_power_law(benchmark):
    """Noise must not destroy the realistic power-law shape."""
    from repro.analysis import fit_kronecker_class_slope

    def run():
        g = RecursiveVectorGenerator(SCALE, 16, seed=10, noise=0.1,
                                     engine="bitwise")
        return fit_kronecker_class_slope(
            out_degrees(g.edges(), g.num_vertices))

    slope = benchmark.pedantic(run, rounds=1, iterations=1)
    assert -2.2 < slope < -1.2


def test_generation_cost_of_noise(benchmark):
    """NSKG noise is essentially free in the recursive vector model (the
    noisy RecVec of Lemma 8 costs the same O(log|V|) build)."""
    g = RecursiveVectorGenerator(13, 16, seed=11, noise=0.1,
                                 engine="bitwise")
    edges = benchmark(g.edges)
    assert edges.shape[0] > 100000
