"""Benches for the beyond-the-paper extensions (see DESIGN.md §5).

Not paper figures — these quantify the extensions' quality claims:

- seed recovery error of the moment-matched fit shrinks with graph size
  (GSCALER-style scaling rests on it);
- the n x n generator's throughput and correctness at n = 3;
- checkpointed generation costs no measurable overhead versus a straight
  run.
"""

import time

import numpy as np
import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.core.nary import NAryRecursiveVectorGenerator
from repro.core.seed import GRAPH500, SeedMatrix
from repro.fit import fit_seed_matrix


def fit_error(scale: int, seed: int) -> float:
    edges = RecursiveVectorGenerator(scale, 16, seed=seed,
                                     engine="bitwise").edges()
    fit = fit_seed_matrix(edges, 1 << scale)
    got = np.array(fit.seed_matrix.as_tuple())
    want = np.array(GRAPH500.as_tuple())
    return float(np.abs(got - want).max())


def test_fit_error_shrinks_with_scale(benchmark, table):
    def run():
        return [[scale, round(fit_error(scale, 17), 4)]
                for scale in (10, 12, 14)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Extension: seed-recovery error vs scale",
          ["scale", "max |entry error|"], rows)
    errors = [r[1] for r in rows]
    assert errors[-1] < errors[0]
    assert errors[-1] < 0.03


def test_nary_throughput(benchmark):
    seed3 = SeedMatrix(np.array([[0.30, 0.12, 0.08],
                                 [0.12, 0.10, 0.05],
                                 [0.08, 0.05, 0.10]]))
    g = NAryRecursiveVectorGenerator(seed3, 9, num_edges=200000, seed=1)
    edges = benchmark.pedantic(g.edges, rounds=1, iterations=1)
    assert abs(edges.shape[0] - 200000) / 200000 < 0.05


def test_checkpoint_overhead(benchmark, tmp_path, table):
    """Checkpointing (atomic chunk renames + manifest writes) must stay
    within ~2x of a straight single-file write."""
    from repro.dist.checkpoint import CheckpointedRun
    from repro.formats import get_format

    def run():
        g1 = RecursiveVectorGenerator(12, 16, seed=3, block_size=256)
        t0 = time.perf_counter()
        get_format("adj6").write(tmp_path / "straight.adj6",
                                 g1.iter_adjacency(), g1.num_vertices)
        straight = time.perf_counter() - t0
        g2 = RecursiveVectorGenerator(12, 16, seed=3, block_size=256)
        t0 = time.perf_counter()
        CheckpointedRun(g2, tmp_path / "chunks",
                        blocks_per_chunk=2).run()
        checkpointed = time.perf_counter() - t0
        return straight, checkpointed

    straight, checkpointed = benchmark.pedantic(run, rounds=1,
                                                iterations=1)
    table("Extension: checkpointing overhead",
          ["mode", "seconds"],
          [["straight", round(straight, 3)],
           ["checkpointed (8 chunks)", round(checkpointed, 3)]])
    assert checkpointed < 3 * straight + 0.5


def test_empirical_distribution_fidelity(benchmark):
    """Data-dictionary degrees come back with the dictionary's exact
    support and frequencies."""
    from repro.rich_graph import Empirical, ErvGenerator, Gaussian

    def run():
        d = Empirical([2, 8, 32], [8, 3, 1])
        g = ErvGenerator(30000, 30000, 0, d, Gaussian(), seed=4)
        degrees = g.out_degrees()
        realized = {
            int(v): float((degrees == v).mean()) for v in (2, 8, 32)}
        return realized

    realized = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = {2: 8 / 12, 8: 3 / 12, 32: 1 / 12}
    for value, frac in expected.items():
        assert abs(realized[value] - frac) < 0.01
