"""Format throughput benchmarks (Section 5's "the graph format affects the
performance ... but is frequently overlooked").

Measures write and read throughput of the three formats on the same graph
and checks the paper's qualitative claims: binary formats are faster and
smaller than TSV at scale (here sizes invert only because small-scale ids
are short — the size ordering at realistic id widths is asserted in
``tests/formats``).
"""

import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.formats import get_format, write_many

SCALE = 13


@pytest.fixture(scope="module")
def generator():
    return RecursiveVectorGenerator(SCALE, 16, seed=9)


@pytest.mark.parametrize("fmt_name", ["tsv", "adj6", "csr6"])
def test_write_throughput(benchmark, generator, fmt_name, tmp_path):
    fmt = get_format(fmt_name)

    def write():
        return fmt.write(tmp_path / f"w.{fmt_name}",
                         generator.iter_adjacency(),
                         generator.num_vertices)

    result = benchmark.pedantic(write, rounds=3, iterations=1)
    assert result.num_edges > 100000


@pytest.mark.parametrize("fmt_name", ["tsv", "adj6", "csr6"])
def test_read_throughput(benchmark, generator, fmt_name, tmp_path):
    fmt = get_format(fmt_name)
    path = tmp_path / f"r.{fmt_name}"
    fmt.write(path, generator.iter_adjacency(), generator.num_vertices)
    edges = benchmark.pedantic(lambda: fmt.read_edges(path), rounds=3,
                               iterations=1)
    assert edges.shape[0] > 100000


def test_format_write_times_comparable(benchmark, generator, tmp_path,
                                       table):
    """Informational: in pure Python the TSV-vs-ADJ6 *CPU* ordering from
    the paper's JVM implementation does not transfer (f-string
    formatting is cheap; per-record numpy encoding has overhead), so the
    assertion is only that no format is pathologically slow.  The size
    ordering — the half of the claim that drives the Figure 11(b)
    ADJ6-vs-TSV gap via disk bandwidth — is asserted in
    ``tests/formats`` at realistic id widths.
    """
    import time

    def run():
        times = {}
        for name in ("tsv", "adj6", "csr6"):
            fmt = get_format(name)
            t0 = time.perf_counter()
            fmt.write(tmp_path / f"cmp.{name}",
                      generator.iter_adjacency(),
                      generator.num_vertices)
            times[name] = time.perf_counter() - t0
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Format write seconds (scale 13, includes generation)",
          ["format", "seconds"],
          [[k, round(v, 4)] for k, v in times.items()])
    assert max(times.values()) < 5 * min(times.values())


def test_multi_write_cheaper_than_separate(benchmark, generator,
                                           tmp_path):
    """One teed pass vs three separate passes: the tee must win (it
    generates once instead of three times)."""
    import time

    def run():
        t0 = time.perf_counter()
        write_many(generator.iter_adjacency(), generator.num_vertices,
                   {n: tmp_path / f"tee.{n}"
                    for n in ("tsv", "adj6", "csr6")})
        teed = time.perf_counter() - t0
        t0 = time.perf_counter()
        for n in ("tsv", "adj6", "csr6"):
            get_format(n).write(tmp_path / f"sep.{n}",
                                generator.iter_adjacency(),
                                generator.num_vertices)
        separate = time.perf_counter() - t0
        return teed, separate

    teed, separate = benchmark.pedantic(run, rounds=1, iterations=1)
    assert teed < separate
