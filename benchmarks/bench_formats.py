"""Format throughput benchmarks (Section 5's "the graph format affects the
performance ... but is frequently overlooked").

Measures write and read throughput of the three formats on the same graph
and checks the paper's qualitative claims: binary formats are faster and
smaller than TSV at scale (here sizes invert only because small-scale ids
are short — the size ordering at realistic id widths is asserted in
``tests/formats``).

Two artifacts matter beyond the printed tables:

- ``test_block_adj6_beats_per_vertex`` is the CI perf-smoke gate for the
  block-streaming output path: encoding whole ``AdjacencyBlock``s must
  beat the per-vertex ``writer.add`` loop at scale 18.
- ``test_emit_bench_json`` writes ``BENCH_formats.json`` at the repo root
  (scale, format, engine, edges/s, MB/s, pipeline on/off) so later PRs
  have a perf trajectory to compare against.
- ``test_telemetry_overhead_gate`` is the CI gate for the telemetry
  layer: generation+write throughput with telemetry on must stay within
  95% of telemetry off, recorded into ``BENCH_telemetry.json``.
- ``test_sanitize_overhead_gate`` is the same gate for the determinism
  sanitizer: off-mode (the production default) must keep >= 98% of the
  faster mode's throughput, recorded into ``BENCH_sanitize.json``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.generator import RecursiveVectorGenerator
from repro.formats import NO_PIPELINE_ENV, get_format, write_many

SCALE = 13
SMOKE_SCALE = 18

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def generator():
    return RecursiveVectorGenerator(SCALE, 16, seed=9)


def _throughput_row(fmt_name, result, seconds):
    mb = result.bytes_written / 2**20
    return [fmt_name, result.num_edges,
            f"{result.num_edges / seconds:,.0f}",
            f"{mb / seconds:.1f}"]


@pytest.mark.parametrize("fmt_name", ["tsv", "adj6", "csr6"])
def test_write_throughput(benchmark, generator, fmt_name, tmp_path, table):
    fmt = get_format(fmt_name)

    def write():
        t0 = time.perf_counter()
        result = fmt.write_blocks(tmp_path / f"w.{fmt_name}",
                                  generator.iter_blocks(),
                                  generator.num_vertices)
        return result, time.perf_counter() - t0

    result, seconds = benchmark.pedantic(write, rounds=3, iterations=1)
    table(f"Write throughput ({fmt_name}, scale {SCALE}, block path)",
          ["format", "edges", "edges/s", "MB/s"],
          [_throughput_row(fmt_name, result, seconds)])
    assert result.num_edges > 100000


@pytest.mark.parametrize("fmt_name", ["tsv", "adj6", "csr6"])
def test_read_throughput(benchmark, generator, fmt_name, tmp_path, table):
    fmt = get_format(fmt_name)
    path = tmp_path / f"r.{fmt_name}"
    written = fmt.write_blocks(path, generator.iter_blocks(),
                               generator.num_vertices)

    def read():
        t0 = time.perf_counter()
        edges = fmt.read_edges(path)
        return edges, time.perf_counter() - t0

    edges, seconds = benchmark.pedantic(read, rounds=3, iterations=1)
    table(f"Read throughput ({fmt_name}, scale {SCALE})",
          ["format", "edges", "edges/s", "MB/s"],
          [[fmt_name, edges.shape[0], f"{edges.shape[0] / seconds:,.0f}",
            f"{written.bytes_written / 2**20 / seconds:.1f}"]])
    assert edges.shape[0] > 100000


def test_format_write_times_comparable(benchmark, generator, tmp_path,
                                       table):
    """Informational: in pure Python the TSV-vs-ADJ6 *CPU* ordering from
    the paper's JVM implementation does not transfer (f-string
    formatting is cheap; per-record numpy encoding has overhead), so the
    assertion is only that no format is pathologically slow.  The size
    ordering — the half of the claim that drives the Figure 11(b)
    ADJ6-vs-TSV gap via disk bandwidth — is asserted in
    ``tests/formats`` at realistic id widths.
    """

    def run():
        rows = {}
        for name in ("tsv", "adj6", "csr6"):
            fmt = get_format(name)
            t0 = time.perf_counter()
            result = fmt.write_blocks(tmp_path / f"cmp.{name}",
                                      generator.iter_blocks(),
                                      generator.num_vertices)
            rows[name] = (time.perf_counter() - t0, result)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table(f"Format write seconds (scale {SCALE}, includes generation)",
          ["format", "seconds", "edges/s", "MB/s"],
          [[name, round(seconds, 4),
            f"{result.num_edges / seconds:,.0f}",
            f"{result.bytes_written / 2**20 / seconds:.1f}"]
           for name, (seconds, result) in rows.items()])
    times = [seconds for seconds, _ in rows.values()]
    assert max(times) < 5 * min(times)


def test_multi_write_cheaper_than_separate(benchmark, generator,
                                           tmp_path):
    """One teed pass vs three separate passes: the tee must win (it
    generates once instead of three times)."""

    def run():
        t0 = time.perf_counter()
        write_many(generator.iter_adjacency(), generator.num_vertices,
                   {n: tmp_path / f"tee.{n}"
                    for n in ("tsv", "adj6", "csr6")})
        teed = time.perf_counter() - t0
        t0 = time.perf_counter()
        for n in ("tsv", "adj6", "csr6"):
            get_format(n).write(tmp_path / f"sep.{n}",
                                generator.iter_adjacency(),
                                generator.num_vertices)
        separate = time.perf_counter() - t0
        return teed, separate

    teed, separate = benchmark.pedantic(run, rounds=1, iterations=1)
    assert teed < separate


def _time_per_vertex(fmt, path, blocks, num_vertices):
    """The pre-block baseline: one ``writer.add`` call per vertex."""
    writer = fmt.open_writer(path, num_vertices)
    t0 = time.perf_counter()
    with writer:
        for block in blocks:
            for u, vs in block.iter_adjacency():
                writer.add(u, vs)
    return time.perf_counter() - t0, writer.result


def _time_blocks(fmt, path, blocks, num_vertices):
    writer = fmt.open_writer(path, num_vertices)
    t0 = time.perf_counter()
    with writer:
        for block in blocks:
            writer.add_block(block)
    return time.perf_counter() - t0, writer.result


def test_block_adj6_beats_per_vertex(tmp_path, table):
    """CI perf smoke: the vectorized block encoder must beat the
    per-vertex loop on the write path (generation excluded) — and the
    two must produce byte-identical files.
    """
    gen = RecursiveVectorGenerator(SMOKE_SCALE, 16, seed=9)
    blocks = list(gen.iter_blocks())
    fmt = get_format("adj6")
    per_vertex_s, pv_result = _time_per_vertex(
        fmt, tmp_path / "pv.adj6", blocks, gen.num_vertices)
    block_s, blk_result = _time_blocks(
        fmt, tmp_path / "blk.adj6", blocks, gen.num_vertices)
    speedup = per_vertex_s / block_s
    table(f"ADJ6 write path (scale {SMOKE_SCALE}, generation excluded)",
          ["path", "seconds", "edges/s", "MB/s"],
          [["per-vertex", round(per_vertex_s, 3),
            f"{pv_result.num_edges / per_vertex_s:,.0f}",
            f"{pv_result.bytes_written / 2**20 / per_vertex_s:.1f}"],
           ["block", round(block_s, 3),
            f"{blk_result.num_edges / block_s:,.0f}",
            f"{blk_result.bytes_written / 2**20 / block_s:.1f}"],
           ["speedup", f"{speedup:.1f}x", "", ""]])
    assert (tmp_path / "pv.adj6").read_bytes() == \
        (tmp_path / "blk.adj6").read_bytes()
    assert speedup > 2.0, (
        f"block ADJ6 only {speedup:.2f}x over per-vertex at scale "
        f"{SMOKE_SCALE}; the vectorized encoder regressed")


def test_emit_bench_json(tmp_path, table):
    """Record the perf trajectory: edges/s and MB/s for every format with
    the write pipeline on and off, from the WriteResult's own timing
    fields, into ``BENCH_formats.json`` at the repo root."""
    gen = RecursiveVectorGenerator(SCALE, 16, seed=9)
    blocks = list(gen.iter_blocks())
    records = []
    for fmt_name in ("adj6", "csr6", "tsv"):
        fmt = get_format(fmt_name)
        for pipeline in (True, False):
            env_value = "" if pipeline else "1"
            old = os.environ.get(NO_PIPELINE_ENV)
            os.environ[NO_PIPELINE_ENV] = env_value
            try:
                label = "on" if pipeline else "off"
                _, result = _time_blocks(
                    fmt, tmp_path / f"{fmt_name}.{label}", blocks,
                    gen.num_vertices)
            finally:
                if old is None:
                    del os.environ[NO_PIPELINE_ENV]
                else:
                    os.environ[NO_PIPELINE_ENV] = old
            records.append({
                "scale": SCALE,
                "format": fmt_name,
                "engine": gen.engine,
                "pipeline": "on" if pipeline else "off",
                "edges_per_second": round(result.edges_per_second),
                "mb_per_second": round(
                    result.bytes_per_second / 2**20, 2),
                "encode_seconds": round(result.encode_seconds, 4),
                "write_seconds": round(result.write_seconds, 4),
            })
    out_path = _REPO_ROOT / "BENCH_formats.json"
    out_path.write_text(json.dumps(records, indent=2) + "\n")
    table(f"BENCH_formats.json (scale {SCALE}, engine {gen.engine})",
          ["format", "pipeline", "edges/s", "MB/s"],
          [[r["format"], r["pipeline"], f"{r['edges_per_second']:,}",
            r["mb_per_second"]] for r in records])
    assert all(r["edges_per_second"] > 0 for r in records)


def test_telemetry_overhead_gate(tmp_path, table):
    """CI gate for the observability layer: the full pipeline
    (generation + adj6 write) with telemetry recording must keep >= 95%
    of the telemetry-off throughput.  Best-of-3 per mode, modes
    interleaved so machine noise hits both alike; the result lands in
    ``BENCH_telemetry.json``.
    """
    from repro.telemetry import enable_telemetry, reset_telemetry

    fmt = get_format("adj6")

    def one_run(label):
        gen = RecursiveVectorGenerator(SCALE, 16, seed=9)
        t0 = time.perf_counter()
        result = fmt.write_blocks(tmp_path / f"tel.{label}",
                                  gen.iter_blocks(), gen.num_vertices)
        return result, time.perf_counter() - t0

    best = {"on": float("inf"), "off": float("inf")}
    edges = 0
    try:
        for _ in range(3):
            for mode in ("on", "off"):
                enable_telemetry(mode == "on")
                reset_telemetry()
                result, seconds = one_run(mode)
                best[mode] = min(best[mode], seconds)
                edges = result.num_edges
    finally:
        enable_telemetry(None)
        reset_telemetry()

    on_rate = edges / best["on"]
    off_rate = edges / best["off"]
    ratio = on_rate / off_rate
    records = [{
        "scale": SCALE,
        "format": "adj6",
        "telemetry": mode,
        "edges_per_second": round(edges / best[mode]),
        "seconds": round(best[mode], 4),
    } for mode in ("on", "off")]
    records.append({"scale": SCALE, "format": "adj6",
                    "telemetry": "ratio",
                    "on_over_off": round(ratio, 4)})
    (_REPO_ROOT / "BENCH_telemetry.json").write_text(
        json.dumps(records, indent=2) + "\n")
    table(f"Telemetry overhead (scale {SCALE}, adj6, best of 3)",
          ["telemetry", "seconds", "edges/s"],
          [[m, round(best[m], 4), f"{edges / best[m]:,.0f}"]
           for m in ("on", "off")] + [["on/off", f"{ratio:.3f}", ""]])
    assert ratio >= 0.95, (
        f"telemetry-on throughput only {ratio:.3f} of telemetry-off; "
        "the recording path regressed")


def test_sanitize_overhead_gate(tmp_path, table):
    """CI gate for the determinism sanitizer's *off-mode* cost: with the
    sanitizer disabled (the production default) the full pipeline must
    keep >= 98% of the throughput measured before the hooks existed —
    i.e. disabled-vs-disabled-with-hooks is approximated by comparing
    sanitizer-off against sanitizer-on, and off must not pay for on.
    Off-mode is one boolean check per derivation and per sink write.
    Best-of-3 per mode, modes interleaved; recorded into
    ``BENCH_sanitize.json``.
    """
    from repro.sanitize import enable_sanitize, reset_sanitizer

    fmt = get_format("adj6")

    def one_run(label):
        gen = RecursiveVectorGenerator(SCALE, 16, seed=9)
        t0 = time.perf_counter()
        result = fmt.write_blocks(tmp_path / f"san.{label}",
                                  gen.iter_blocks(), gen.num_vertices)
        return result, time.perf_counter() - t0

    best = {"on": float("inf"), "off": float("inf")}
    edges = 0
    try:
        for _ in range(3):
            for mode in ("on", "off"):
                enable_sanitize(mode == "on")
                reset_sanitizer()
                result, seconds = one_run(mode)
                best[mode] = min(best[mode], seconds)
                edges = result.num_edges
    finally:
        enable_sanitize(None)
        reset_sanitizer()

    off_rate = edges / best["off"]
    on_rate = edges / best["on"]
    ratio = off_rate / max(off_rate, on_rate)
    records = [{
        "scale": SCALE,
        "format": "adj6",
        "sanitize": mode,
        "edges_per_second": round(edges / best[mode]),
        "seconds": round(best[mode], 4),
    } for mode in ("off", "on")]
    records.append({"scale": SCALE, "format": "adj6",
                    "sanitize": "ratio",
                    "off_over_best": round(ratio, 4)})
    (_REPO_ROOT / "BENCH_sanitize.json").write_text(
        json.dumps(records, indent=2) + "\n")
    table(f"Sanitizer overhead (scale {SCALE}, adj6, best of 3)",
          ["sanitize", "seconds", "edges/s"],
          [[m, round(best[m], 4), f"{edges / best[m]:,.0f}"]
           for m in ("off", "on")] + [["off/best", f"{ratio:.3f}", ""]])
    assert ratio >= 0.98, (
        f"sanitizer-off throughput only {ratio:.3f} of the faster mode; "
        "the off-mode hook cost regressed beyond the 2% budget")
