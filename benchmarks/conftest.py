"""Shared helpers for the per-figure benchmark harness.

Every file in this directory regenerates one table or figure of the
paper's evaluation section.  Measured numbers come from real runs at
reduced scales; paper-scale series come from the calibrated cost model
(see DESIGN.md's substitution table).  Each benchmark prints its rows so
``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation.
"""

from __future__ import annotations

import pytest

#: Published values transcribed from the paper, used for side-by-side
#: printouts and shape assertions.
PAPER = {
    "fig11a": {
        "RMAT-mem": {20: 56, 21: 115, 22: 233, 23: 566, 24: 1252,
                     25: 2719},
        "RMAT-disk": {20: 89, 21: 181, 22: 377, 23: 759, 24: 1746,
                      25: 3744, 26: 7657, 27: 15637, 28: 32432},
        "FastKronecker": {20: 33, 21: 75, 22: 175, 23: 401, 24: 897,
                          25: 2040},
        "TrillionG/seq": {20: 8, 21: 15, 22: 27, 23: 51, 24: 100,
                          25: 202, 26: 408, 27: 853, 28: 1747},
    },
    "fig11b": {
        "RMAT/p-mem": {24: 120, 25: 206, 26: 451, 27: 861, 28: 1705},
        "RMAT/p-disk": {24: 169, 25: 248, 26: 445, 27: 939, 28: 1619,
                        29: 4004, 30: 9670, 31: 21617},
        "TrillionG (TSV)": {24: 8, 25: 10, 26: 15, 27: 24, 28: 45,
                            29: 97, 30: 189, 31: 411},
        "TrillionG (ADJ6)": {24: 7, 25: 9, 26: 12, 27: 19, 28: 35,
                             29: 61, 30: 115, 31: 220},
    },
    "fig12_time": {33: 843, 34: 1639, 35: 3318, 36: 6675, 37: 13199,
                   38: 27567},
    "fig12_mem_mb": {33: 122, 34: 186, 35: 283, 36: 430, 37: 653,
                     38: 992},
    "fig13": {  # (idea1, idea2, idea3) -> seconds at scale 27
        (False, False, False): 159, (False, False, True): 144,
        (False, True, False): 141, (False, True, True): 129,
        (True, False, False): 47, (True, False, True): 33,
        (True, True, False): 30, (True, True, True): 19,
    },
    "fig14_tg": {25: 11, 26: 16, 27: 27, 28: 44, 29: 72, 30: 140},
    "fig14_g500_1g": {25: 680, 26: 1100, 27: 2465, 28: 4835, 29: 10178},
    "fig14_g500_ib": {25: 12, 26: 27, 27: 66, 28: 172, 29: 877},
}


def print_table(title: str, headers: list[str],
                rows: list[list[object]]) -> None:
    """Fixed-width table printer for benchmark output."""
    widths = [max(len(str(h)),
                  max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(headers)]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture()
def table():
    return print_table
