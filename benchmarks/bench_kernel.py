"""Destination-sampling kernel benchmarks: the alias-table backend vs
the inverse-CDF recursive-vector translation and the per-level bitwise
peel.

The alias backend amortizes the top ``bundle_depth`` recursion levels
into one table lookup (one slot draw + one coin flip per edge), then
fills the remaining low bits with one vectorized Bernoulli matrix — per
edge O(1 + (log|V|)/b) instead of O(log|V|).  See ``docs/kernel.md``.

Artifacts:

- ``test_alias_beats_recvec`` is the CI perf-smoke gate: the alias
  sampler must generate >= 2x the recvec edges/s at scale 18 (same
  graph parameters, generation only, no I/O).
- ``test_emit_bench_json`` writes ``BENCH_kernel.json`` at the repo
  root (scale, sampler, edges/s, seconds, recursions/edge) so later
  PRs have a kernel-perf trajectory to compare against.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.core.generator import RecursiveVectorGenerator, _popcount64

SMOKE_SCALE = 18
EDGE_FACTOR = 16
SEED = 9

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _time_generation(sampler, scale=SMOKE_SCALE, count_recursions=False):
    """Seconds to materialize every block (generation only, no I/O).

    With ``count_recursions`` the per-edge translation counts are
    accumulated from destination popcounts inside the loop — O(edges)
    numpy per block, applied uniformly to every sampler so the timing
    stays comparable.
    """
    gen = RecursiveVectorGenerator(scale, EDGE_FACTOR, seed=SEED,
                                   sampler=sampler)
    fill = gen.scale - gen._bundle_levels
    t0 = time.perf_counter()
    edges = 0
    recursions = 0
    for block in gen.iter_blocks():
        dests = block.destinations
        edges += dests.shape[0]
        if count_recursions:
            if sampler == "alias":
                # Bundle gather resolves the top bits in one step; only
                # fill-region 1-bits still cost a translation each.
                low = dests & np.int64((1 << fill) - 1)
                recursions += int(_popcount64(low).sum()) + dests.shape[0]
            else:
                recursions += int(_popcount64(dests).sum())
    seconds = time.perf_counter() - t0
    return edges, seconds, recursions, gen


def test_alias_beats_recvec(table):
    """CI perf smoke: the linear-work alias kernel must beat the
    inverse-CDF recvec translation by >= 2x edges/s at scale 18 — and
    both must agree on the edge count (degree sampling is shared)."""
    rates = {}
    edges_by_sampler = {}
    for sampler in ("recvec", "alias"):
        edges, seconds, _, _ = _time_generation(sampler)
        rates[sampler] = edges / seconds
        edges_by_sampler[sampler] = edges
    speedup = rates["alias"] / rates["recvec"]
    table(f"Alias vs recvec (scale {SMOKE_SCALE}, generation only)",
          ["sampler", "edges", "edges/s", "speedup"],
          [[s, edges_by_sampler[s], f"{rates[s]:,.0f}",
            f"{rates[s] / rates['recvec']:.2f}x"]
           for s in ("recvec", "alias")])
    assert edges_by_sampler["alias"] == edges_by_sampler["recvec"]
    assert speedup >= 2.0, (
        f"alias sampler only {speedup:.2f}x over recvec at scale "
        f"{SMOKE_SCALE}; the bundled-prefix kernel regressed")


def test_emit_bench_json(table):
    """Record the kernel-perf trajectory for all three destination
    samplers into ``BENCH_kernel.json`` at the repo root."""
    records = []
    for sampler in ("recvec", "bitwise", "alias"):
        edges, seconds, recursions, gen = _time_generation(
            sampler, count_recursions=True)
        per_edge = recursions / edges if edges else 0.0
        records.append({
            "scale": SMOKE_SCALE,
            "edge_factor": EDGE_FACTOR,
            "sampler": sampler,
            "engine": gen.engine,
            "bundle_depth": gen.bundle_depth if sampler == "alias"
            else None,
            "edges": edges,
            "seconds": round(seconds, 4),
            "edges_per_second": round(edges / seconds),
            "recursions_per_edge": round(per_edge, 3),
        })
    (_REPO_ROOT / "BENCH_kernel.json").write_text(
        json.dumps(records, indent=2) + "\n")
    table(f"BENCH_kernel.json (scale {SMOKE_SCALE}, generation only)",
          ["sampler", "edges/s", "seconds", "recursions/edge"],
          [[r["sampler"], f"{r['edges_per_second']:,}", r["seconds"],
            r["recursions_per_edge"]] for r in records])
    assert all(r["edges_per_second"] > 0 for r in records)
