"""Figure 8: degree-distribution plots of four generators.

The paper's claim: RMAT, FastKronecker and TrillionG — all stochastic
scope-based models — produce *identical* degree plots, while TeG (whose
scope sizes are statically fixed) produces a plot "far from RMAT's".

Regenerated at scale 14 (paper: 20) and judged the way Figure 8 is read:
by the RMS vertical distance between log-log degree plots
(:func:`repro.analysis.loglog_plot_distance`).  At this reduced scale the
duplicate rate of the WES rejection process is ~16% (vs <1% at the
paper's scale 20), which slightly widens the RMAT-vs-TrillionG gap; the
plots still overlay (distance << 1) while TeG's support collapses to a
handful of spikes.
"""

import numpy as np
import pytest

from repro.analysis import (degree_histogram, fit_kronecker_class_slope,
                            loglog_plot_distance, out_degrees)
from repro.models import (FastKroneckerGenerator, RmatMemGenerator,
                          TegGenerator, TrillionGSeqGenerator)

SCALE = 14
EDGE_FACTOR = 16
N = 1 << SCALE


@pytest.fixture(scope="module")
def degree_series():
    series = {}
    for cls, seed in ((RmatMemGenerator, 10), (FastKroneckerGenerator, 20),
                      (TrillionGSeqGenerator, 30), (TegGenerator, 40)):
        g = cls(SCALE, EDGE_FACTOR, seed=seed)
        series[cls.name] = out_degrees(g.generate(), N)
    return series


def test_figure8_table(benchmark, degree_series, table):
    def rows():
        out = []
        rmat = degree_series["RMAT-mem"]
        for name, seq in degree_series.items():
            h = degree_histogram(seq)
            dist, common = loglog_plot_distance(rmat, seq)
            out.append([name, int(seq.sum()), int(seq.max()),
                        h.degrees.size,
                        round(fit_kronecker_class_slope(seq), 3),
                        round(dist, 3), common])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 8: degree plots at scale 14 (distance vs RMAT)",
          ["generator", "|E|", "d_max", "distinct degrees", "class slope",
           "plot RMS dist", "comparable degrees"], data)


def test_stochastic_trio_plots_overlay(benchmark, degree_series):
    """RMAT, FastKronecker, TrillionG: same log-log plot."""

    def distances():
        rmat = degree_series["RMAT-mem"]
        return {
            "FastKronecker": loglog_plot_distance(
                rmat, degree_series["FastKronecker"]),
            "TrillionG/seq": loglog_plot_distance(
                rmat, degree_series["TrillionG/seq"]),
        }

    result = benchmark.pedantic(distances, rounds=1, iterations=1)
    fk_dist, fk_common = result["FastKronecker"]
    tg_dist, tg_common = result["TrillionG/seq"]
    assert fk_dist < 0.5 and fk_common > 30
    assert tg_dist < 0.8 and tg_common > 30


def test_stochastic_trio_same_slope(benchmark, degree_series):
    def slopes():
        return {name: fit_kronecker_class_slope(seq)
                for name, seq in degree_series.items()
                if name != "TeG"}

    result = benchmark.pedantic(slopes, rounds=1, iterations=1)
    values = list(result.values())
    assert max(values) - min(values) < 0.2


def test_teg_plot_is_far(benchmark, degree_series):
    """TeG deviates: few comparable degrees and a large distance."""

    def verdict():
        return loglog_plot_distance(degree_series["RMAT-mem"],
                                    degree_series["TeG"])

    dist, common = benchmark.pedantic(verdict, rounds=1, iterations=1)
    tg_dist, tg_common = loglog_plot_distance(
        degree_series["RMAT-mem"], degree_series["TrillionG/seq"])
    assert dist > 2 * tg_dist
    assert common < 0.5 * tg_common


def test_in_degree_plots_also_overlay(benchmark):
    """Figure 8 plots both in- and out-degree; the in-degree side of the
    stochastic generators must overlay too (the Graph500 seed is
    symmetric, so in- and out-sides share the distribution family)."""
    from repro.analysis import in_degrees

    def distances():
        series = {}
        for cls, seed in ((RmatMemGenerator, 50),
                          (TrillionGSeqGenerator, 60)):
            g = cls(SCALE, EDGE_FACTOR, seed=seed)
            series[cls.name] = in_degrees(g.generate(), N)
        return loglog_plot_distance(series["RMAT-mem"],
                                    series["TrillionG/seq"])

    dist, common = benchmark.pedantic(distances, rounds=1, iterations=1)
    assert dist < 0.8 and common > 30


def test_teg_collapsed_support(benchmark, degree_series):
    """The visual signature of Figure 8's TeG panel: the static fixing
    collapses the set of attained degree values."""

    def supports():
        return (degree_histogram(degree_series["TeG"]).degrees.size,
                degree_histogram(
                    degree_series["TrillionG/seq"]).degrees.size)

    teg_support, tg_support = benchmark.pedantic(supports, rounds=1,
                                                 iterations=1)
    assert teg_support < 0.7 * tg_support
