"""Table 3: seed parameters and the degree distributions they induce.

For each Table 3 row, generates a graph and measures the induced
distribution against the closed-form prediction:

- ``Kout`` rows: Zipfian out-degree with slope
  ``log2(gamma+delta) - log2(alpha+beta)``;
- ``Kin`` rows: Zipfian in-degree with slope
  ``log2(beta+delta) - log2(alpha+gamma)``;
- the uniform seed: Gaussian degrees with mean ``|E|/|V|``.
"""

import numpy as np

from repro.analysis import (fit_gaussian, fit_kronecker_class_slope,
                            in_degrees, out_degrees)
from repro.core.generator import RecursiveVectorGenerator
from repro.core.seed import UNIFORM, SeedMatrix
from repro.rich_graph import seed_for_in_slope, seed_for_out_slope

SCALE = 13


def test_out_slope_rows(benchmark, table):
    def measure():
        rows = []
        for target in (-1.0, -1.662, -2.2):
            seed = seed_for_out_slope(target)
            g = RecursiveVectorGenerator(SCALE, 16, seed, seed=1,
                                         engine="bitwise")
            deg = out_degrees(g.edges(), g.num_vertices)
            rows.append([f"Kout zipf({target})",
                         round(seed.out_zipf_slope(), 3),
                         round(fit_kronecker_class_slope(deg), 3)])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table("Table 3 (out-degree): predicted vs measured Zipf slope",
          ["seed", "predicted", "measured"], rows)
    for _, predicted, measured in rows:
        assert abs(predicted - measured) < 0.3


def test_in_slope_rows(benchmark, table):
    def measure():
        rows = []
        for target in (-1.2, -1.662):
            seed = seed_for_in_slope(target)
            g = RecursiveVectorGenerator(SCALE, 16, seed, seed=2,
                                         engine="bitwise")
            deg = in_degrees(g.edges(), g.num_vertices)
            rows.append([f"Kin zipf({target})",
                         round(seed.in_zipf_slope(), 3),
                         round(fit_kronecker_class_slope(deg), 3)])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table("Table 3 (in-degree): predicted vs measured Zipf slope",
          ["seed", "predicted", "measured"], rows)
    for _, predicted, measured in rows:
        assert abs(predicted - measured) < 0.35


def test_uniform_seed_gaussian_row(benchmark, table):
    def measure():
        g = RecursiveVectorGenerator(SCALE, 16, UNIFORM, seed=3,
                                     engine="bitwise")
        deg = out_degrees(g.edges(), g.num_vertices)
        return fit_gaussian(deg)

    fit = benchmark.pedantic(measure, rounds=1, iterations=1)
    table("Table 3 (uniform seed): Gaussian with mean |E|/|V|",
          ["statistic", "value", "expected"],
          [["mean", round(fit.mean, 2), 16.0],
           ["excess kurtosis", round(fit.excess_kurtosis, 3), "~0"]])
    assert abs(fit.mean - 16.0) < 0.5
    assert fit.looks_gaussian


def test_graph500_seed_is_minus_1662(benchmark):
    """The paper's sentence: 'the standard seed parameters ... match the
    Zipfian distribution with a slope -1.662'."""
    seed = SeedMatrix.graph500()
    slope = benchmark(seed.out_zipf_slope)
    assert abs(slope + 1.662) < 0.002
