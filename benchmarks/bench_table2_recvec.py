"""Table 2: the naive CDF-vector methods vs the recursive vector.

Measures, per destination determination, the three (data structure,
search) combinations of Table 2 and their memory footprints:

- CDF vector + linear search  — O(|V|) time, O(|V|) space
- CDF vector + binary search  — O(log|V|) time, O(|V|) space
- RecVec + binary search      — O(log|V|) time, O(log|V|) space
"""

import numpy as np
import pytest

from repro.core.probability import brute_force_cdf
from repro.core.recvec import (build_recvec, determine_edge,
                               determine_edge_cdf)
from repro.core.seed import GRAPH500

SCALE = 12
U = 1234
N_DRAWS = 2000


@pytest.fixture(scope="module")
def structures():
    cdf = brute_force_cdf(GRAPH500, U, SCALE)
    recvec = build_recvec(GRAPH500, U, SCALE)
    rng = np.random.default_rng(0)
    xs = rng.uniform(0, float(cdf[-1]), size=N_DRAWS)
    return cdf, recvec, xs


def test_cdf_linear_search(benchmark, structures):
    cdf, _, xs = structures
    benchmark(lambda: [determine_edge_cdf(x, cdf, "linear")
                       for x in xs[:50]])


def test_cdf_binary_search(benchmark, structures):
    cdf, _, xs = structures
    benchmark(lambda: [determine_edge_cdf(x, cdf, "binary") for x in xs])


def test_recvec_binary_search(benchmark, structures):
    _, recvec, xs = structures
    benchmark(lambda: [determine_edge(x, recvec) for x in xs])


def test_table2_summary(benchmark, structures, table):
    """Correctness + the space side of Table 2, printed."""
    cdf, recvec, xs = structures

    def check():
        mismatches = sum(
            determine_edge(x, recvec) != determine_edge_cdf(x, cdf)
            for x in xs)
        return mismatches

    mismatches = benchmark.pedantic(check, rounds=1, iterations=1)
    assert mismatches == 0
    table("Table 2: search structures (scale 12)",
          ["structure", "search", "time complexity", "entries", "bytes"],
          [["CDF vector", "linear", "O(|V|)", cdf.size, cdf.nbytes],
           ["CDF vector", "binary", "O(log |V|)", cdf.size, cdf.nbytes],
           ["RecVec", "binary", "O(log |V|)", recvec.size,
            recvec.nbytes]])
    # The paper's space claim: RecVec is log-sized, the CDF vector is
    # |V|-sized.
    assert recvec.size == SCALE + 1
    assert cdf.size == (1 << SCALE) + 1


def test_trillion_scale_recvec_is_tiny(benchmark):
    """The paper's example: at |V| = 2^36 the RecVec is ~37 entries
    (~300 bytes) while a CDF vector would need ~274 GB."""
    rv = benchmark(lambda: build_recvec(GRAPH500, 12345, 36))
    assert rv.size == 37
    assert rv.nbytes < 512
    cdf_vector_bytes = (2 ** 36) * 4       # 4-byte floats, per the paper
    assert cdf_vector_bytes > 250 * 2 ** 30
