"""Figure 12: TrillionG scalability — time ∝ |E|, memory ~ O(d_max).

Measured part: generation time across scales 12-16 on this machine must
grow linearly in |E| (the paper: "the elapsed time is strictly
proportional to the scale"), and the largest working-set proxy (d_max)
must grow like ``16 * 1.52^scale`` — sublinearly in |E|.  Paper-scale
part: the cost model's 33-38 series against the published numbers,
including the headline "one trillion edges in under two hours on 10 PCs".
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import PAPER
from repro.cluster import PAPER_CLUSTER, CostModel
from repro.core.generator import RecursiveVectorGenerator

MEASURED_SCALES = (12, 13, 14, 15, 16)


@pytest.fixture(scope="module")
def measured():
    rows = []
    for scale in MEASURED_SCALES:
        g = RecursiveVectorGenerator(scale, 16, seed=8, engine="bitwise")
        t0 = time.perf_counter()
        edges = g.edges()
        dt = time.perf_counter() - t0
        dmax = int(np.bincount(edges[:, 0]).max())
        rows.append((scale, dt, edges.shape[0], dmax))
    return rows


def test_measured_table(benchmark, measured, table):
    data = benchmark.pedantic(
        lambda: [[s, round(t, 3), m, d] for s, t, m, d in measured],
        rounds=1, iterations=1)
    table("Figure 12 measured (this machine)",
          ["scale", "seconds", "edges", "d_max"], data)


def test_measured_time_linear_in_edges(benchmark, measured):
    """Doubling |E| should roughly double elapsed time (0.5x-3x window
    tolerates small-scale constant overheads)."""

    def ratios():
        return [measured[i + 1][1] / measured[i][1]
                for i in range(len(measured) - 1)]

    values = benchmark.pedantic(ratios, rounds=1, iterations=1)
    # Judge the overall trend (first to last): 16x the edges should cost
    # ~16x the time, i.e. the per-step geometric mean ratio is ~2.
    overall = measured[-1][1] / measured[0][1]
    steps = len(measured) - 1
    assert 1.4 < overall ** (1 / steps) < 2.8, values


def test_measured_dmax_sublinear(benchmark, measured):
    """d_max grows ~1.52x per scale while |E| doubles — the memory story
    of Figure 12(b)."""

    def ratios():
        return [measured[i + 1][3] / measured[i][3]
                for i in range(len(measured) - 1)]

    values = benchmark.pedantic(ratios, rounds=1, iterations=1)
    mean_ratio = float(np.prod(values) ** (1 / len(values)))
    assert 1.3 < mean_ratio < 1.75


def test_paper_scale_table(benchmark, table):
    model = CostModel(PAPER_CLUSTER)

    def rows():
        out = []
        for scale in range(33, 39):
            est = model.trilliong(scale, "adj6")
            out.append([scale, round(est.elapsed_seconds),
                        PAPER["fig12_time"][scale],
                        round(est.peak_memory_bytes / 2**20),
                        PAPER["fig12_mem_mb"][scale]])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 12 paper scale: cost model vs published",
          ["scale", "ours (s)", "paper (s)", "ours mem (MB)",
           "paper mem (MB)"], data)
    for scale, ours_s, paper_s, ours_mb, paper_mb in data:
        assert 0.6 < ours_s / paper_s < 1.6, scale
        assert 0.85 < ours_mb / paper_mb < 1.15, scale


def test_trillion_edges_headline(benchmark):
    """'It can generate a graph of a trillion edges ... within two hours
    only using 10 PCs' — scale 36 is 2^40 ≈ 1.1e12 edges."""
    model = CostModel(PAPER_CLUSTER)
    est = benchmark.pedantic(lambda: model.trilliong(36, "adj6"),
                             rounds=1, iterations=1)
    assert not est.oom
    assert est.elapsed_seconds < 2.5 * 3600
    assert model.num_edges(36) > 1e12
