"""Overhead gate for the live-introspection layer.

``test_flight_overhead_gate`` is the CI gate for the flight recorder and
the telemetry HTTP server: the full pipeline (generation + adj6 write)
with a recorder sampling at the default cadence *and* a bound server
must keep >= 0.95 of the introspection-off throughput.  Off-mode is the
production default — it must pay nothing beyond one ``None`` check.
Best-of-3 per mode, modes interleaved so machine noise hits both alike;
the result lands in ``BENCH_flight.json`` at the repo root so later PRs
have a trajectory to compare against.
"""

import json
import time
from pathlib import Path

from repro.core.generator import RecursiveVectorGenerator
from repro.formats import get_format
from repro.telemetry import reset_telemetry
from repro.telemetry.flight import start_flight, stop_flight
from repro.telemetry.server import TelemetryServer

SCALE = 13

_REPO_ROOT = Path(__file__).resolve().parent.parent


def test_flight_overhead_gate(tmp_path, table):
    fmt = get_format("adj6")

    def one_run(label):
        gen = RecursiveVectorGenerator(SCALE, 16, seed=9)
        t0 = time.perf_counter()
        result = fmt.write_blocks(tmp_path / f"fl.{label}",
                                  gen.iter_blocks(), gen.num_vertices)
        return result, time.perf_counter() - t0

    best = {"on": float("inf"), "off": float("inf")}
    edges = 0
    samples = 0
    for _ in range(3):
        for mode in ("on", "off"):
            reset_telemetry()
            server = None
            if mode == "on":
                start_flight(0.05)
                server = TelemetryServer(0).start()
            try:
                result, seconds = one_run(mode)
            finally:
                if mode == "on":
                    recorder = stop_flight()
                    samples = max(samples, len(recorder.tail()))
                    assert server is not None
                    server.stop()
            best[mode] = min(best[mode], seconds)
            edges = result.num_edges

    ratio = (edges / best["on"]) / (edges / best["off"])
    records = [{
        "scale": SCALE,
        "format": "adj6",
        "introspection": mode,
        "edges_per_second": round(edges / best[mode]),
        "seconds": round(best[mode], 4),
    } for mode in ("on", "off")]
    records.append({"scale": SCALE, "format": "adj6",
                    "introspection": "ratio",
                    "on_over_off": round(ratio, 4),
                    "flight_samples": samples})
    (_REPO_ROOT / "BENCH_flight.json").write_text(
        json.dumps(records, indent=2) + "\n")
    table(f"Flight + server overhead (scale {SCALE}, adj6, best of 3)",
          ["introspection", "seconds", "edges/s"],
          [[m, round(best[m], 4), f"{edges / best[m]:,.0f}"]
           for m in ("on", "off")] + [["on/off", f"{ratio:.3f}", ""]])
    assert samples >= 1                      # the recorder really sampled
    assert ratio >= 0.95, (
        f"introspection-on throughput only {ratio:.3f} of off; "
        "the sampling/serving path regressed")
