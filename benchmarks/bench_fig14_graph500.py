"""Figure 14 (Appendix D): TrillionG vs the Graph500 benchmark.

Measured part: the Graph500-model pipeline (NSKG + scramble + CSR
construction) on this machine, showing its construction phases, versus
TrillionG writing CSR6 in a streaming pass.  Paper-scale part: the cost
model against the published 1GbE/InfiniBand curves, the O.O.M wall past
scale 30, and the Figure 14(b) construction-overhead ratios (TrillionG
6-7%, Graph500 >90% on 1GbE).
"""

import time

import pytest

from benchmarks.conftest import PAPER
from repro.cluster import PAPER_CLUSTER, PAPER_CLUSTER_IB, CostModel
from repro.core.generator import RecursiveVectorGenerator
from repro.formats import get_format
from repro.models import Graph500Generator

SCALE = 14


def test_measured_graph500_pipeline(benchmark, table):
    def run():
        g = Graph500Generator(SCALE, 16, seed=2)
        g.generate()
        return dict(g.report.phase_seconds), \
            g.construction_overhead_ratio()

    phases, ratio = benchmark.pedantic(run, rounds=1, iterations=1)
    table("Figure 14 measured: Graph500-model phases (scale 14)",
          ["phase", "seconds"],
          [[k, round(v, 4)] for k, v in phases.items()]
          + [["construction ratio", round(ratio, 3)]])
    assert {"generate", "scramble", "construct"} <= set(phases)


def test_measured_trilliong_csr_write(benchmark, tmp_path):
    """TrillionG emits CSR6 in one streaming pass — the adjacency comes
    out sorted, so 'construction' is just the write."""
    g = RecursiveVectorGenerator(SCALE, 16, seed=3, noise=0.1)
    fmt = get_format("csr6")

    def run():
        return fmt.write(tmp_path / "g.csr6", g.iter_adjacency(),
                         g.num_vertices)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_edges > 200000
    indptr, indices = fmt.read_csr(tmp_path / "g.csr6")
    assert indptr[-1] == result.num_edges


def test_paper_scale_table(benchmark, table):
    m_1g = CostModel(PAPER_CLUSTER)
    m_ib = CostModel(PAPER_CLUSTER_IB)

    def rows():
        out = []
        for scale in range(25, 31):
            tg = m_1g.trilliong_nskg_csr(scale)
            g1 = m_1g.graph500(scale)
            gib = m_ib.graph500(scale)
            fmt_cell = lambda est: ("O.O.M" if est.oom
                                    else round(est.elapsed_seconds))
            out.append([
                scale, fmt_cell(tg), PAPER["fig14_tg"].get(scale, "-"),
                fmt_cell(g1), PAPER["fig14_g500_1g"].get(scale, "O.O.M"),
                fmt_cell(gib), PAPER["fig14_g500_ib"].get(scale, "O.O.M"),
            ])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 14(a) paper scale: cost model vs published",
          ["scale", "TG ours", "TG paper", "G500-1G ours",
           "G500-1G paper", "G500-IB ours", "G500-IB paper"], data)
    for row in data:
        scale, tg_ours, tg_paper = row[0], row[1], row[2]
        if isinstance(tg_ours, int) and isinstance(tg_paper, int):
            assert 0.4 < tg_ours / tg_paper < 2.0, scale


def test_construction_ratio_table(benchmark, table):
    """Figure 14(b): ratio of construction to total time."""
    m_1g = CostModel(PAPER_CLUSTER)
    m_ib = CostModel(PAPER_CLUSTER_IB)

    def rows():
        out = []
        for scale in range(25, 30):
            tg = m_1g.trilliong_nskg_csr(scale)
            g1 = m_1g.graph500(scale)
            gib = m_ib.graph500(scale)
            out.append([scale,
                        f"{CostModel.construction_ratio(tg):.0%}",
                        f"{CostModel.construction_ratio(g1):.0%}",
                        f"{CostModel.construction_ratio(gib):.0%}"])
        return out

    data = benchmark.pedantic(rows, rounds=1, iterations=1)
    table("Figure 14(b): construction overhead ratio",
          ["scale", "TrillionG", "Graph500-1G", "Graph500-IB"], data)
    tg29 = CostModel.construction_ratio(
        m_1g.trilliong_nskg_csr(29))
    g500_29 = CostModel.construction_ratio(m_1g.graph500(29))
    assert 0.04 < tg29 < 0.10          # paper: 6-7%
    assert g500_29 > 0.9               # paper: >90% at scale 29


def test_oom_wall_and_network_insensitivity(benchmark):
    def verdict():
        ib = CostModel(PAPER_CLUSTER_IB)
        one_g = CostModel(PAPER_CLUSTER)
        return (ib.graph500(30).oom,
                one_g.trilliong_nskg_csr(30).oom,
                one_g.trilliong_nskg_csr(28).elapsed_seconds,
                ib.trilliong_nskg_csr(28).elapsed_seconds)

    g500_oom, tg_oom, tg_1g, tg_ib = benchmark.pedantic(verdict, rounds=1,
                                                        iterations=1)
    assert g500_oom and not tg_oom
    assert abs(tg_1g - tg_ib) < 1e-9   # TrillionG uses no network
