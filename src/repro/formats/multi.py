"""Write several formats in one generation pass.

Generation dominates cost, so producing TSV + ADJ6 + CSR6 outputs should
not triple it: :func:`write_many_blocks` tees one block stream into an
open :class:`~repro.formats.base.StreamWriter` per format, replaying each
:class:`~repro.core.generator.AdjacencyBlock` into all of them without
re-generating or buffering the graph.  :func:`write_many` is the
``(vertex, neighbours)`` pair-stream compatibility surface; it batches
pairs into blocks internally so every format still takes its vectorized
encoder.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from ..core.generator import AdjacencyBlock
from ..errors import FormatError
from .base import WriteResult, blocks_from_adjacency, get_format

__all__ = ["write_many", "write_many_blocks"]


def write_many_blocks(blocks: Iterable[AdjacencyBlock],
                      num_vertices: int,
                      outputs: dict[str, Path | str]
                      ) -> dict[str, WriteResult]:
    """Tee one :class:`AdjacencyBlock` stream into multiple format writers.

    Parameters
    ----------
    blocks:
        The block stream (consumed exactly once).
    outputs:
        Mapping from format name to output path, e.g.
        ``{"adj6": "g.adj6", "tsv": "g.tsv"}``.

    Returns
    -------
    Mapping from format name to that writer's :class:`WriteResult`.
    """
    if not outputs:
        raise ValueError("write_many_blocks needs at least one output")
    writers = {name: get_format(name).open_writer(path, num_vertices)
               for name, path in outputs.items()}
    results: dict[str, WriteResult] = {}
    try:
        for block in blocks:
            for writer in writers.values():
                writer.add_block(block)
        for name, writer in writers.items():
            results[name] = writer.close()
        return results
    finally:
        # If the stream or a close failed, release the remaining handles;
        # only I/O/format finalization errors are swallowed so the original
        # exception stays primary.  Partial files remain on disk.
        if len(results) != len(writers):
            for name, writer in writers.items():
                if name not in results:
                    try:
                        writer.close()
                    except (OSError, FormatError):
                        pass


def write_many(adjacency: Iterable[tuple[int, np.ndarray]],
               num_vertices: int,
               outputs: dict[str, Path | str]) -> dict[str, WriteResult]:
    """Tee one ``(vertex, neighbours)`` stream into multiple format writers.

    Pairs are batched into blocks internally (see
    :func:`repro.formats.base.blocks_from_adjacency`), so output is
    byte-identical to per-vertex ``add`` calls while every writer still
    runs its vectorized block encoder.
    """
    return write_many_blocks(blocks_from_adjacency(adjacency),
                             num_vertices, outputs)
