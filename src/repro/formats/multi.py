"""Write several formats in one generation pass.

Generation dominates cost, so producing TSV + ADJ6 + CSR6 outputs should
not triple it: :func:`write_many` tees one adjacency stream into an open
:class:`~repro.formats.base.StreamWriter` per format, replaying each
``(vertex, neighbours)`` pair into all of them without re-generating or
buffering the graph.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

import numpy as np

from ..errors import FormatError
from .base import WriteResult, get_format

__all__ = ["write_many"]


def write_many(adjacency: Iterable[tuple[int, np.ndarray]],
               num_vertices: int,
               outputs: dict[str, Path | str]) -> dict[str, WriteResult]:
    """Tee one adjacency stream into multiple format writers.

    Parameters
    ----------
    adjacency:
        The ``(vertex, neighbours)`` stream (consumed exactly once).
    outputs:
        Mapping from format name to output path, e.g.
        ``{"adj6": "g.adj6", "tsv": "g.tsv"}``.

    Returns
    -------
    Mapping from format name to that writer's :class:`WriteResult`.
    """
    if not outputs:
        raise ValueError("write_many needs at least one output")
    writers = {name: get_format(name).open_writer(path, num_vertices)
               for name, path in outputs.items()}
    results: dict[str, WriteResult] = {}
    try:
        for u, vs in adjacency:
            vs = np.asarray(vs, dtype=np.int64)
            for writer in writers.values():
                writer.add(int(u), vs)
        for name, writer in writers.items():
            results[name] = writer.close()
        return results
    finally:
        # If the stream or a close failed, release the remaining handles;
        # only I/O/format finalization errors are swallowed so the original
        # exception stays primary.  Partial files remain on disk.
        if len(results) != len(writers):
            for name, writer in writers.items():
                if name not in results:
                    try:
                        writer.close()
                    except (OSError, FormatError):
                        pass
