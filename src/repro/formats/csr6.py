"""CSR6 — the 6-byte Compressed Sparse Row binary format (Section 5).

Layout (little-endian)::

    magic        : 4 bytes  (b"CSR6")
    num_vertices : 8 bytes (uint64)
    num_edges    : 8 bytes (uint64)
    indptr       : (num_vertices + 1) x 8 bytes (uint64 prefix sums)
    indices      : num_edges x 6 bytes (destination ids)

CSR requires vertices in order and each adjacency list sorted — which is
exactly how the AVS generator emits them, so TrillionG writes CSR6 in one
streaming pass.  The block encoder validates ordering for a whole
:class:`~repro.core.generator.AdjacencyBlock` with vectorized
comparisons and emits its destination ids as one 6-byte-packed buffer
per block.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from ..core.generator import AdjacencyBlock
from ..errors import FormatError
from ..telemetry import Stopwatch
from .base import (SIX_BYTES, GraphFormat, StreamWriter, WriteResult,
                   decode_id6, encode_id6, id6_byte_view, register_format)
from .pipeline import open_sink

__all__ = ["Csr6Format"]

_MAGIC = b"CSR6"
_HEADER = struct.Struct("<4sQQ")


class _Csr6Writer(StreamWriter):
    """Two-section streaming writer: indices stream behind a placeholder
    header + indptr block that is backpatched on close."""

    def __init__(self, path: Path | str, num_vertices: int) -> None:
        super().__init__(path, num_vertices)
        self._degrees = np.zeros(num_vertices, dtype=np.int64)
        self._last_u = -1
        self._file = open(self.path, "wb")
        self._file.write(_HEADER.pack(_MAGIC, num_vertices, 0))
        self._file.write(b"\x00" * ((num_vertices + 1) * 8))
        self._sink = open_sink(self._file)

    def _check_sources(self, sources: np.ndarray) -> None:
        if int(sources[0]) <= self._last_u or (
                sources.size > 1 and bool((np.diff(sources) <= 0).any())):
            raise FormatError(
                "CSR6 requires vertices in strictly increasing order "
                f"(block starting at {int(sources[0])} after "
                f"{self._last_u})")
        if int(sources[-1]) >= self.num_vertices:
            raise FormatError(
                f"vertex {int(sources[-1])} out of range for "
                f"|V|={self.num_vertices}")

    @staticmethod
    def _check_sorted_rows(block: AdjacencyBlock) -> None:
        """Vectorized per-row sortedness: a negative step in the
        concatenated destinations is legal only at a row boundary."""
        dests = block.destinations
        if dests.size < 2:
            return
        descending = np.diff(dests) < 0
        interior = block.offsets[1:-1]
        interior = interior[(interior > 0) & (interior < dests.size)]
        boundary = np.zeros(dests.size - 1, dtype=bool)
        boundary[interior - 1] = True
        bad = descending & ~boundary
        if bad.any():
            position = int(np.nonzero(bad)[0][0])
            row = int(np.searchsorted(block.offsets, position,
                                      side="right")) - 1
            raise FormatError(
                "CSR6 requires sorted adjacency lists "
                f"(vertex {int(block.sources[row])})")

    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        if vertex <= self._last_u:
            raise FormatError(
                "CSR6 requires vertices in strictly increasing order "
                f"(got {vertex} after {self._last_u})")
        if vertex >= self.num_vertices:
            raise FormatError(
                f"vertex {vertex} out of range for "
                f"|V|={self.num_vertices}")
        vs = np.asarray(neighbours, dtype=np.int64)
        if vs.size and np.any(np.diff(vs) < 0):
            raise FormatError(
                f"CSR6 requires sorted adjacency lists (vertex {vertex})")
        self._last_u = vertex
        self._degrees[vertex] = vs.size
        self._sink.write(encode_id6(vs))
        self.num_edges += int(vs.size)

    def add_block(self, block: AdjacencyBlock) -> None:
        sources = np.ascontiguousarray(block.sources, dtype=np.int64)
        if sources.size == 0:
            return
        with self._encode_watch:
            self._check_sources(sources)
            self._check_sorted_rows(block)
            buffer = id6_byte_view(block.destinations).tobytes()
        self._blocks_counter.inc()
        self._degrees[sources] = block.degrees
        self._last_u = int(sources[-1])
        self._sink.write(buffer)
        self.num_edges += block.num_edges

    def _finalize(self) -> WriteResult:
        # A deferred pipeline I/O error re-raises out of sink.close();
        # the handle must be released either way, but on the happy path
        # the close stays inside the backpatch watch (below) so the
        # timing decomposition is unchanged.
        try:
            self._sink.close()
            # The backpatch happens after the sink has drained, on the
            # main thread, inside the writer's open-to-close window —
            # timing it with its own watch (rather than folding it into
            # encode_seconds) keeps the check_write_result decomposition
            # exact: encode + write + backpatch are disjoint intervals.
            backpatch = Stopwatch()
            with backpatch:
                self._file.seek(0)
                self._file.write(_HEADER.pack(_MAGIC, self.num_vertices,
                                              self.num_edges))
                indptr = np.zeros(self.num_vertices + 1, dtype="<u8")
                np.cumsum(self._degrees, out=indptr[1:])
                self._file.write(indptr.tobytes())
                self._file.close()
        finally:
            if not self._file.closed:
                self._file.close()
        return self._build_result(self.path.stat().st_size,
                                  extra_write_seconds=backpatch.seconds)


class Csr6Format(GraphFormat):
    """6-byte CSR binary format."""

    name = "csr6"

    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        return _Csr6Writer(path, num_vertices)

    def read_csr(self, path: Path | str) -> tuple[np.ndarray, np.ndarray]:
        """Read the raw (indptr, indices) pair."""
        path = Path(path)
        with open(path, "rb") as f:
            head = f.read(_HEADER.size)
            if len(head) != _HEADER.size:
                raise FormatError(f"{path}: truncated CSR6 header")
            magic, num_vertices, num_edges = _HEADER.unpack(head)
            if magic != _MAGIC:
                raise FormatError(f"{path}: not a CSR6 file")
            indptr_raw = f.read((num_vertices + 1) * 8)
            if len(indptr_raw) != (num_vertices + 1) * 8:
                raise FormatError(f"{path}: truncated CSR6 indptr")
            indptr = np.frombuffer(indptr_raw, dtype="<u8").astype(np.int64)
            body = f.read(num_edges * SIX_BYTES)
            if len(body) != num_edges * SIX_BYTES:
                raise FormatError(f"{path}: truncated CSR6 indices")
            indices = decode_id6(body)
        if indptr[-1] != num_edges:
            raise FormatError(f"{path}: inconsistent CSR6 indptr")
        return indptr, indices

    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        indptr, indices = self.read_csr(path)
        for u in range(indptr.size - 1):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if hi > lo:
                yield u, indices[lo:hi]


register_format(Csr6Format())
