"""CSR6 — the 6-byte Compressed Sparse Row binary format (Section 5).

Layout (little-endian)::

    magic        : 4 bytes  (b"CSR6")
    num_vertices : 8 bytes (uint64)
    num_edges    : 8 bytes (uint64)
    indptr       : (num_vertices + 1) x 8 bytes (uint64 prefix sums)
    indices      : num_edges x 6 bytes (destination ids)

CSR requires vertices in order and each adjacency list sorted — which is
exactly how the AVS generator emits them, so TrillionG writes CSR6 in one
streaming pass.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import FormatError
from .base import (SIX_BYTES, GraphFormat, StreamWriter, WriteResult,
                   decode_id6, encode_id6, register_format)

__all__ = ["Csr6Format"]

_MAGIC = b"CSR6"
_HEADER = struct.Struct("<4sQQ")


class _Csr6Writer(StreamWriter):
    """Two-section streaming writer: indices stream behind a placeholder
    header + indptr block that is backpatched on close."""

    def __init__(self, path: Path | str, num_vertices: int) -> None:
        super().__init__(path, num_vertices)
        self._degrees = np.zeros(num_vertices, dtype=np.int64)
        self._last_u = -1
        self._file = open(self.path, "wb")
        self._file.write(_HEADER.pack(_MAGIC, num_vertices, 0))
        self._file.write(b"\x00" * ((num_vertices + 1) * 8))

    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        if vertex <= self._last_u:
            raise FormatError(
                "CSR6 requires vertices in strictly increasing order "
                f"(got {vertex} after {self._last_u})")
        if vertex >= self.num_vertices:
            raise FormatError(
                f"vertex {vertex} out of range for "
                f"|V|={self.num_vertices}")
        vs = np.asarray(neighbours, dtype=np.int64)
        if vs.size and np.any(np.diff(vs) < 0):
            raise FormatError(
                f"CSR6 requires sorted adjacency lists (vertex {vertex})")
        self._last_u = vertex
        self._degrees[vertex] = vs.size
        self._file.write(encode_id6(vs))
        self.num_edges += int(vs.size)

    def close(self) -> WriteResult:
        self._file.seek(0)
        self._file.write(_HEADER.pack(_MAGIC, self.num_vertices,
                                      self.num_edges))
        indptr = np.zeros(self.num_vertices + 1, dtype="<u8")
        np.cumsum(self._degrees, out=indptr[1:])
        self._file.write(indptr.tobytes())
        self._file.close()
        return WriteResult(self.path, self.num_vertices, self.num_edges,
                           self.path.stat().st_size)


class Csr6Format(GraphFormat):
    """6-byte CSR binary format."""

    name = "csr6"

    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        return _Csr6Writer(path, num_vertices)

    def read_csr(self, path: Path | str) -> tuple[np.ndarray, np.ndarray]:
        """Read the raw (indptr, indices) pair."""
        path = Path(path)
        with open(path, "rb") as f:
            head = f.read(_HEADER.size)
            if len(head) != _HEADER.size:
                raise FormatError(f"{path}: truncated CSR6 header")
            magic, num_vertices, num_edges = _HEADER.unpack(head)
            if magic != _MAGIC:
                raise FormatError(f"{path}: not a CSR6 file")
            indptr_raw = f.read((num_vertices + 1) * 8)
            if len(indptr_raw) != (num_vertices + 1) * 8:
                raise FormatError(f"{path}: truncated CSR6 indptr")
            indptr = np.frombuffer(indptr_raw, dtype="<u8").astype(np.int64)
            body = f.read(num_edges * SIX_BYTES)
            if len(body) != num_edges * SIX_BYTES:
                raise FormatError(f"{path}: truncated CSR6 indices")
            indices = decode_id6(body)
        if indptr[-1] != num_edges:
            raise FormatError(f"{path}: inconsistent CSR6 indptr")
        return indptr, indices

    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        indptr, indices = self.read_csr(path)
        for u in range(indptr.size - 1):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            if hi > lo:
                yield u, indices[lo:hi]


register_format(Csr6Format())
