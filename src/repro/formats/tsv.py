"""TSV — the edge-list text format (one ``source<TAB>destination`` line per
edge).  Verbose and slow, as the paper notes (3-4x larger than ADJ6), but
it is the only format most generators support, so it is the interchange
default."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import FormatError
from .base import GraphFormat, StreamWriter, WriteResult, register_format

__all__ = ["TsvFormat"]


class _TsvWriter(StreamWriter):
    def __init__(self, path: Path | str, num_vertices: int) -> None:
        super().__init__(path, num_vertices)
        self._file = open(self.path, "w", encoding="ascii")

    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        if len(neighbours) == 0:
            return
        self._file.write(
            "".join(f"{vertex}\t{v}\n" for v in neighbours))
        self.num_edges += len(neighbours)

    def close(self) -> WriteResult:
        self._file.close()
        return WriteResult(self.path, self.num_vertices, self.num_edges,
                           self.path.stat().st_size)


class TsvFormat(GraphFormat):
    """Plain-text edge list."""

    name = "tsv"

    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        return _TsvWriter(path, num_vertices)

    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        current_u: int | None = None
        neighbours: list[int] = []
        with open(path, "r", encoding="ascii") as f:
            for line_no, line in enumerate(f, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                try:
                    u_text, v_text = line.split("\t")
                    u, v = int(u_text), int(v_text)
                except ValueError as exc:
                    raise FormatError(
                        f"{path}:{line_no}: malformed TSV line "
                        f"{line!r}") from exc
                if u != current_u:
                    if current_u is not None:
                        yield current_u, np.array(neighbours,
                                                  dtype=np.int64)
                    current_u = u
                    neighbours = []
                neighbours.append(v)
        if current_u is not None:
            yield current_u, np.array(neighbours, dtype=np.int64)


register_format(TsvFormat())
