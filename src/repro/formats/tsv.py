"""TSV — the edge-list text format (one ``source<TAB>destination`` line per
edge).  Verbose and slow, as the paper notes (3-4x larger than ADJ6), but
it is the only format most generators support, so it is the interchange
default.  The block encoder renders every edge of an
:class:`~repro.core.generator.AdjacencyBlock` with vectorized
``numpy.char`` concatenation and emits one ``write()`` per block."""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

import numpy as np

from ..core.generator import AdjacencyBlock
from ..errors import FormatError
from .base import GraphFormat, StreamWriter, WriteResult, register_format
from .pipeline import open_sink

__all__ = ["TsvFormat"]


class _TsvWriter(StreamWriter):
    def __init__(self, path: Path | str, num_vertices: int) -> None:
        super().__init__(path, num_vertices)
        self._file = open(self.path, "w", encoding="ascii")
        self._sink = open_sink(self._file)

    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        if len(neighbours) == 0:
            return
        self._sink.write(
            "".join(f"{vertex}\t{v}\n" for v in neighbours))
        self.num_edges += len(neighbours)

    def add_block(self, block: AdjacencyBlock) -> None:
        if block.num_edges == 0:
            return
        with self._encode_watch:
            sources = np.repeat(block.sources, block.degrees)
            lines = np.char.add(
                np.char.add(sources.astype(np.str_), "\t"),
                np.char.add(block.destinations.astype(np.str_), "\n"))
            buffer = "".join(lines.tolist())
        self._blocks_counter.inc()
        self._sink.write(buffer)
        self.num_edges += block.num_edges

    def _finalize(self) -> WriteResult:
        # A deferred pipeline I/O error re-raises out of sink.close();
        # the file handle must be released either way.
        try:
            self._sink.close()
        finally:
            self._file.close()
        return self._build_result(self.path.stat().st_size)


class TsvFormat(GraphFormat):
    """Plain-text edge list."""

    name = "tsv"

    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        return _TsvWriter(path, num_vertices)

    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        current_u: int | None = None
        neighbours: list[int] = []
        with open(path, "r", encoding="ascii") as f:
            for line_no, line in enumerate(f, 1):
                line = line.rstrip("\n")
                if not line:
                    continue
                try:
                    u_text, v_text = line.split("\t")
                    u, v = int(u_text), int(v_text)
                except ValueError as exc:
                    raise FormatError(
                        f"{path}:{line_no}: malformed TSV line "
                        f"{line!r}") from exc
                if u != current_u:
                    if current_u is not None:
                        yield current_u, np.array(neighbours,
                                                  dtype=np.int64)
                    current_u = u
                    neighbours = []
                neighbours.append(v)
        if current_u is not None:
            yield current_u, np.array(neighbours, dtype=np.int64)


register_format(TsvFormat())
