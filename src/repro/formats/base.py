"""Graph output format framework (Section 5).

TrillionG supports three formats: the edge-list text format (TSV), the
6-byte adjacency-list binary format (ADJ6), and the 6-byte Compressed
Sparse Row binary format (CSR6).  Writers consume a stream of
``(vertex, neighbours)`` pairs (the natural AVS output — neighbours of each
vertex are generated on the same worker); readers provide both full-edge
materialization and adjacency streaming, and are used by tests and the
example applications.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import FormatError

__all__ = ["WriteResult", "GraphFormat", "StreamWriter", "register_format", "get_format",
           "available_formats", "SIX_BYTES", "encode_id6", "decode_id6"]

#: Width of a vertex ID in the binary formats.  6 bytes covers 2^48
#: vertices — the paper's minimum for trillion-scale graphs.
SIX_BYTES = 6


@dataclass(frozen=True)
class WriteResult:
    """Outcome of writing a graph file."""

    path: Path
    num_vertices: int
    num_edges: int
    bytes_written: int


class StreamWriter(ABC):
    """Incremental writer: feed ``(vertex, neighbours)`` pairs one at a
    time, then :meth:`close` to finalize the file.

    Enables single-pass teeing of one generation stream into several
    formats (see :func:`repro.formats.multi.write_many`) without
    buffering the graph.
    """

    def __init__(self, path: Path | str, num_vertices: int) -> None:
        self.path = Path(path)
        self.num_vertices = num_vertices
        self.num_edges = 0

    @abstractmethod
    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        """Append one vertex's adjacency."""

    @abstractmethod
    def close(self) -> WriteResult:
        """Finalize the file and return the outcome."""

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Best effort: release the handle; the partial file remains.
            # Only I/O and format finalization errors are swallowed — the
            # in-flight exception stays primary; anything else propagates.
            try:
                self.close()
            except (OSError, FormatError):
                pass


class GraphFormat(ABC):
    """A graph file format: symmetric write/read pair."""

    #: Short name used on the CLI and in benchmarks ("tsv", "adj6", "csr6").
    name: str = "abstract"

    @abstractmethod
    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        """Open an incremental writer for this format."""

    def write(self, path: Path | str,
              adjacency: Iterable[tuple[int, np.ndarray]],
              num_vertices: int) -> WriteResult:
        """Write ``(vertex, neighbours)`` pairs to ``path``."""
        writer = self.open_writer(path, num_vertices)
        for u, vs in adjacency:
            writer.add(int(u), np.asarray(vs, dtype=np.int64))
        return writer.close()

    @abstractmethod
    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        """Stream ``(vertex, neighbours)`` pairs back from ``path``."""

    def read_edges(self, path: Path | str) -> np.ndarray:
        """Materialize the file as an ``(m, 2)`` edge array."""
        chunks = []
        for u, vs in self.iter_adjacency(path):
            if len(vs):
                chunk = np.empty((len(vs), 2), dtype=np.int64)
                chunk[:, 0] = u
                chunk[:, 1] = vs
                chunks.append(chunk)
        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(chunks)

    def write_edges(self, path: Path | str, edges: np.ndarray,
                    num_vertices: int) -> WriteResult:
        """Convenience: write an edge array (grouped by source first)."""
        edges = np.asarray(edges, dtype=np.int64)
        order = np.argsort(edges[:, 0] * np.int64(num_vertices)
                           + edges[:, 1], kind="stable")
        edges = edges[order]
        return self.write(path, _group_by_source(edges), num_vertices)


def _group_by_source(sorted_edges: np.ndarray
                     ) -> Iterator[tuple[int, np.ndarray]]:
    if sorted_edges.shape[0] == 0:
        return
    sources = sorted_edges[:, 0]
    boundaries = np.nonzero(np.diff(sources))[0] + 1
    starts = np.concatenate([[0], boundaries])
    stops = np.concatenate([boundaries, [sorted_edges.shape[0]]])
    for lo, hi in zip(starts, stops):
        yield int(sources[lo]), sorted_edges[lo:hi, 1]


_REGISTRY: dict[str, GraphFormat] = {}


def register_format(fmt: GraphFormat) -> GraphFormat:
    """Register a format instance under its name."""
    _REGISTRY[fmt.name] = fmt
    return fmt


def get_format(name: str) -> GraphFormat:
    """Look up a registered format by name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise FormatError(
            f"unknown graph format {name!r}; available: "
            f"{sorted(_REGISTRY)}") from None


def available_formats() -> list[str]:
    """Registered format names."""
    return sorted(_REGISTRY)


def encode_id6(values: np.ndarray) -> bytes:
    """Encode int64 vertex IDs as packed little-endian 6-byte integers."""
    arr = np.ascontiguousarray(values, dtype="<i8")
    if arr.size and (arr.min() < 0 or arr.max() >= 1 << 48):
        raise FormatError("vertex id out of 6-byte range")
    as_bytes = arr.view(np.uint8).reshape(-1, 8)
    return as_bytes[:, :SIX_BYTES].tobytes()


def decode_id6(data: bytes) -> np.ndarray:
    """Decode packed little-endian 6-byte integers to int64."""
    if len(data) % SIX_BYTES:
        raise FormatError("truncated 6-byte id block")
    count = len(data) // SIX_BYTES
    raw = np.frombuffer(data, dtype=np.uint8).reshape(count, SIX_BYTES)
    out = np.zeros((count, 8), dtype=np.uint8)
    out[:, :SIX_BYTES] = raw
    return out.view("<i8").ravel().astype(np.int64)
