"""Graph output format framework (Section 5).

TrillionG supports three formats: the edge-list text format (TSV), the
6-byte adjacency-list binary format (ADJ6), and the 6-byte Compressed
Sparse Row binary format (CSR6).  The unit of the write path is the
:class:`~repro.core.generator.AdjacencyBlock` — the CSR-like triplet the
AVS engines produce natively — so whole blocks are encoded with
vectorized numpy buffer assembly and hit the disk as one ``write()``
each (see ``docs/formats.md``).  ``(vertex, neighbours)`` pairs remain
supported as the compatibility surface: :meth:`StreamWriter.add` is the
per-vertex fallback, and :meth:`GraphFormat.write` batches pair streams
into blocks internally.  Readers provide both full-edge materialization
and adjacency streaming, and are used by tests and the example
applications.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..contracts import check_write_result
from ..core.generator import AdjacencyBlock
from ..errors import FormatError
from ..telemetry import Stopwatch, registry, span
from .pipeline import WriteSink

__all__ = ["WriteResult", "GraphFormat", "StreamWriter", "register_format",
           "get_format", "available_formats", "SIX_BYTES", "encode_id6",
           "decode_id6", "id6_byte_view", "blocks_from_adjacency",
           "block_from_edges", "blocks_from_sorted_keys"]

#: Width of a vertex ID in the binary formats.  6 bytes covers 2^48
#: vertices — the paper's minimum for trillion-scale graphs.
SIX_BYTES = 6

#: Sources per block when batching a ``(vertex, neighbours)`` pair stream
#: into :class:`AdjacencyBlock` units for the vectorized encoders.
_PAIR_BATCH = 4096


@dataclass(frozen=True)
class WriteResult:
    """Outcome of writing a graph file, with throughput observability.

    ``encode_seconds`` is wall time spent turning adjacency into format
    bytes; ``write_seconds`` is wall time inside ``file.write`` (measured
    in the background thread when the pipeline is on, so encode and write
    time may overlap); ``elapsed_seconds`` is writer-open to close.
    """

    path: Path
    num_vertices: int
    num_edges: int
    bytes_written: int
    encode_seconds: float = 0.0
    write_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def edges_per_second(self) -> float:
        """Edge throughput over the writer's lifetime (0 when untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.num_edges / self.elapsed_seconds

    @property
    def bytes_per_second(self) -> float:
        """Byte throughput over the writer's lifetime (0 when untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.bytes_written / self.elapsed_seconds


class StreamWriter(ABC):
    """Incremental writer: feed whole :class:`AdjacencyBlock`s (fast
    path) or ``(vertex, neighbours)`` pairs (fallback), then
    :meth:`close` to finalize the file.

    Enables single-pass teeing of one generation stream into several
    formats (see :func:`repro.formats.multi.write_many_blocks`) without
    buffering the graph.  ``close`` is idempotent; the first call
    finalizes the file and caches its :class:`WriteResult` in
    :attr:`result`, which context-manager use also populates so the
    outcome of a ``with`` block is never lost.
    """

    def __init__(self, path: Path | str, num_vertices: int) -> None:
        self.path = Path(path)
        self.num_vertices = num_vertices
        self.num_edges = 0
        #: Set by the first :meth:`close` (including via ``with``).
        self.result: WriteResult | None = None
        #: Accumulates wall time spent encoding blocks into format
        #: bytes; format writers wrap their encoders in
        #: ``with self._encode_watch:``.
        self._encode_watch = Stopwatch()
        #: Open-to-close wall time; stopped by :meth:`_build_result`.
        self._elapsed_watch = Stopwatch().start()
        self._blocks_counter = registry().counter("format.blocks_encoded")

    @property
    def encode_seconds(self) -> float:
        """Wall time spent encoding blocks into format bytes."""
        return self._encode_watch.seconds

    @abstractmethod
    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        """Append one vertex's adjacency (per-vertex fallback path)."""

    def add_block(self, block: AdjacencyBlock) -> None:
        """Append one generated block.

        Format writers override this with a vectorized whole-block
        encoder; the base implementation falls back to per-vertex
        :meth:`add` calls and produces byte-identical output.
        """
        for vertex, neighbours in block.iter_adjacency():
            self.add(vertex, neighbours)

    @abstractmethod
    def _finalize(self) -> WriteResult:
        """Flush, close the file, and build the :class:`WriteResult`."""

    def close(self) -> WriteResult:
        """Finalize the file and return the outcome (idempotent)."""
        if self.result is None:
            self.result = self._finalize()
        return self.result

    def _sink_write_seconds(self) -> float:
        sink: WriteSink | None = getattr(self, "_sink", None)
        return sink.write_seconds if sink is not None else 0.0

    def _sink_overlapped(self) -> bool:
        sink: WriteSink | None = getattr(self, "_sink", None)
        return sink.overlapped if sink is not None else False

    def _build_result(self, bytes_written: int,
                      extra_write_seconds: float = 0.0) -> WriteResult:
        """Assemble the :class:`WriteResult` with the timing fields."""
        result = WriteResult(
            self.path, self.num_vertices, self.num_edges, bytes_written,
            encode_seconds=self.encode_seconds,
            write_seconds=self._sink_write_seconds() + extra_write_seconds,
            elapsed_seconds=self._elapsed_watch.stop())
        reg = registry()
        reg.counter("format.bytes_written").inc(bytes_written)
        reg.counter("format.edges_written").inc(self.num_edges)
        check_write_result(result, overlapped=self._sink_overlapped())
        return result

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            # Normal path: errors propagate and the WriteResult is
            # recorded on self.result rather than silently dropped.
            self.close()
        else:
            # Best effort: release the handle; the partial file remains.
            # Only I/O and format finalization errors are swallowed — the
            # in-flight exception stays primary; anything else propagates.
            try:
                self.close()
            except (OSError, FormatError):
                pass


class GraphFormat(ABC):
    """A graph file format: symmetric write/read pair."""

    #: Short name used on the CLI and in benchmarks ("tsv", "adj6", "csr6").
    name: str = "abstract"

    @abstractmethod
    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        """Open an incremental writer for this format."""

    def write_blocks(self, path: Path | str,
                     blocks: Iterable[AdjacencyBlock],
                     num_vertices: int) -> WriteResult:
        """Write a stream of :class:`AdjacencyBlock`s to ``path``.

        This is the fast path: each block is encoded as one buffer and
        written in bulk (pipelined with generation unless
        ``TRILLIONG_NO_PIPELINE=1``).
        """
        with span("format.write_blocks", format=self.name):
            writer = self.open_writer(path, num_vertices)
            with writer:
                for block in blocks:
                    writer.add_block(block)
        assert writer.result is not None
        return writer.result

    def write(self, path: Path | str,
              adjacency: Iterable[tuple[int, np.ndarray]],
              num_vertices: int) -> WriteResult:
        """Write ``(vertex, neighbours)`` pairs to ``path``.

        The pair stream is batched into blocks internally so it still
        takes the vectorized encoder path; output is byte-identical to
        per-vertex :meth:`StreamWriter.add` calls.
        """
        return self.write_blocks(path, blocks_from_adjacency(adjacency),
                                 num_vertices)

    @abstractmethod
    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        """Stream ``(vertex, neighbours)`` pairs back from ``path``."""

    def read_edges(self, path: Path | str) -> np.ndarray:
        """Materialize the file as an ``(m, 2)`` edge array."""
        chunks = []
        for u, vs in self.iter_adjacency(path):
            if len(vs):
                chunk = np.empty((len(vs), 2), dtype=np.int64)
                chunk[:, 0] = u
                chunk[:, 1] = vs
                chunks.append(chunk)
        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(chunks)

    def write_edges(self, path: Path | str, edges: np.ndarray,
                    num_vertices: int) -> WriteResult:
        """Convenience: write an edge array (grouped by source first)."""
        edges = np.asarray(edges, dtype=np.int64)
        order = np.argsort(edges[:, 0] * np.int64(num_vertices)
                           + edges[:, 1], kind="stable")
        block = block_from_edges(edges[order])
        return self.write_blocks(path, [block], num_vertices)


def block_from_edges(sorted_edges: np.ndarray) -> AdjacencyBlock:
    """Group source-sorted ``(m, 2)`` edges into one :class:`AdjacencyBlock`."""
    sorted_edges = np.asarray(sorted_edges, dtype=np.int64)
    if sorted_edges.shape[0] == 0:
        return AdjacencyBlock(np.empty(0, dtype=np.int64),
                              np.zeros(1, dtype=np.int64),
                              np.empty(0, dtype=np.int64))
    sources_all = sorted_edges[:, 0]
    boundaries = np.nonzero(np.diff(sources_all))[0] + 1
    starts = np.concatenate([[0], boundaries])
    offsets = np.concatenate([starts, [sorted_edges.shape[0]]])
    return AdjacencyBlock(sources_all[starts].copy(),
                          offsets.astype(np.int64),
                          np.ascontiguousarray(sorted_edges[:, 1]))


def blocks_from_sorted_keys(chunks: Iterable[np.ndarray],
                            num_vertices: int
                            ) -> Iterator[AdjacencyBlock]:
    """Regroup a sorted packed-key stream into :class:`AdjacencyBlock`s.

    ``chunks`` is an ascending stream of packed int64 edge keys
    (``u * |V| + v``) — e.g. the bounded-RAM merge
    :func:`repro.util.external_sort.iter_unique_keys` — and the blocks
    come out byte-identical to a single whole-array
    :func:`block_from_edges` pass: a chunk boundary falling inside one
    source's neighbour list would split that source across two blocks
    (and, for per-source formats like ADJ6, change the output bytes), so
    the trailing partial source group of every chunk is held back and
    prepended to the next.  Peak memory is one chunk plus one source's
    neighbours.
    """
    n = np.int64(num_vertices)
    held = np.empty(0, dtype=np.int64)
    for chunk in chunks:
        chunk = np.asarray(chunk, dtype=np.int64)
        if chunk.size == 0:
            continue
        current = np.concatenate([held, chunk]) if held.size else chunk
        last_source = current[-1] // n
        cut = int(np.searchsorted(current, last_source * n, side="left"))
        if cut:
            ready = current[:cut]
            yield block_from_edges(
                np.column_stack([ready // n, ready % n]))
        held = current[cut:]
    if held.size:
        yield block_from_edges(np.column_stack([held // n, held % n]))


def blocks_from_adjacency(adjacency: Iterable[tuple[int, np.ndarray]],
                          batch_size: int = _PAIR_BATCH
                          ) -> Iterator[AdjacencyBlock]:
    """Batch a ``(vertex, neighbours)`` pair stream into blocks.

    The compatibility shim between the legacy pair surface and the
    vectorized block encoders: pairs are buffered in arrival order and
    flushed every ``batch_size`` sources.
    """
    sources: list[int] = []
    lists: list[np.ndarray] = []
    for u, vs in adjacency:
        sources.append(int(u))
        lists.append(np.asarray(vs, dtype=np.int64))
        if len(sources) >= batch_size:
            yield _pairs_to_block(sources, lists)
            sources, lists = [], []
    if sources:
        yield _pairs_to_block(sources, lists)


def _pairs_to_block(sources: list[int],
                    lists: list[np.ndarray]) -> AdjacencyBlock:
    counts = np.fromiter((v.size for v in lists), dtype=np.int64,
                         count=len(lists))
    offsets = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    destinations = (np.concatenate(lists) if lists
                    else np.empty(0, dtype=np.int64))
    return AdjacencyBlock(np.array(sources, dtype=np.int64), offsets,
                          destinations)


_REGISTRY: dict[str, GraphFormat] = {}


def register_format(fmt: GraphFormat) -> GraphFormat:
    """Register a format instance under its name."""
    _REGISTRY[fmt.name] = fmt
    return fmt


def get_format(name: str) -> GraphFormat:
    """Look up a registered format by name."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise FormatError(
            f"unknown graph format {name!r}; available: "
            f"{sorted(_REGISTRY)}") from None


def available_formats() -> list[str]:
    """Registered format names."""
    return sorted(_REGISTRY)


def id6_byte_view(values: np.ndarray) -> np.ndarray:
    """Vertex IDs as an ``(n, 6)`` uint8 array of little-endian 6-byte
    integers (the numpy byte-view trick behind the block encoders: view
    int64 as bytes, stride-slice the low six).

    Rejects IDs outside ``[0, 2^48)`` — truncating would silently alias
    vertices.
    """
    arr = np.ascontiguousarray(values, dtype="<i8")
    if arr.size and (arr.min() < 0 or arr.max() >= 1 << 48):
        raise FormatError("vertex id out of 6-byte range")
    return arr.view(np.uint8).reshape(-1, 8)[:, :SIX_BYTES]


def encode_id6(values: np.ndarray) -> bytes:
    """Encode int64 vertex IDs as packed little-endian 6-byte integers.

    IDs outside ``[0, 2^48)`` raise :class:`~repro.errors.FormatError`
    rather than being truncated.
    """
    return id6_byte_view(values).tobytes()


def decode_id6(data: bytes) -> np.ndarray:
    """Decode packed little-endian 6-byte integers to int64."""
    if len(data) % SIX_BYTES:
        raise FormatError("truncated 6-byte id block")
    count = len(data) // SIX_BYTES
    raw = np.frombuffer(data, dtype=np.uint8).reshape(count, SIX_BYTES)
    out = np.zeros((count, 8), dtype=np.uint8)
    out[:, :SIX_BYTES] = raw
    return out.view("<i8").ravel().astype(np.int64)
