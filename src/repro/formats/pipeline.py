"""Pipelined disk writes: overlap format encoding with file I/O.

The block encoders (:meth:`repro.formats.base.StreamWriter.add_block`)
turn a whole :class:`~repro.core.generator.AdjacencyBlock` into one
buffer and hand it to a *sink*.  With pipelining enabled (the default)
the sink is a bounded-queue background thread: while the writer thread
pushes encoded block ``i`` to disk, the generator is already producing
and encoding block ``i+1``.  Semantics stay single-threaded — buffers
are written strictly in submission order, so the file bytes are
identical with the pipeline on or off — and any I/O error raised in the
background is re-raised to the producer on its next ``write``/``close``.

Sizing
------
The queue holds at most ``depth`` encoded buffers (default 8).  A block
of 4096 sources at edge factor 16 encodes to ~400 KB of ADJ6, so the
default bounds pipeline memory to a few MB while still absorbing disk
latency spikes.  ``TRILLIONG_PIPELINE_DEPTH`` overrides the default;
``TRILLIONG_NO_PIPELINE=1`` disables the background thread entirely
(the escape hatch for debugging or single-core machines).
"""

from __future__ import annotations

import os
import queue
import threading
from typing import IO, Any

from ..sanitize import record_write, sanitize_enabled
from ..telemetry import Stopwatch, registry
from ..telemetry.progress import QUEUE_GAUGE

#: Instantaneous in-flight buffer count (last-write-wins gauge): the
#: live companion to the :data:`QUEUE_GAUGE` high-water mark, so the
#: flight recorder's time series shows backpressure as it happens
#: rather than only its historical maximum.
QUEUE_DEPTH_GAUGE = "pipeline.queue_depth"

__all__ = [
    "NO_PIPELINE_ENV",
    "PIPELINE_DEPTH_ENV",
    "DEFAULT_PIPELINE_DEPTH",
    "QUEUE_DEPTH_GAUGE",
    "pipeline_enabled",
    "pipeline_depth",
    "WriteSink",
    "DirectSink",
    "ThreadedSink",
    "open_sink",
]

#: Set to ``1``/``true``/``yes``/``on`` to force synchronous writes.
NO_PIPELINE_ENV = "TRILLIONG_NO_PIPELINE"
#: Overrides the bounded queue depth (number of in-flight buffers).
PIPELINE_DEPTH_ENV = "TRILLIONG_PIPELINE_DEPTH"
#: Default number of encoded buffers the background writer may hold.
DEFAULT_PIPELINE_DEPTH = 8

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def pipeline_enabled() -> bool:
    """Whether new writers should use the background writer thread."""
    return os.environ.get(NO_PIPELINE_ENV, "").strip().lower() not in _TRUTHY


def pipeline_depth() -> int:
    """Bounded-queue depth for new pipelined sinks."""
    raw = os.environ.get(PIPELINE_DEPTH_ENV, "").strip()
    if not raw:
        return DEFAULT_PIPELINE_DEPTH
    try:
        depth = int(raw)
    except ValueError:
        return DEFAULT_PIPELINE_DEPTH
    return max(1, depth)


class WriteSink:
    """Ordered buffer sink in front of a file object.

    Subclasses accumulate the wall time spent inside ``file.write`` in
    :attr:`write_seconds` so writers can report encode vs. write time
    separately.  ``overlapped`` says whether that write time runs
    concurrently with the producer (and may therefore overlap encode
    time) — the timing contract in
    :func:`repro.contracts.check_write_result` keys off it.
    """

    write_seconds: float = 0.0
    overlapped: bool = False

    def write(self, data: Any) -> None:
        """Submit one encoded buffer (``bytes`` or ``str``)."""
        raise NotImplementedError

    def drain(self) -> None:
        """Block until every submitted buffer reached ``file.write``."""
        raise NotImplementedError

    def close(self) -> None:
        """Drain and release the sink (the file object stays open)."""
        raise NotImplementedError


class DirectSink(WriteSink):
    """Synchronous passthrough (pipeline disabled)."""

    overlapped = False

    def __init__(self, file: IO[Any]) -> None:
        self._file = file
        self._watch = Stopwatch()
        self._trace = sanitize_enabled()

    @property
    def write_seconds(self) -> float:  # type: ignore[override]
        return self._watch.seconds

    def write(self, data: Any) -> None:
        if self._trace:
            record_write(self._file, data)
        with self._watch:
            self._file.write(data)

    def drain(self) -> None:
        return None

    def close(self) -> None:
        return None


class ThreadedSink(WriteSink):
    """Bounded-queue background writer.

    Buffers are written strictly in submission order by one daemon
    thread.  An exception raised by ``file.write`` is captured and
    re-raised (with its original type) in the producer thread on the
    next :meth:`write`, :meth:`drain`, or :meth:`close`; after a
    failure the thread keeps draining the queue so producers never
    deadlock on a full queue.
    """

    _SENTINEL: object = object()

    overlapped = True

    def __init__(self, file: IO[Any], depth: int | None = None) -> None:
        self._file = file
        self._queue: queue.Queue = queue.Queue(
            maxsize=depth if depth is not None else pipeline_depth())
        # _error crosses the writer/producer thread boundary: the writer
        # sets it, the producer reads-and-clears it.  Both sides hold
        # _error_lock so neither can observe a torn handoff.
        self._error: BaseException | None = None
        self._error_lock = threading.Lock()
        self._closed = False
        self._watch = Stopwatch()
        self._queue_gauge = registry().gauge(QUEUE_GAUGE, mode="max")
        self._depth_gauge = registry().gauge(QUEUE_DEPTH_GAUGE)
        self._trace = sanitize_enabled()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="trilliong-writer")
        self._thread.start()

    @property
    def write_seconds(self) -> float:  # type: ignore[override]
        return self._watch.seconds

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                self._queue.task_done()
                return
            with self._error_lock:
                failed = self._error is not None
            if not failed:
                self._watch.start()
                try:
                    self._file.write(item)
                except (OSError, ValueError) as exc:
                    with self._error_lock:
                        self._error = exc
                self._watch.stop()
            self._queue.task_done()
            self._depth_gauge.set(self._queue.qsize())

    def _check(self) -> None:
        with self._error_lock:
            error, self._error = self._error, None
        if error is not None:
            raise error

    def write(self, data: Any) -> None:
        if self._closed:
            raise ValueError("write to a closed sink")
        self._check()
        if self._trace:
            # Recorded at submission: the writer thread preserves
            # submission order, so this *is* the on-disk block order.
            record_write(self._file, data)
        # High-water mark of in-flight buffers: sampled before the put so
        # a full queue (producer about to block on backpressure) reads as
        # depth, not depth - 1.  The depth gauge mirrors the same reading
        # live (last-write-wins; the writer thread lowers it as it drains).
        depth = self._queue.qsize() + 1
        self._queue_gauge.set(depth)
        self._depth_gauge.set(depth)
        self._queue.put(data)

    def drain(self) -> None:
        self._queue.join()
        self._check()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._queue.put(self._SENTINEL)
            self._thread.join()
        self._check()


def open_sink(file: IO[Any], *, pipelined: bool | None = None,
              depth: int | None = None) -> WriteSink:
    """Sink factory honouring the ``TRILLIONG_NO_PIPELINE`` escape hatch.

    ``pipelined`` forces the choice; ``None`` defers to the environment.
    """
    if pipelined is None:
        pipelined = pipeline_enabled()
    if pipelined:
        return ThreadedSink(file, depth)
    return DirectSink(file)
