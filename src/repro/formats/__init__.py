"""Graph output formats: TSV, ADJ6, and CSR6 (Section 5).

The write path is block-streaming: whole
:class:`~repro.core.generator.AdjacencyBlock`s are encoded with
vectorized numpy buffer assembly and pushed to disk through a pipelined
background writer (see ``docs/formats.md``).
"""

from .adj6 import Adj6Format
from .base import (GraphFormat, StreamWriter, WriteResult,
                   available_formats, block_from_edges,
                   blocks_from_adjacency, blocks_from_sorted_keys,
                   decode_id6, encode_id6, get_format, id6_byte_view,
                   register_format)
from .csr6 import Csr6Format
from .multi import write_many, write_many_blocks
from .pipeline import (DEFAULT_PIPELINE_DEPTH, NO_PIPELINE_ENV,
                       PIPELINE_DEPTH_ENV, DirectSink, ThreadedSink,
                       WriteSink, open_sink, pipeline_depth,
                       pipeline_enabled)
from .tsv import TsvFormat

__all__ = [
    "Adj6Format", "Csr6Format", "TsvFormat", "GraphFormat", "WriteResult",
    "available_formats", "get_format", "register_format", "StreamWriter",
    "write_many", "write_many_blocks",
    "block_from_edges", "blocks_from_adjacency", "blocks_from_sorted_keys",
    "encode_id6", "decode_id6", "id6_byte_view",
    "NO_PIPELINE_ENV", "PIPELINE_DEPTH_ENV", "DEFAULT_PIPELINE_DEPTH",
    "WriteSink", "DirectSink", "ThreadedSink", "open_sink",
    "pipeline_enabled", "pipeline_depth",
]
