"""Graph output formats: TSV, ADJ6, and CSR6 (Section 5)."""

from .adj6 import Adj6Format
from .base import (GraphFormat, StreamWriter, WriteResult,
                   available_formats, get_format, register_format)
from .csr6 import Csr6Format
from .multi import write_many
from .tsv import TsvFormat

__all__ = [
    "Adj6Format", "Csr6Format", "TsvFormat", "GraphFormat", "WriteResult",
    "available_formats", "get_format", "register_format", "StreamWriter",
    "write_many",
]
