"""ADJ6 — the 6-byte adjacency-list binary format (Section 5).

Record layout (little-endian), one record per vertex with degree > 0::

    vertex_id   : 6 bytes
    degree      : 4 bytes (uint32)
    neighbours  : degree x 6 bytes

ADJ6 is TrillionG's preferred format: each vertex's neighbours are
generated on the same worker, so records stream straight to disk, and the
file is 3-4x smaller than the equivalent TSV.  The block encoder
assembles every record of an :class:`~repro.core.generator.AdjacencyBlock`
into one buffer — headers and neighbour runs are scatter-placed with
numpy fancy indexing — and emits a single ``write()`` per block.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from ..core.generator import AdjacencyBlock
from ..errors import FormatError
from .base import (SIX_BYTES, GraphFormat, StreamWriter, WriteResult,
                   decode_id6, encode_id6, id6_byte_view, register_format)
from .pipeline import open_sink

__all__ = ["Adj6Format"]

_DEGREE = struct.Struct("<I")
_MAX_DEGREE = 0xFFFFFFFF
_HEADER_BYTES = SIX_BYTES + _DEGREE.size


class _Adj6Writer(StreamWriter):
    def __init__(self, path: Path | str, num_vertices: int) -> None:
        super().__init__(path, num_vertices)
        self._file = open(self.path, "wb")
        self._sink = open_sink(self._file)

    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        degree = len(neighbours)
        if degree == 0:
            return
        if degree > _MAX_DEGREE:
            raise FormatError(
                f"degree {degree} of vertex {vertex} exceeds the ADJ6 "
                f"uint32 degree field (max {_MAX_DEGREE})")
        self._sink.write(
            encode_id6(np.array([vertex], dtype=np.int64))
            + _DEGREE.pack(degree)
            + encode_id6(np.asarray(neighbours, dtype=np.int64)))
        self.num_edges += degree

    def add_block(self, block: AdjacencyBlock) -> None:
        with self._encode_watch:
            buffer = self._encode_block(block)
        self._blocks_counter.inc()
        if buffer is not None:
            self._sink.write(buffer)
        self.num_edges += block.num_edges

    def _encode_block(self, block: AdjacencyBlock) -> np.ndarray | None:
        degrees = block.degrees
        mask = degrees > 0
        if not mask.any():
            return None
        sources = np.ascontiguousarray(block.sources, dtype=np.int64)[mask]
        deg = degrees[mask].astype(np.int64)
        if int(deg.max()) > _MAX_DEGREE:
            vertex = int(sources[int(np.argmax(deg))])
            raise FormatError(
                f"degree {int(deg.max())} of vertex {vertex} exceeds the "
                f"ADJ6 uint32 degree field (max {_MAX_DEGREE})")
        # The guard above enforces the ADJ6 header invariant, which the
        # static analysis cannot derive: tell it every degree fits the
        # uint32 field so the `<u4` view below is a proven-safe cast.
        dests = np.ascontiguousarray(
            block.destinations,
            dtype=np.int64)  # reprolint: assume(deg, 0, _MAX_DEGREE)
        k, m = sources.size, dests.size
        # Records sit back to back; headers are scatter-placed at the
        # record starts (k x 10 fancy assignment), and every remaining
        # byte belongs to a neighbour run, so destinations land with one
        # boolean-mask pass instead of per-edge index arithmetic.
        record_starts = np.zeros(k, dtype=np.int64)
        np.cumsum(_HEADER_BYTES + SIX_BYTES * deg[:-1],
                  out=record_starts[1:])
        total = _HEADER_BYTES * k + SIX_BYTES * m
        header_pos = (record_starts[:, None]
                      + np.arange(_HEADER_BYTES, dtype=np.int64))
        headers = np.empty((k, _HEADER_BYTES), dtype=np.uint8)
        headers[:, :SIX_BYTES] = id6_byte_view(sources)
        headers[:, SIX_BYTES:] = (
            deg.astype("<u4").view(np.uint8).reshape(-1, 4))
        out = np.empty(total, dtype=np.uint8)
        out[header_pos] = headers
        if m:
            is_dest = np.ones(total, dtype=bool)
            is_dest[header_pos] = False
            out[is_dest] = id6_byte_view(dests).ravel()
        return out

    def _finalize(self) -> WriteResult:
        # A deferred pipeline I/O error re-raises out of sink.close();
        # the file handle must be released either way.
        try:
            self._sink.close()
        finally:
            self._file.close()
        return self._build_result(self.path.stat().st_size)


class Adj6Format(GraphFormat):
    """6-byte adjacency-list binary format."""

    name = "adj6"

    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        return _Adj6Writer(path, num_vertices)

    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        with open(path, "rb") as f:
            while True:
                head = f.read(SIX_BYTES + _DEGREE.size)
                if not head:
                    return
                if len(head) != SIX_BYTES + _DEGREE.size:
                    raise FormatError(f"{path}: truncated ADJ6 record head")
                u = int(decode_id6(head[:SIX_BYTES])[0])
                (degree,) = _DEGREE.unpack(head[SIX_BYTES:])
                body = f.read(degree * SIX_BYTES)
                if len(body) != degree * SIX_BYTES:
                    raise FormatError(f"{path}: truncated ADJ6 record body")
                yield u, decode_id6(body)


register_format(Adj6Format())
