"""ADJ6 — the 6-byte adjacency-list binary format (Section 5).

Record layout (little-endian), one record per vertex with degree > 0::

    vertex_id   : 6 bytes
    degree      : 4 bytes (uint32)
    neighbours  : degree x 6 bytes

ADJ6 is TrillionG's preferred format: each vertex's neighbours are
generated on the same worker, so records stream straight to disk, and the
file is 3-4x smaller than the equivalent TSV.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from ..errors import FormatError
from .base import (SIX_BYTES, GraphFormat, StreamWriter, WriteResult,
                   decode_id6, encode_id6, register_format)

__all__ = ["Adj6Format"]

_DEGREE = struct.Struct("<I")


class _Adj6Writer(StreamWriter):
    def __init__(self, path: Path | str, num_vertices: int) -> None:
        super().__init__(path, num_vertices)
        self._file = open(self.path, "wb")

    def add(self, vertex: int, neighbours: np.ndarray) -> None:
        degree = len(neighbours)
        if degree == 0:
            return
        self._file.write(encode_id6(np.array([vertex], dtype=np.int64)))
        self._file.write(_DEGREE.pack(degree))
        self._file.write(encode_id6(np.asarray(neighbours,
                                               dtype=np.int64)))
        self.num_edges += degree

    def close(self) -> WriteResult:
        self._file.close()
        return WriteResult(self.path, self.num_vertices, self.num_edges,
                           self.path.stat().st_size)


class Adj6Format(GraphFormat):
    """6-byte adjacency-list binary format."""

    name = "adj6"

    def open_writer(self, path: Path | str,
                    num_vertices: int) -> StreamWriter:
        return _Adj6Writer(path, num_vertices)

    def iter_adjacency(self, path: Path | str
                       ) -> Iterator[tuple[int, np.ndarray]]:
        with open(path, "rb") as f:
            while True:
                head = f.read(SIX_BYTES + _DEGREE.size)
                if not head:
                    return
                if len(head) != SIX_BYTES + _DEGREE.size:
                    raise FormatError(f"{path}: truncated ADJ6 record head")
                u = int(decode_id6(head[:SIX_BYTES])[0])
                (degree,) = _DEGREE.unpack(head[SIX_BYTES:])
                body = f.read(degree * SIX_BYTES)
                if len(body) != degree * SIX_BYTES:
                    raise FormatError(f"{path}: truncated ADJ6 record body")
                yield u, decode_id6(body)


register_format(Adj6Format())
