"""TrillionG reproduction: recursive-vector-model synthetic graph generation.

Reimplements "TrillionG: A Trillion-scale Synthetic Graph Generator using a
Recursive Vector Model" (Park & Kim, SIGMOD 2017): the scope-based
generation framework, the recursive vector (AVS) model, NSKG noise, the
ERV rich-graph extension, the baseline generators the paper evaluates
against, the output formats, and a cluster cost model that stands in for
the paper's 10-PC testbed.

Quickstart
----------
>>> from repro import RecursiveVectorGenerator
>>> edges = RecursiveVectorGenerator(scale=12, edge_factor=16,
...                                  seed=42).edges()
>>> edges.shape[1]
2
"""

from .core import (GRAPH500, UNIFORM, IdeaToggles, RecursiveVectorGenerator,
                   SeedMatrix)
from .errors import (CapacityError, ConfigurationError, FormatError,
                     GenerationError, OutOfMemoryError, SeedMatrixError,
                     TrillionGError)
from .system import TrillionG, TrillionGResult

__version__ = "1.0.0"

__all__ = [
    "GRAPH500", "UNIFORM", "IdeaToggles", "RecursiveVectorGenerator",
    "SeedMatrix", "TrillionG", "TrillionGResult", "CapacityError",
    "ConfigurationError", "FormatError", "GenerationError",
    "OutOfMemoryError", "SeedMatrixError", "TrillionGError", "__version__",
]
