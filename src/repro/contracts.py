"""Toggleable runtime invariant checks at model/dist boundaries.

The linter (:mod:`repro.devtools`) proves structural invariants
statically; this module checks the *numerical* ones at runtime, where
static analysis cannot reach: probability vectors summing to one,
seed matrices staying normalized through NSKG noise (Lemmas 7-8), and
partition ranges exactly covering the vertex space (the precondition of
the Section 5 determinism argument — a gap or overlap silently drops or
duplicates scopes).

Contracts are **off by default** so production generation pays nothing.
Enable them with the environment variable ``TRILLIONG_CONTRACTS=1`` (any
of ``1/true/yes/on``) or programmatically::

    from repro import contracts
    contracts.enable_contracts(True)    # force on
    contracts.enable_contracts(False)   # force off
    contracts.enable_contracts(None)    # back to the env var

A failed contract raises :class:`repro.errors.ContractViolation`.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from .errors import ContractViolation

__all__ = [
    "ENV_VAR",
    "contracts_enabled",
    "enable_contracts",
    "check_probability_vector",
    "check_seed_matrix",
    "check_partition_cover",
    "check_worker_result",
    "check_attempt_history",
    "check_write_result",
    "check_sanitizer_trace",
]

#: Environment variable consulted when no programmatic override is set.
ENV_VAR = "TRILLIONG_CONTRACTS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Programmatic override: None = defer to the environment.
_override: bool | None = None


def contracts_enabled() -> bool:
    """Whether contract checks currently run (override, else env var)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def enable_contracts(on: bool | None) -> None:
    """Force contracts on/off; ``None`` defers back to ``ENV_VAR``."""
    global _override
    _override = on


def _fail(message: str) -> None:
    raise ContractViolation(message)


def check_probability_vector(vec, *, tol: float = 1e-9,
                             context: str = "probability vector") -> None:
    """Assert ``vec`` is a probability vector: finite, non-negative
    entries summing to 1 within ``tol``.  No-op when disabled."""
    if not contracts_enabled():
        return
    arr = np.asarray(vec, dtype=np.float64).ravel()
    if arr.size == 0:
        _fail(f"{context}: empty")
    if not np.all(np.isfinite(arr)):
        _fail(f"{context}: non-finite entries")
    if np.any(arr < 0):
        _fail(f"{context}: negative entry {arr.min()!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > tol:
        _fail(f"{context}: entries sum to {total!r}, expected 1 "
              f"(tol={tol})")


def check_seed_matrix(matrix, *, tol: float = 1e-9) -> None:
    """Assert a seed matrix is square, non-negative, and normalized.

    Accepts a :class:`repro.core.seed.SeedMatrix` or a raw array.
    No-op when disabled.
    """
    if not contracts_enabled():
        return
    entries = getattr(matrix, "entries", matrix)
    arr = np.asarray(entries, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        _fail(f"seed matrix: not square (shape {arr.shape})")
    check_probability_vector(arr, tol=tol, context="seed matrix")


def check_partition_cover(ranges: Iterable[Sequence[int] | object],
                          start: int, stop: int) -> None:
    """Assert partition ranges tile ``[start, stop)`` exactly: contiguous,
    non-empty, no gaps, no overlaps.

    ``ranges`` holds ``(start, stop)`` pairs or objects with ``start`` /
    ``stop`` attributes (e.g. :class:`repro.dist.partition.Bin`).
    No-op when disabled.
    """
    if not contracts_enabled():
        return
    cursor = start
    count = 0
    for item in ranges:
        lo, hi = ((item.start, item.stop)          # type: ignore[union-attr]
                  if hasattr(item, "start") else (item[0], item[1]))
        if lo != cursor:
            _fail(f"partition cover: range {count} starts at {lo}, "
                  f"expected {cursor} (gap or overlap)")
        if hi <= lo:
            _fail(f"partition cover: range {count} [{lo}, {hi}) is empty")
        cursor = hi
        count += 1
    if count == 0:
        _fail("partition cover: no ranges")
    if cursor != stop:
        _fail(f"partition cover: ranges end at {cursor}, expected {stop}")


def check_worker_result(result: object, *, start: int | None = None,
                        stop: int | None = None) -> None:
    """Assert a distributed worker's result is sane: it covers exactly
    the range it was assigned, reports a non-negative edge count, and its
    output file exists on disk.

    ``result`` is duck-typed (``repro.dist.runner.WorkerResult``-shaped:
    ``start`` / ``stop`` / ``num_edges`` / ``path`` attributes) so this
    bottom layer does not import the distribution layer.  No-op when
    disabled.
    """
    if not contracts_enabled():
        return
    if result is None:
        _fail("worker result: missing (task produced no result)")
    r_start = getattr(result, "start", None)
    r_stop = getattr(result, "stop", None)
    num_edges = getattr(result, "num_edges", None)
    path = getattr(result, "path", None)
    if start is not None and r_start != start:
        _fail(f"worker result: covers start {r_start}, assigned {start}")
    if stop is not None and r_stop != stop:
        _fail(f"worker result: covers stop {r_stop}, assigned {stop}")
    if not isinstance(num_edges, int) or num_edges < 0:
        _fail(f"worker result: bad edge count {num_edges!r}")
    if path is not None and not os.path.exists(str(path)):
        _fail(f"worker result: output file {path} does not exist")


def check_write_result(result: object, *, overlapped: bool,
                       tol: float = 1e-6) -> None:
    """Assert a write result's timing decomposition is coherent: encode
    and write time each fit inside the writer's open-to-close window,
    and — when the disk sink is synchronous (``overlapped=False``) — the
    two components together fit as well, since they cannot run
    concurrently.  With the pipelined sink the background thread's write
    time legitimately overlaps encode time, so only the per-component
    bounds apply.

    ``result`` is ``repro.formats.base.WriteResult``-shaped
    (``encode_seconds`` / ``write_seconds`` / ``elapsed_seconds``).
    No-op when disabled.
    """
    if not contracts_enabled():
        return
    encode = float(getattr(result, "encode_seconds", 0.0))
    write = float(getattr(result, "write_seconds", 0.0))
    elapsed = float(getattr(result, "elapsed_seconds", 0.0))
    if encode < 0 or write < 0 or elapsed < 0:
        _fail(f"write result: negative timing (encode={encode!r}, "
              f"write={write!r}, elapsed={elapsed!r})")
    bound = elapsed + tol
    if encode > bound:
        _fail(f"write result: encode_seconds {encode!r} exceeds "
              f"elapsed_seconds {elapsed!r}")
    if write > bound:
        _fail(f"write result: write_seconds {write!r} exceeds "
              f"elapsed_seconds {elapsed!r}")
    if not overlapped and encode + write > bound:
        _fail(f"write result: encode {encode!r} + write {write!r} "
              f"exceeds elapsed {elapsed!r} with a synchronous sink "
              "(double-counted timing)")


def check_sanitizer_trace(doc: object) -> None:
    """Assert a determinism-sanitizer trace document is internally
    coherent: every event category carries strictly increasing global
    sequence numbers, and each file's block write sequence is dense from
    0 (block k is the (k+1)-th write to that file — a hole means a block
    was recorded out of order or lost).

    ``doc`` is the plain dict produced by
    ``repro.sanitize.write_trace`` / ``load_trace``; working on the dict
    keeps this bottom layer free of a sanitizer import.  No-op when
    disabled.
    """
    if not contracts_enabled():
        return
    if not isinstance(doc, dict):
        _fail(f"sanitizer trace: not a mapping ({type(doc).__name__})")
    for category in ("derivations", "draws", "writes", "violations"):
        events = doc.get(category)
        if not isinstance(events, list):
            _fail(f"sanitizer trace: missing event list {category!r}")
        previous = -1
        for event in events:
            seq = event.get("seq")
            if not isinstance(seq, int) or seq <= previous:
                _fail(f"sanitizer trace: {category} seq {seq!r} after "
                      f"{previous} (must strictly increase)")
            previous = seq
    cursors: dict[str, int] = {}
    for event in doc["writes"]:
        name = str(event.get("file"))
        expected = cursors.get(name, 0)
        if event.get("file_seq") != expected:
            _fail(f"sanitizer trace: write {event.get('file_seq')!r} to "
                  f"{name} arrived at position {expected} (block order "
                  f"hole)")
        cursors[name] = expected + 1


def check_attempt_history(attempts: Sequence[object]) -> None:
    """Assert a task's attempt trail is well-formed: attempt numbers
    strictly increase from 1, every non-final attempt failed, and the
    final attempt succeeded.

    ``attempts`` holds ``repro.dist.faults.TaskAttempt``-shaped records
    (``attempt`` / ``outcome`` attributes).  No-op when disabled.
    """
    if not contracts_enabled():
        return
    if not attempts:
        _fail("attempt history: empty (task was never attempted)")
    previous = 0
    for record in attempts:
        number = getattr(record, "attempt", None)
        if not isinstance(number, int) or number <= previous:
            _fail(f"attempt history: attempt number {number!r} after "
                  f"{previous} (must strictly increase from 1)")
        previous = number
    for record in attempts[:-1]:
        if getattr(record, "outcome", None) == "ok":
            _fail("attempt history: a non-final attempt reported ok "
                  "(the task would have been retried needlessly)")
    if getattr(attempts[-1], "outcome", None) != "ok":
        _fail(f"attempt history: final attempt outcome is "
              f"{getattr(attempts[-1], 'outcome', None)!r}, expected 'ok'")
