"""Toggleable runtime invariant checks at model/dist boundaries.

The linter (:mod:`repro.devtools`) proves structural invariants
statically; this module checks the *numerical* ones at runtime, where
static analysis cannot reach: probability vectors summing to one,
seed matrices staying normalized through NSKG noise (Lemmas 7-8), and
partition ranges exactly covering the vertex space (the precondition of
the Section 5 determinism argument — a gap or overlap silently drops or
duplicates scopes).

Contracts are **off by default** so production generation pays nothing.
Enable them with the environment variable ``TRILLIONG_CONTRACTS=1`` (any
of ``1/true/yes/on``) or programmatically::

    from repro import contracts
    contracts.enable_contracts(True)    # force on
    contracts.enable_contracts(False)   # force off
    contracts.enable_contracts(None)    # back to the env var

A failed contract raises :class:`repro.errors.ContractViolation`.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

import numpy as np

from .errors import ContractViolation

__all__ = [
    "ENV_VAR",
    "contracts_enabled",
    "enable_contracts",
    "check_probability_vector",
    "check_seed_matrix",
    "check_partition_cover",
]

#: Environment variable consulted when no programmatic override is set.
ENV_VAR = "TRILLIONG_CONTRACTS"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Programmatic override: None = defer to the environment.
_override: bool | None = None


def contracts_enabled() -> bool:
    """Whether contract checks currently run (override, else env var)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def enable_contracts(on: bool | None) -> None:
    """Force contracts on/off; ``None`` defers back to ``ENV_VAR``."""
    global _override
    _override = on


def _fail(message: str) -> None:
    raise ContractViolation(message)


def check_probability_vector(vec, *, tol: float = 1e-9,
                             context: str = "probability vector") -> None:
    """Assert ``vec`` is a probability vector: finite, non-negative
    entries summing to 1 within ``tol``.  No-op when disabled."""
    if not contracts_enabled():
        return
    arr = np.asarray(vec, dtype=np.float64).ravel()
    if arr.size == 0:
        _fail(f"{context}: empty")
    if not np.all(np.isfinite(arr)):
        _fail(f"{context}: non-finite entries")
    if np.any(arr < 0):
        _fail(f"{context}: negative entry {arr.min()!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > tol:
        _fail(f"{context}: entries sum to {total!r}, expected 1 "
              f"(tol={tol})")


def check_seed_matrix(matrix, *, tol: float = 1e-9) -> None:
    """Assert a seed matrix is square, non-negative, and normalized.

    Accepts a :class:`repro.core.seed.SeedMatrix` or a raw array.
    No-op when disabled.
    """
    if not contracts_enabled():
        return
    entries = getattr(matrix, "entries", matrix)
    arr = np.asarray(entries, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        _fail(f"seed matrix: not square (shape {arr.shape})")
    check_probability_vector(arr, tol=tol, context="seed matrix")


def check_partition_cover(ranges: Iterable[Sequence[int] | object],
                          start: int, stop: int) -> None:
    """Assert partition ranges tile ``[start, stop)`` exactly: contiguous,
    non-empty, no gaps, no overlaps.

    ``ranges`` holds ``(start, stop)`` pairs or objects with ``start`` /
    ``stop`` attributes (e.g. :class:`repro.dist.partition.Bin`).
    No-op when disabled.
    """
    if not contracts_enabled():
        return
    cursor = start
    count = 0
    for item in ranges:
        lo, hi = ((item.start, item.stop)          # type: ignore[union-attr]
                  if hasattr(item, "start") else (item[0], item[1]))
        if lo != cursor:
            _fail(f"partition cover: range {count} starts at {lo}, "
                  f"expected {cursor} (gap or overlap)")
        if hi <= lo:
            _fail(f"partition cover: range {count} [{lo}, {hi}) is empty")
        cursor = hi
        count += 1
    if count == 0:
        _fail("partition cover: no ranges")
    if cursor != stop:
        _fail(f"partition cover: ranges end at {cursor}, expected {stop}")
