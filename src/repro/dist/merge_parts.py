"""Merge distributed part files into one graph file.

The Figure 6 partitioner hands each worker a *contiguous* vertex range, so
part files are disjoint and ordered: merging is a pure stream
concatenation of their adjacency records, with no sort or dedup — O(1)
memory regardless of graph size.  Formats may differ between input and
output (e.g. ADJ6 parts merged into one CSR6 file).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import FormatError
from ..formats import WriteResult, get_format

__all__ = ["merge_parts"]


def _chained_adjacency(paths: list[Path], fmt_name: str
                       ) -> Iterator[tuple[int, np.ndarray]]:
    reader = get_format(fmt_name)
    last_vertex = -1
    for path in paths:
        for u, vs in reader.iter_adjacency(path):
            if u <= last_vertex:
                raise FormatError(
                    f"part files are not range-ordered: vertex {u} in "
                    f"{path} after {last_vertex}; merge_parts requires "
                    "Figure 6 (contiguous-range) parts in order")
            last_vertex = u
            yield u, vs


def merge_parts(part_paths: Iterable[Path | str], num_vertices: int,
                out_path: Path | str, *, in_format: str = "adj6",
                out_format: str | None = None) -> WriteResult:
    """Concatenate ordered part files into one output file.

    Parameters
    ----------
    part_paths:
        Part files in vertex-range order (e.g.
        :attr:`repro.dist.DistributedResult.paths`).
    num_vertices:
        ``|V|`` of the full graph.
    out_path:
        Destination file.
    in_format / out_format:
        Format names; ``out_format`` defaults to ``in_format``.
    """
    paths = [Path(p) for p in part_paths]
    if not paths:
        raise ValueError("merge_parts needs at least one part file")
    writer = get_format(out_format if out_format is not None
                        else in_format)
    return writer.write(out_path, _chained_adjacency(paths, in_format),
                        num_vertices)
