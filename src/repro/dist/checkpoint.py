"""Checkpointed (resumable) generation to disk.

A trillion-scale run takes hours (Figure 12); losing it to a crash at 95%
is expensive.  Because the AVS generator's randomness is keyed per block,
generation is naturally restartable at block granularity: this module
writes one chunk file per group of blocks plus a JSON manifest recording
which chunks are complete, and a resumed run regenerates only the missing
chunks — producing bit-identical output to an uninterrupted run.

Crash-safety guarantees (see ``docs/fault_tolerance.md``):

- a chunk becomes visible under its final name only via an atomic rename
  of a fully-written, fsynced temporary file;
- the manifest is written via fsync + atomic rename, so power loss never
  surfaces a truncated ``manifest.json``;
- on resume, completed chunk files missing from the manifest (a kill in
  the rename -> manifest window, or a parallel supervisor killed after a
  worker renamed) are *adopted* after verifying they parse, instead of
  being regenerated;
- stale ``*.partial*`` temporaries are swept on resume;
- an unparsable manifest (torn write on a non-atomic filesystem) is
  rebuilt by verifying the chunk files on disk rather than aborting.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..core.generator import RecursiveVectorGenerator
from ..errors import ConfigurationError, FormatError
from ..formats import get_format
from ..telemetry import get_logger, registry, span
# The fsync protocol lives with the spill layer (repro.util.spill) so
# checkpoint manifests and spill runs share one durability
# implementation; re-exported here for compatibility.
from ..util.spill import fsync_dir, fsync_file

_log = get_logger("dist.checkpoint")

__all__ = ["CheckpointedRun", "CheckpointState",
           "fsync_file", "fsync_dir"]

_MANIFEST = "manifest.json"


@dataclass
class CheckpointState:
    """Parsed manifest contents."""

    scale: int
    num_edges: int
    seed: int
    fmt: str
    blocks_per_chunk: int
    completed: dict[str, int] = field(default_factory=dict)
    # chunk name -> edge count

    def to_json(self) -> dict:
        return {
            "scale": self.scale,
            "num_edges": self.num_edges,
            "seed": self.seed,
            "format": self.fmt,
            "blocks_per_chunk": self.blocks_per_chunk,
            "completed": self.completed,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "CheckpointState":
        return cls(doc["scale"], doc["num_edges"], doc["seed"],
                   doc["format"], doc["blocks_per_chunk"],
                   dict(doc["completed"]))


class CheckpointedRun:
    """Resumable generation of one graph into a directory of chunks.

    Examples
    --------
    >>> run = CheckpointedRun(generator, "out/", fmt="adj6",
    ...                       blocks_per_chunk=8)         # doctest: +SKIP
    >>> run.run()             # may be interrupted at any point
    >>> run.run()             # later: regenerates only missing chunks
    """

    def __init__(self, generator: RecursiveVectorGenerator,
                 out_dir: Path | str, fmt: str = "adj6",
                 blocks_per_chunk: int = 16) -> None:
        if blocks_per_chunk < 1:
            raise ConfigurationError("blocks_per_chunk must be >= 1")
        self.generator = generator
        self.out_dir = Path(out_dir)
        self.fmt = fmt
        self.blocks_per_chunk = blocks_per_chunk
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.state = self._load_or_init()
        self._recover()

    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.out_dir / _MANIFEST

    def _expected_state(self) -> CheckpointState:
        g = self.generator
        return CheckpointState(g.scale, g.num_edges, g.seed, self.fmt,
                               self.blocks_per_chunk)

    def _load_or_init(self) -> CheckpointState:
        if not self.manifest_path.exists():
            return self._expected_state()
        try:
            doc = json.loads(self.manifest_path.read_text())
            state = CheckpointState.from_json(doc)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Torn manifest (e.g. power loss on a non-atomic filesystem):
            # re-init; _recover() adopts every chunk file that verifies.
            return self._expected_state()
        expected = self._expected_state()
        mismatch = (state.scale != expected.scale
                    or state.num_edges != expected.num_edges
                    or state.seed != expected.seed
                    or state.fmt != expected.fmt
                    or state.blocks_per_chunk
                    != expected.blocks_per_chunk)
        if mismatch:
            raise ConfigurationError(
                f"{self.manifest_path} belongs to a different "
                "configuration; refusing to mix outputs")
        return state

    def _recover(self) -> None:
        """Close the crash windows left by a killed run: sweep stale
        temporaries, adopt completed-but-unrecorded chunks (verifying
        they parse), and drop unreadable strays for regeneration."""
        for stray in self.out_dir.glob("*.partial*"):
            stray.unlink(missing_ok=True)
        fmt = get_format(self.fmt)
        adopted = False
        for name, _, _ in self.chunk_ranges():
            if name in self.state.completed:
                continue
            path = self.out_dir / name
            if not path.exists():
                continue
            try:
                edges = fmt.read_edges(path)
            except (FormatError, OSError, ValueError):
                path.unlink(missing_ok=True)     # corrupt: regenerate
                continue
            self.state.completed[name] = int(edges.shape[0])
            registry().counter("checkpoint.chunks_adopted").inc()
            _log.info("adopted completed chunk %s (%d edges)", name,
                      int(edges.shape[0]))
            adopted = True
        if adopted:
            self._save()

    def _save(self) -> None:
        tmp = self.manifest_path.with_suffix(".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(self.state.to_json(), indent=2))
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(self.manifest_path)
        finally:
            # a failed write must not strand the .tmp manifest (the
            # recovery sweep only adopts *.partial* chunk files)
            tmp.unlink(missing_ok=True)
        fsync_dir(self.out_dir)

    # ------------------------------------------------------------------

    def chunk_ranges(self) -> list[tuple[str, int, int]]:
        """(name, start_vertex, stop_vertex) for every chunk."""
        g = self.generator
        vertices_per_chunk = g.block_size * self.blocks_per_chunk
        out = []
        start = 0
        index = 0
        while start < g.num_vertices:
            stop = min(start + vertices_per_chunk, g.num_vertices)
            out.append((f"chunk-{index:06d}.{self.fmt}", start, stop))
            start = stop
            index += 1
        return out

    def pending(self) -> list[tuple[str, int, int]]:
        """Chunks not yet completed."""
        return [(name, lo, hi) for name, lo, hi in self.chunk_ranges()
                if name not in self.state.completed]

    @property
    def complete(self) -> bool:
        return not self.pending()

    def mark_complete(self, name: str, num_edges: int) -> None:
        """Record an externally-generated chunk (the parallel supervisor
        calls this as each worker's chunk lands) and persist the
        manifest."""
        self.state.completed[name] = num_edges
        registry().counter("checkpoint.chunks_completed").inc()
        self._save()

    def run(self, max_chunks: int | None = None) -> int:
        """Generate up to ``max_chunks`` pending chunks (all by default).

        Returns the number of chunks produced in this call.  Each chunk is
        written to a temporary file, fsynced, and renamed only when
        complete, then the manifest is updated — a crash mid-chunk leaves
        only whole chunks visible, and a crash between the rename and the
        manifest update is healed by adoption on the next resume.
        """
        fmt = get_format(self.fmt)
        done = 0
        for name, lo, hi in self.pending():
            if max_chunks is not None and done >= max_chunks:
                break
            final_path = self.out_dir / name
            tmp_path = self.out_dir / f"{name}.partial.{os.getpid()}"
            with span("checkpoint.chunk"):
                try:
                    result = fmt.write_blocks(
                        tmp_path, self.generator.iter_blocks(lo, hi),
                        self.generator.num_vertices)
                    fsync_file(tmp_path)
                    tmp_path.replace(final_path)
                finally:
                    tmp_path.unlink(missing_ok=True)
                fsync_dir(self.out_dir)
                self.mark_complete(name, result.num_edges)
            done += 1
        return done

    @property
    def num_edges(self) -> int:
        return sum(self.state.completed.values())

    def chunk_paths(self) -> list[Path]:
        """Paths of completed chunks, in vertex order."""
        return [self.out_dir / name
                for name, _, _ in self.chunk_ranges()
                if name in self.state.completed]
