"""Distributed-execution substrate: AVS-level range partitioning (Fig. 6),
hash shuffle, external sort, and the local multiprocessing cluster."""

from .checkpoint import CheckpointedRun, CheckpointState
from ..util.external_sort import (external_sort_unique, iter_unique_keys,
                                  merge_sorted_runs, write_run)
from .faults import (FaultPlan, RetryPolicy, TaskAttempt,
                     pick_start_method, run_tasks)
from .merge_parts import merge_parts
from .partition import Bin, combine, range_partition, repartition
from .runner import ClusterSpec, DistributedResult, LocalCluster, WorkerResult
from ..util.shuffle import hash_partition, mix64, partition_sizes
from .wesp_runner import WespDistributedResult, run_wesp_distributed

__all__ = [
    "CheckpointedRun", "CheckpointState",
    "external_sort_unique", "iter_unique_keys", "merge_sorted_runs",
    "write_run",
    "FaultPlan", "RetryPolicy", "TaskAttempt",
    "pick_start_method", "run_tasks",
    "Bin", "combine", "range_partition", "repartition", "merge_parts",
    "ClusterSpec", "DistributedResult", "LocalCluster", "WorkerResult",
    "hash_partition", "mix64", "partition_sizes",
    "WespDistributedResult", "run_wesp_distributed",
]
