"""WES/p (RMAT/p) on real OS processes with a file-based shuffle.

:mod:`repro.models.wesp` executes the merge-based dataflow inside one
process; this module runs it the way the paper's cluster did — parallel
generators, a shuffle, and parallel mergers — with worker processes and
the shuffle materialized as partition files (the MapReduce pattern):

1. **map**: each generator process draws its ``|E|/P (1+eps)`` edges over
   the whole matrix, deduplicates locally, hash-partitions the keys, and
   writes one sorted run file per destination worker;
2. **shuffle**: the run files *are* the shuffle (local disk stands in for
   the wire);
3. **reduce**: each merger process external-merges its incoming runs,
   dropping duplicates, and writes its final part file.

The output edge set is identical to
:class:`repro.models.wesp.WespMemGenerator` with the same configuration
(tests assert this), so the in-process model and the multiprocess runner
validate each other.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from ..core.rng import stream
from ..core.seed import SeedMatrix
from ..telemetry import span
from ..formats import blocks_from_sorted_keys, get_format
from ..models.rmat import rmat_edge_batch
from ..util.external_sort import (DEFAULT_CHUNK_ITEMS, DEFAULT_FAN_IN,
                                  iter_unique_keys, write_run)
from ..util.shuffle import hash_partition
from ..util.spill import fsync_dir
from .faults import FaultPlan, RetryPolicy, pick_start_method, run_tasks

__all__ = ["WespDistributedResult", "run_wesp_distributed"]

_TAG_WORKER = 7   # must match repro.models.wesp for identical output


@dataclass
class WespDistributedResult:
    """Outcome of a distributed WES/p run."""

    part_paths: list[Path] = field(default_factory=list)
    num_edges: int = 0
    generate_seconds: float = 0.0
    merge_seconds: float = 0.0
    partition_sizes: list[int] = field(default_factory=list)

    @property
    def skew(self) -> float:
        sizes = np.array(self.partition_sizes, dtype=float)
        if sizes.size == 0 or sizes.mean() == 0:
            return 1.0
        return float(sizes.max() / sizes.mean())


def _map_task(args: tuple) -> list[str]:
    """Generator process: produce this worker's runs, one per reducer."""
    (worker, scale, num_edges, seed_entries, seed, num_workers, epsilon,
     shuffle_dir) = args
    seed_matrix = SeedMatrix(np.array(seed_entries))
    num_vertices = 1 << scale
    per_worker = int(np.ceil(num_edges / num_workers * (1 + epsilon)))
    rng = stream(seed, _TAG_WORKER, worker)
    batch = rmat_edge_batch(seed_matrix, scale, per_worker, rng)
    keys = np.unique(batch[:, 0] * np.int64(num_vertices) + batch[:, 1])
    paths = []
    for reducer, part in enumerate(hash_partition(keys, num_workers)):
        path = Path(shuffle_dir) / f"map{worker:03d}-red{reducer:03d}.run"
        write_run(np.sort(part), path)
        paths.append(str(path))
    return paths


def _write_npy_stream(chunks: Iterable[np.ndarray], path: Path,
                      num_vertices: int) -> int:
    """Stream sorted key chunks into a ``.npy`` ``(m, 2)`` edge array.

    ``np.save`` needs the row count up front, so the unpacked edge rows
    stream into a payload temporary first; once the count is known the
    header plus payload are assembled into a second temporary and
    renamed into place (flush + fsync + atomic rename, the spill-layer
    protocol), copying in bounded chunks.  Peak memory stays one chunk.
    Returns the number of edges written.
    """
    n = np.int64(num_vertices)
    payload = path.with_name(f"{path.name}.payload.{os.getpid()}")
    tmp = path.with_name(f"{path.name}.partial.{os.getpid()}")
    count = 0
    try:
        with open(payload, "wb") as body:
            for keys in chunks:
                edges = np.ascontiguousarray(
                    np.column_stack([keys // n, keys % n]))
                body.write(memoryview(edges))
                count += int(keys.size)
            body.flush()
        with open(tmp, "wb") as out:
            np.lib.format.write_array_header_1_0(
                out, {"descr": "<i8", "fortran_order": False,
                      "shape": (count, 2)})
            with open(payload, "rb") as body:
                shutil.copyfileobj(body, out, 1 << 20)
            out.flush()
            os.fsync(out.fileno())
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
        payload.unlink(missing_ok=True)
    fsync_dir(path.parent)
    return count


def _reduce_task(args: tuple) -> tuple[str, int]:
    """Merger process: external-merge this reducer's runs into a part.

    The merge is the bounded-RAM streaming engine
    (:func:`repro.util.external_sort.iter_unique_keys`): at most
    ``fan_in`` runs are open at once, intermediate merge passes land in
    a per-reducer spill directory, and — because that directory and its
    resume manifest persist under ``work_dir`` — a reducer retried by
    the fault-tolerant scheduler (or a whole re-run after SIGKILL)
    adopts the passes its predecessor completed instead of redoing them.

    With ``fmt_name`` set the stream feeds the block-streaming format
    writers directly (sources never split across blocks); with ``None``
    the historical ``.npy`` edge-array part is streamed via
    :func:`_write_npy_stream`.  Either way the reducer never holds the
    merged edge set.
    """
    (reducer, run_paths, out_dir, scale, fmt_name, fan_in,
     chunk_items) = args
    num_vertices = 1 << scale
    spill_dir = Path(out_dir) / "spill" / f"red{reducer:03d}"
    stream_chunks = iter_unique_keys(
        [Path(p) for p in run_paths], chunk_items=chunk_items,
        fan_in=fan_in, spill_dir=spill_dir, resume=True)
    if fmt_name is None:
        part_path = Path(out_dir) / f"part-{reducer:04d}.npy"
        count = _write_npy_stream(stream_chunks, part_path, num_vertices)
    else:
        fmt = get_format(fmt_name)
        part_path = Path(out_dir) / f"part-{reducer:04d}.{fmt_name}"
        result = fmt.write_blocks(
            part_path, blocks_from_sorted_keys(stream_chunks, num_vertices),
            num_vertices)
        count = result.num_edges
    shutil.rmtree(spill_dir, ignore_errors=True)
    return str(part_path), int(count)


def run_wesp_distributed(scale: int, edge_factor: int = 16,
                         seed_matrix: SeedMatrix | None = None, *,
                         num_edges: int | None = None,
                         num_workers: int = 4, epsilon: float = 0.01,
                         seed: int = 0, work_dir: Path | str,
                         processes: int | None = None,
                         retry: RetryPolicy | None = None,
                         faults: FaultPlan | None = None,
                         fmt_name: str | None = None,
                         fan_in: int = DEFAULT_FAN_IN,
                         spill_chunk: int = DEFAULT_CHUNK_ITEMS
                         ) -> WespDistributedResult:
    """Run the full WES/p dataflow across worker processes.

    ``work_dir`` receives the shuffle runs and the final part files:
    ``part-*.npy`` int64 edge arrays by default, or graph-format parts
    written through the block-streaming path when ``fmt_name`` names a
    registered format (``"adj6"``/``"csr6"``/``"tsv"``).  Both phases run
    under the fault-tolerant scheduler
    (:func:`repro.dist.faults.run_tasks`), so the baseline enjoys the
    same retry/timeout supervision as the AVS scatter.
    """
    from ..core.seed import GRAPH500
    seed_matrix = seed_matrix if seed_matrix is not None else GRAPH500
    num_vertices = 1 << scale
    if num_edges is None:
        num_edges = edge_factor * num_vertices
    work_dir = Path(work_dir)
    shuffle_dir = work_dir / "shuffle"
    shuffle_dir.mkdir(parents=True, exist_ok=True)

    result = WespDistributedResult()
    pool_size = processes if processes is not None \
        else min(num_workers, mp.cpu_count())
    ctx = mp.get_context(pick_start_method())
    faults = faults if faults is not None else FaultPlan.from_env()
    map_args = [
        (w, scale, num_edges, seed_matrix.entries.tolist(), seed,
         num_workers, epsilon, str(shuffle_dir))
        for w in range(num_workers)
    ]
    with span("wesp.map", workers=num_workers) as sp:
        map_outputs, _ = run_tasks(map_args, _map_task,
                                   pool_size=pool_size, policy=retry,
                                   faults=faults, mp_context=ctx)
    result.generate_seconds = sp.seconds

    # Group runs by reducer.
    reduce_args = []
    for reducer in range(num_workers):
        runs = [paths[reducer] for paths in map_outputs]
        reduce_args.append((reducer, runs, str(work_dir), scale, fmt_name,
                            fan_in, spill_chunk))
    with span("wesp.reduce", workers=num_workers) as sp:
        reduce_outputs, _ = run_tasks(reduce_args, _reduce_task,
                                      pool_size=pool_size, policy=retry,
                                      faults=faults, mp_context=ctx)
    result.merge_seconds = sp.seconds

    for path, count in reduce_outputs:
        result.part_paths.append(Path(path))
        result.partition_sizes.append(count)
        result.num_edges += count
    return result
