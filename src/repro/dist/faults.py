"""Fault-tolerant task scheduling for the distributed pipeline.

The paper motivates TrillionG by the wall-clock cost of trillion-scale
runs (Figure 12); at that horizon worker failure is routine, not
exceptional.  This module replaces the bare ``pool.map`` scatter with a
small supervisor: each partition runs in its own worker process with a
configurable per-attempt timeout, failed or hung workers are killed and
retried with exponential backoff plus deterministic jitter, and a
partition whose worker died repeatedly degrades gracefully to in-process
execution.  Because the AVS generator's randomness is keyed per block,
any retry regenerates exactly the same bytes, so fault recovery never
changes the output graph.

Robustness is testable: :class:`FaultPlan` deterministically injects
crashes, hangs, and corrupted output into chosen task indices (or with a
seeded probability), either programmatically or via environment
variables (``TRILLIONG_FAULT_CRASH=0,2 TRILLIONG_FAULT_HANG=1 ...``), so
CI can exercise every recovery path on every run.

Start methods: workers prefer ``fork`` where available and fall back to
``spawn`` (macOS/Windows default); all task payloads are plain picklable
tuples and the worker entry points are module-level functions, so both
start methods round-trip identically.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Any, Callable, Sequence

from ..core.rng import stream
from ..errors import TaskTimeout, TrillionGError, WorkerError
from ..telemetry import (FlightRecorder, Stopwatch, absorb_telemetry,
                         get_logger, record_worker_report, registry,
                         reset_telemetry, snapshot_telemetry, span)
from ..telemetry.flight import flight_interval_from_env

_log = get_logger("dist.faults")

__all__ = [
    "FaultPlan",
    "RetryPolicy",
    "TaskAttempt",
    "run_tasks",
    "pick_start_method",
    "corrupt_file",
]

# Stream tags (distinct from the generator's 10x tags): fault-injection
# draws and backoff jitter must not share entropy with graph generation.
_TAG_FAULT = 201
_TAG_BACKOFF = 202

#: Environment variables activating :meth:`FaultPlan.from_env`.
_ENV_CRASH = "TRILLIONG_FAULT_CRASH"
_ENV_HANG = "TRILLIONG_FAULT_HANG"
_ENV_CORRUPT = "TRILLIONG_FAULT_CORRUPT"
_ENV_PROB = "TRILLIONG_FAULT_PROB"
_ENV_SEED = "TRILLIONG_FAULT_SEED"
_ENV_MAX = "TRILLIONG_FAULT_MAX"


def pick_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``.

    ``fork`` is cheap and inherits the parent's imports; ``spawn`` is the
    only portable choice on macOS/Windows.  Worker tasks are built to be
    picklable so either works.
    """
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def corrupt_file(path: str | Path) -> None:
    """Truncate ``path`` to half its size (the corrupt-output fault)."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[:len(data) // 2])


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault injection for scheduler testing.

    A task attempt faults when its index is listed in one of the explicit
    sets, or (failing that) when a ``(seed, task, attempt)``-keyed uniform
    draw falls below ``crash_probability``.  Attempts beyond
    ``max_faulty_attempts`` never fault, so every plan terminates under
    retry.  Faults apply only to subprocess attempts — the in-process
    degraded path runs the real task so recovery always converges.
    """

    crash_tasks: frozenset[int] = frozenset()
    hang_tasks: frozenset[int] = frozenset()
    corrupt_tasks: frozenset[int] = frozenset()
    crash_probability: float = 0.0
    seed: int = 0
    max_faulty_attempts: int = 1
    hang_seconds: float = 3600.0

    def action(self, task_index: int, attempt: int) -> str | None:
        """``"crash"`` / ``"hang"`` / ``"corrupt"`` / ``None`` for this
        attempt.  Pure function of the plan — the parent can predict
        exactly what it injected into each child."""
        if attempt > self.max_faulty_attempts:
            return None
        if task_index in self.crash_tasks:
            return "crash"
        if task_index in self.hang_tasks:
            return "hang"
        if task_index in self.corrupt_tasks:
            return "corrupt"
        if self.crash_probability > 0.0:
            draw = stream(self.seed, _TAG_FAULT, task_index,
                          attempt).random()
            if float(draw) < self.crash_probability:
                return "crash"
        return None

    @property
    def empty(self) -> bool:
        return (not self.crash_tasks and not self.hang_tasks
                and not self.corrupt_tasks
                and self.crash_probability <= 0.0)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Build a plan from ``TRILLIONG_FAULT_*`` variables; ``None``
        when no fault variable is set (the common case)."""

        def indices(name: str) -> frozenset[int]:
            raw = os.environ.get(name, "").strip()
            if not raw:
                return frozenset()
            return frozenset(int(tok) for tok in raw.split(",")
                             if tok.strip())

        crash = indices(_ENV_CRASH)
        hang = indices(_ENV_HANG)
        corrupt = indices(_ENV_CORRUPT)
        prob = float(os.environ.get(_ENV_PROB, "0") or "0")
        if not crash and not hang and not corrupt and prob <= 0.0:
            return None
        return cls(crash_tasks=crash, hang_tasks=hang,
                   corrupt_tasks=corrupt, crash_probability=prob,
                   seed=int(os.environ.get(_ENV_SEED, "0") or "0"),
                   max_faulty_attempts=int(
                       os.environ.get(_ENV_MAX, "1") or "1"))


@dataclass(frozen=True)
class RetryPolicy:
    """How the scheduler reacts to a failed or hung attempt.

    A task gets ``retries + 1`` attempts in total.  Subprocess attempts
    past ``task_timeout`` seconds are killed (``SIGKILL``) and count as
    failures.  After ``in_process_after`` subprocess deaths the remaining
    attempts run in-process in the supervisor (degraded but supervised by
    nothing that can die separately).  Backoff before attempt ``k``'s
    retry is ``backoff_base * backoff_factor**(k-1)`` capped at
    ``backoff_max``, stretched by up to ``jitter`` (deterministically,
    keyed by ``(seed, task, attempt)``).
    """

    retries: int = 3
    task_timeout: float | None = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    in_process_after: int = 2
    seed: int = 0

    @property
    def max_attempts(self) -> int:
        return max(1, self.retries + 1)

    def backoff_delay(self, task_index: int, attempt: int) -> float:
        """Seconds to wait before retrying ``task_index`` after its
        ``attempt``-th failure (deterministic, including the jitter)."""
        delay = min(self.backoff_max,
                    self.backoff_base * self.backoff_factor
                    ** max(0, attempt - 1))
        if self.jitter > 0.0 and delay > 0.0:
            draw = stream(self.seed, _TAG_BACKOFF, task_index,
                          attempt).random()
            delay *= 1.0 + self.jitter * float(draw)
        return delay


@dataclass(frozen=True)
class TaskAttempt:
    """One attempt at one task, as observed by the supervisor."""

    attempt: int              #: 1-based attempt number
    outcome: str              #: ``ok`` | ``crashed`` | ``timeout`` |
                              #: ``corrupt`` | ``error``
    elapsed_seconds: float
    in_process: bool = False  #: ran in the supervisor (degraded mode)
    error: str | None = None
    injected: str | None = None   #: fault the plan injected, if any
    #: Flight-recorder forensics for failed attempts when the worker ran
    #: one (``TRILLIONG_FLIGHT``): the tail of its time series, either
    #: shipped with a clean error snapshot or recovered from the
    #: ``<output>.flight`` dump a SIGKILL'd/hung worker left behind.
    flight: dict | None = None


# ---------------------------------------------------------------------------
# Worker-side entry point
# ---------------------------------------------------------------------------


def _task_output_path(task: Any) -> str | None:
    """Convention: a task tuple ending in a string names its output file
    (used by the corrupt-output fault)."""
    if isinstance(task, (tuple, list)) and task \
            and isinstance(task[-1], str):
        return task[-1]
    return None


def _flight_dump_path(task: Any) -> Path | None:
    """Where a worker's flight recorder dumps its tail for forensics:
    next to the task's output file (the one path both sides know)."""
    out_path = _task_output_path(task)
    return Path(f"{out_path}.flight") if out_path is not None else None


def _start_worker_flight(task: Any) -> FlightRecorder | None:
    """A worker-local flight recorder when ``TRILLIONG_FLIGHT`` asks for
    one (the env var is inherited by fork/spawn children, so one switch
    arms every worker).  The env read lives in
    :func:`repro.telemetry.flight.flight_interval_from_env`, keeping
    worker entry points free of ad-hoc environment coupling."""
    interval = flight_interval_from_env()
    if interval is None:
        return None
    return FlightRecorder(interval,
                          dump_path=_flight_dump_path(task)).start()


def _tagged_snapshot(index: int, attempt: int,
                     recorder: FlightRecorder | None) -> dict:
    """The worker's outcome snapshot, tagged with its task identity (so
    the supervisor can keep per-worker trace tracks) and carrying the
    flight-recorder tail when one is running."""
    snap = snapshot_telemetry()
    snap["task_index"] = index
    snap["attempt"] = attempt
    if recorder is not None:
        recorder.sample()
        snap["flight"] = recorder.snapshot()
    return snap


def _attempt_entry(conn: Any, worker: Callable[[Any], Any], index: int,
                   task: Any, attempt: int,
                   faults: FaultPlan | None) -> None:
    """Subprocess entry: run one attempt, apply injected faults, and ship
    the outcome over the pipe.  Must catch everything — the process
    boundary is the one place errors can only travel as data.

    Telemetry is reset on entry (under ``fork`` the child inherits the
    parent's live registry — re-reporting it would double-count on merge)
    and a snapshot rides along with *every* outcome message, so even a
    failed or corrupted attempt contributes its partial metrics to the
    supervisor's aggregate.  With ``TRILLIONG_FLIGHT`` set the attempt
    also runs its own flight recorder: its tail travels inside the
    snapshot, and its on-disk dump is kept only when no snapshot made it
    out — the SIGKILL/hang forensics the supervisor collects in
    :func:`run_tasks`.
    """
    reset_telemetry()
    recorder = _start_worker_flight(task)
    snapshot_sent = False
    try:
        action = faults.action(index, attempt) if faults is not None \
            else None
        if action == "crash":
            raise WorkerError(
                f"injected crash (task {index}, attempt {attempt})")
        if action == "hang":
            time.sleep(faults.hang_seconds if faults is not None
                       else 3600.0)
        result = worker(task)
        if action == "corrupt":
            out_path = _task_output_path(task)
            if out_path is not None and Path(out_path).is_file():
                corrupt_file(out_path)
        conn.send(("ok", result, _tagged_snapshot(index, attempt,
                                                  recorder)))
        snapshot_sent = True
    except BaseException as exc:  # reprolint: disable=RPL402
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       _tagged_snapshot(index, attempt, recorder)))
            snapshot_sent = True
        except (BrokenPipeError, OSError):
            pass
    finally:
        if recorder is not None:
            recorder.stop(remove_dump=snapshot_sent)
        conn.close()


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


#: Failure outcome -> scheduler counter incremented on settle.
_OUTCOME_COUNTERS = {
    "crashed": "sched.crashes",
    "timeout": "sched.timeouts",
    "corrupt": "sched.corruptions",
    "error": "sched.errors",
}


@dataclass
class _Running:
    """Book-keeping for one in-flight subprocess attempt."""

    process: Any
    conn: Any
    attempt: int
    started: float
    deadline: float | None


def _reap(entry: _Running) -> tuple[str, Any, dict | None]:
    """Collect an outcome from a readable pipe: the child either sent a
    message or died without one (hard crash / ``os._exit``).  The third
    element is the child's telemetry snapshot when it managed to send
    one — present for clean failures too, absent only for hard deaths."""
    try:
        kind, payload, snap = entry.conn.recv()
    except (EOFError, OSError):
        entry.process.join()
        code = entry.process.exitcode
        return ("crashed",
                f"worker died without reporting (exit {code})", None)
    entry.process.join()
    if kind == "ok":
        return "ok", payload, snap
    return "crashed", payload, snap


def _kill(entry: _Running) -> None:
    if entry.process.is_alive():
        entry.process.kill()
    entry.process.join()
    entry.conn.close()


def _collect_flight_dump(task: Any) -> dict | None:
    """Recover (and consume) the flight dump a dead worker left next to
    its output file — the only forensics channel for a worker that never
    got to send a snapshot (SIGKILL, hang past timeout, hard crash)."""
    dump = _flight_dump_path(task)
    if dump is None:
        return None
    try:
        doc = json.loads(dump.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    dump.unlink(missing_ok=True)
    return doc if isinstance(doc, dict) else None


def _fail_task(index: int, attempts: Sequence[TaskAttempt],
               policy: RetryPolicy) -> TrillionGError:
    """Build the terminal error for a task that exhausted its budget."""
    trail = "; ".join(
        f"#{a.attempt} {a.outcome}"
        + (f" ({a.error})" if a.error else "") for a in attempts)
    if attempts and attempts[-1].outcome == "timeout":
        return TaskTimeout(
            f"task {index} timed out on all {len(attempts)} attempt(s) "
            f"[{trail}]", task_index=index, attempts=tuple(attempts),
            timeout_seconds=policy.task_timeout)
    return WorkerError(
        f"task {index} failed after {len(attempts)} attempt(s) [{trail}]",
        task_index=index, attempts=tuple(attempts))


def _run_in_process(index: int, task: Any, worker: Callable[[Any], Any],
                    validate: Callable[[Any, Any], None] | None,
                    attempts: list[TaskAttempt], attempt: int,
                    policy: RetryPolicy) -> Any:
    """Degraded path: run the task in the supervisor itself (no fault
    injection, no timeout — there is no separate process to kill)."""
    watch = Stopwatch().start()
    registry().counter("sched.attempts").inc()
    try:
        result = worker(task)
        if validate is not None:
            validate(task, result)
    except WorkerError as exc:
        attempts.append(TaskAttempt(attempt, "corrupt", watch.stop(),
                                    in_process=True, error=str(exc)))
        registry().counter("sched.corruptions").inc()
        raise _fail_task(index, attempts, policy) from exc
    except Exception as exc:  # reprolint: disable=RPL402
        attempts.append(TaskAttempt(attempt, "error", watch.stop(),
                                    in_process=True,
                                    error=f"{type(exc).__name__}: {exc}"))
        registry().counter("sched.errors").inc()
        raise _fail_task(index, attempts, policy) from exc
    attempts.append(TaskAttempt(attempt, "ok", watch.stop(),
                                in_process=True))
    return result


def run_tasks(tasks: Sequence[Any], worker: Callable[[Any], Any], *,
              pool_size: int,
              policy: RetryPolicy | None = None,
              faults: FaultPlan | None = None,
              validate: Callable[[Any, Any], None] | None = None,
              on_result: Callable[[int, Any], None] | None = None,
              mp_context: Any = None,
              ) -> tuple[list[Any], dict[int, list[TaskAttempt]]]:
    """Run every task to completion under retry/timeout supervision.

    Parameters
    ----------
    tasks:
        Picklable task payloads; ``worker(task)`` must be a module-level
        callable (spawn-safe).
    pool_size:
        Max concurrent worker processes.  ``<= 1`` runs everything
        in-process (no subprocesses, no fault injection).
    policy:
        Retry/timeout/backoff policy (default :class:`RetryPolicy`).
    faults:
        Optional deterministic fault injection (subprocess attempts only).
    validate:
        ``validate(task, result)`` called in the supervisor after each
        successful attempt; raise :class:`~repro.errors.WorkerError` to
        reject corrupt output and trigger a retry.
    on_result:
        ``on_result(index, result)`` called in the supervisor as each task
        completes — e.g. to checkpoint progress incrementally.
    mp_context:
        A ``multiprocessing`` context; defaults to
        :func:`pick_start_method`.

    Returns
    -------
    ``(results, history)`` where ``results[i]`` is task ``i``'s result
    and ``history[i]`` its full attempt trail.

    Raises
    ------
    WorkerError / TaskTimeout
        When a task exhausts its attempt budget; all other in-flight
        workers are killed first.
    """
    policy = policy if policy is not None else RetryPolicy()
    count = len(tasks)
    results: list[Any] = [None] * count
    history: dict[int, list[TaskAttempt]] = {i: [] for i in range(count)}
    if count == 0:
        return results, history

    if pool_size <= 1:
        with span("sched.run_tasks", tasks=count):
            for i, task in enumerate(tasks):
                results[i] = _run_in_process(i, task, worker, validate,
                                             history[i], 1, policy)
                if on_result is not None:
                    on_result(i, results[i])
        return results, history

    ctx = mp_context if mp_context is not None \
        else mp.get_context(pick_start_method())
    ready: deque[int] = deque(range(count))
    delayed: list[tuple[float, int]] = []     # (release time, index)
    running: dict[int, _Running] = {}
    failures = [0] * count                    # subprocess deaths per task
    attempt_no = [0] * count

    def launch(index: int) -> None:
        attempt_no[index] += 1
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_attempt_entry,
            args=(send_conn, worker, index, tasks[index],
                  attempt_no[index], faults),
            daemon=True)
        proc.start()
        send_conn.close()
        now = time.monotonic()
        deadline = (now + policy.task_timeout
                    if policy.task_timeout is not None else None)
        running[index] = _Running(proc, recv_conn, attempt_no[index],
                                  now, deadline)

    def settle(index: int, outcome: str, attempt: int, elapsed: float,
               payload: Any, error: str | None,
               forensics: dict | None = None) -> None:
        injected = (faults.action(index, attempt)
                    if faults is not None else None)
        history[index].append(TaskAttempt(
            attempt, outcome, elapsed, error=error, injected=injected,
            flight=forensics if outcome != "ok" else None))
        reg = registry()
        reg.counter("sched.attempts").inc()
        if outcome == "ok":
            results[index] = payload
            if on_result is not None:
                on_result(index, payload)
            return
        reg.counter(_OUTCOME_COUNTERS.get(outcome, "sched.errors")).inc()
        _log.warning("task %d attempt %d %s: %s", index, attempt,
                     outcome, error)
        failures[index] += 1
        if attempt >= policy.max_attempts:
            raise _fail_task(index, history[index], policy)
        reg.counter("sched.retries").inc()
        release = time.monotonic() + policy.backoff_delay(index, attempt)
        delayed.append((release, index))

    # Manually entered (rather than a ``with`` over the whole loop) so the
    # worker snapshots absorbed below graft under this span while the
    # existing try/finally keeps the kill-everything cleanup unchanged.
    sched_span = span("sched.run_tasks", tasks=count)
    sched_span.__enter__()
    try:
        while ready or delayed or running:
            now = time.monotonic()
            if delayed:
                still = [(t, i) for t, i in delayed if t > now]
                for t, i in delayed:
                    if t <= now:
                        ready.append(i)
                delayed = still
            while ready and len(running) < pool_size:
                index = ready.popleft()
                if failures[index] >= policy.in_process_after:
                    registry().counter("sched.fallbacks").inc()
                    _log.warning("task %d degrading to in-process "
                                 "execution after %d worker deaths",
                                 index, failures[index])
                    attempt_no[index] += 1
                    results[index] = _run_in_process(
                        index, tasks[index], worker, validate,
                        history[index], attempt_no[index], policy)
                    if on_result is not None:
                        on_result(index, results[index])
                else:
                    launch(index)
            if not running:
                if delayed:
                    pause = min(t for t, _ in delayed) - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                continue

            timeout = 0.25
            deadlines = [e.deadline for e in running.values()
                         if e.deadline is not None]
            if deadlines:
                timeout = min(timeout,
                              max(0.0, min(deadlines) - time.monotonic()))
            if delayed:
                timeout = min(timeout,
                              max(0.0, min(t for t, _ in delayed)
                                  - time.monotonic()))
            readable = mp_connection.wait(
                [e.conn for e in running.values()], timeout)

            now = time.monotonic()
            for index, entry in list(running.items()):
                if entry.conn in readable:
                    kind, payload, snap = _reap(entry)
                    entry.conn.close()
                    del running[index]
                    if snap is not None:
                        # Merge the child's metrics and span tree even
                        # when the attempt failed — partial work is real
                        # work, and the aggregate should account for it.
                        # The tagged original is also retained verbatim
                        # so trace export can keep per-worker tracks.
                        absorb_telemetry(snap)
                        record_worker_report(snap)
                    # Forensics for failed attempts: the flight tail the
                    # snapshot carried, else the dump a snapshot-less
                    # death left on disk.
                    forensics = snap.get("flight") if snap is not None \
                        else _collect_flight_dump(tasks[index])
                    elapsed = now - entry.started
                    if kind == "ok":
                        error = None
                        if validate is not None:
                            try:
                                validate(tasks[index], payload)
                            except WorkerError as exc:
                                kind, error = "corrupt", str(exc)
                        settle(index, "ok" if kind == "ok" else kind,
                               entry.attempt, elapsed,
                               payload if kind == "ok" else None, error,
                               forensics=forensics)
                    else:
                        settle(index, "crashed", entry.attempt, elapsed,
                               None, str(payload), forensics=forensics)
                elif entry.deadline is not None and now >= entry.deadline:
                    _kill(entry)
                    del running[index]
                    settle(index, "timeout", entry.attempt,
                           now - entry.started, None,
                           f"no result within {policy.task_timeout}s; "
                           "worker killed",
                           forensics=_collect_flight_dump(tasks[index]))
    finally:
        for entry in running.values():
            _kill(entry)
        sched_span.__exit__(None, None, None)

    return results, history
