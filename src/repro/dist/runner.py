"""Local multiprocessing cluster for distributed AVS generation.

Stands in for the paper's Spark cluster of "machines x threads": workers are
OS processes on this host, each generating a Figure 6 partition of the
vertex range and writing its own output part file (the paper's per-worker
HDFS parts).  Because the AVS generator's randomness is keyed per block,
the distributed output is bit-identical to a sequential run over the same
configuration.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.generator import RecursiveVectorGenerator
from ..formats import get_format
from .partition import Bin, range_partition

__all__ = ["ClusterSpec", "WorkerResult", "DistributedResult",
           "LocalCluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster (paper default: 10 machines x 6
    threads = 60 workers)."""

    machines: int = 1
    threads_per_machine: int = 2

    @property
    def num_workers(self) -> int:
        return self.machines * self.threads_per_machine


@dataclass
class WorkerResult:
    """One worker's part-file outcome."""

    worker: int
    start: int
    stop: int
    num_edges: int
    path: str
    elapsed_seconds: float


@dataclass
class DistributedResult:
    """Outcome of a distributed generation run."""

    workers: list[WorkerResult] = field(default_factory=list)
    partition_seconds: float = 0.0
    elapsed_seconds: float = 0.0

    @property
    def num_edges(self) -> int:
        return sum(w.num_edges for w in self.workers)

    @property
    def paths(self) -> list[Path]:
        return [Path(w.path) for w in self.workers]

    @property
    def skew(self) -> float:
        """Max worker edge count over the mean — the load-balance metric
        the Figure 6 partitioner is designed to keep near 1."""
        counts = np.array([w.num_edges for w in self.workers], dtype=float)
        if counts.size == 0 or counts.mean() == 0:
            return 1.0
        return float(counts.max() / counts.mean())


def _worker_generate(args: tuple) -> WorkerResult:
    """Subprocess entry point: generate one vertex range to one part file."""
    (worker, start, stop, gen_kwargs, fmt_name, out_path) = args
    t0 = time.perf_counter()
    generator = RecursiveVectorGenerator(**gen_kwargs)
    fmt = get_format(fmt_name)
    result = fmt.write(out_path, generator.iter_adjacency(start, stop),
                       generator.num_vertices)
    return WorkerResult(worker, start, stop, result.num_edges,
                        str(out_path), time.perf_counter() - t0)


class LocalCluster:
    """A pool of worker processes executing AVS generation partitions."""

    def __init__(self, spec: ClusterSpec | None = None,
                 num_workers: int | None = None) -> None:
        if spec is None:
            workers = num_workers if num_workers is not None else 2
            spec = ClusterSpec(machines=1, threads_per_machine=workers)
        self.spec = spec

    def generate_to_files(self, generator: RecursiveVectorGenerator,
                          out_dir: Path | str,
                          fmt_name: str = "adj6",
                          processes: int | None = None
                          ) -> DistributedResult:
        """Partition, scatter, and generate part files in parallel.

        ``processes`` caps the real OS processes (defaults to the logical
        worker count; the logical partitioning is unaffected).
        """
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        result = DistributedResult()
        t0 = time.perf_counter()
        ranges = range_partition(generator, self.spec.num_workers)
        result.partition_seconds = time.perf_counter() - t0

        gen_kwargs = dict(
            scale=generator.scale,
            num_edges=generator.num_edges,
            seed_matrix=generator.seed_matrix,
            noise=generator.noise,
            direction=generator.direction,
            engine=generator.engine,
            dedup=generator.dedup,
            degree_method=generator.degree_method,
            seed=generator.seed,
            block_size=generator.block_size,
        )
        tasks = [
            (w, r.start, r.stop, gen_kwargs, fmt_name,
             str(out_dir / f"part-{w:04d}.{fmt_name}"))
            for w, r in enumerate(ranges)
        ]
        t0 = time.perf_counter()
        pool_size = processes if processes is not None \
            else min(self.spec.num_workers, mp.cpu_count())
        if pool_size <= 1:
            result.workers = [_worker_generate(t) for t in tasks]
        else:
            ctx = mp.get_context("fork")
            with ctx.Pool(pool_size) as pool:
                result.workers = pool.map(_worker_generate, tasks)
        result.elapsed_seconds = (time.perf_counter() - t0
                                  + result.partition_seconds)
        return result

    def read_all_edges(self, result: DistributedResult,
                       fmt_name: str = "adj6") -> np.ndarray:
        """Concatenate all part files back into one edge array (for
        verification; paper-scale outputs would stay on disk)."""
        fmt = get_format(fmt_name)
        parts = [fmt.read_edges(p) for p in result.paths]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(parts)
