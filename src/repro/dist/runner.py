"""Local multiprocessing cluster for distributed AVS generation.

Stands in for the paper's Spark cluster of "machines x threads": workers are
OS processes on this host, each generating a Figure 6 partition of the
vertex range and writing its own output part file (the paper's per-worker
HDFS parts).  Because the AVS generator's randomness is keyed per block,
the distributed output is bit-identical to a sequential run over the same
configuration.

Execution is supervised by the fault-tolerance layer
(:mod:`repro.dist.faults`): each partition runs under a per-attempt
timeout, crashed or hung workers are killed and retried with backoff, a
partition whose worker died repeatedly falls back to in-process
execution, and the full per-task attempt history is recorded on the
:class:`DistributedResult`.  :meth:`LocalCluster.generate_checkpointed`
additionally journals every finished chunk into a
:class:`~repro.dist.checkpoint.CheckpointedRun` manifest, so a killed
parallel run resumes where it stopped — still bit-identical.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from ..contracts import check_attempt_history, check_worker_result
from ..core.generator import RecursiveVectorGenerator
from ..errors import FormatError, WorkerError
from ..formats import get_format
from ..telemetry import span
from .checkpoint import CheckpointedRun, fsync_dir, fsync_file
from .faults import (FaultPlan, RetryPolicy, TaskAttempt,
                     pick_start_method, run_tasks)
from .partition import Bin, range_partition

__all__ = ["ClusterSpec", "WorkerResult", "DistributedResult",
           "LocalCluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of the simulated cluster (paper default: 10 machines x 6
    threads = 60 workers)."""

    machines: int = 1
    threads_per_machine: int = 2

    @property
    def num_workers(self) -> int:
        return self.machines * self.threads_per_machine


@dataclass
class WorkerResult:
    """One worker's part-file outcome."""

    worker: int
    start: int
    stop: int
    num_edges: int
    path: str
    elapsed_seconds: float
    #: Wall time this worker spent encoding blocks into format bytes.
    encode_seconds: float = 0.0
    #: Wall time this worker spent inside ``file.write``.
    write_seconds: float = 0.0


@dataclass
class DistributedResult:
    """Outcome of a distributed generation run."""

    workers: list[WorkerResult] = field(default_factory=list)
    partition_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    #: task index -> every attempt the scheduler made for it.
    task_attempts: dict[int, list[TaskAttempt]] = field(
        default_factory=dict)
    #: Manifest of the run, when generated via generate_checkpointed.
    checkpoint: CheckpointedRun | None = None

    @property
    def num_edges(self) -> int:
        return sum(w.num_edges for w in self.workers)

    @property
    def paths(self) -> list[Path]:
        return [Path(w.path) for w in self.workers]

    @property
    def num_retries(self) -> int:
        """Attempts beyond the first, across all tasks."""
        return sum(max(0, len(a) - 1)
                   for a in self.task_attempts.values())

    @property
    def num_fallbacks(self) -> int:
        """Tasks that completed in-process after worker deaths."""
        return sum(1 for a in self.task_attempts.values()
                   if a and a[-1].outcome == "ok" and a[-1].in_process)

    @property
    def flight_forensics(self) -> dict[int, list[dict]]:
        """Flight-recorder tails left by failed attempts, per task index
        (``TRILLIONG_FLIGHT`` runs only): the last seconds of a crashed,
        hung, or errored worker's time series, in attempt order."""
        forensics: dict[int, list[dict]] = {}
        for index, attempts in self.task_attempts.items():
            tails = [a.flight for a in attempts if a.flight is not None]
            if tails:
                forensics[index] = tails
        return forensics

    @property
    def encode_seconds(self) -> float:
        """Total encode wall time summed across workers."""
        return sum(w.encode_seconds for w in self.workers)

    @property
    def write_seconds(self) -> float:
        """Total ``file.write`` wall time summed across workers."""
        return sum(w.write_seconds for w in self.workers)

    @property
    def edges_per_second(self) -> float:
        """End-to-end edge throughput of the run (0 when untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.num_edges / self.elapsed_seconds

    @property
    def skew(self) -> float:
        """Max worker edge count over the mean — the load-balance metric
        the Figure 6 partitioner is designed to keep near 1."""
        counts = np.array([w.num_edges for w in self.workers], dtype=float)
        if counts.size == 0 or counts.mean() == 0:
            return 1.0
        return float(counts.max() / counts.mean())


def _worker_generate(args: tuple) -> WorkerResult:
    """Subprocess entry point: generate one vertex range to one part file.

    Module-level and driven purely by the picklable ``args`` tuple so it
    round-trips under both fork and spawn start methods.
    """
    (worker, start, stop, gen_kwargs, fmt_name, out_path) = args
    with span("worker.generate", worker=worker) as sp:
        generator = RecursiveVectorGenerator(**gen_kwargs)
        fmt = get_format(fmt_name)
        result = fmt.write_blocks(out_path,
                                  generator.iter_blocks(start, stop),
                                  generator.num_vertices)
    return WorkerResult(worker, start, stop, result.num_edges,
                        str(out_path), sp.seconds,
                        encode_seconds=result.encode_seconds,
                        write_seconds=result.write_seconds)


def _worker_chunk(args: tuple) -> WorkerResult:
    """Subprocess entry point for one checkpoint chunk: write to a
    temporary, fsync, and atomically rename — the parent records the
    chunk in the manifest only after this returns."""
    (chunk, start, stop, gen_kwargs, fmt_name, final_path) = args
    with span("worker.chunk", chunk=chunk) as sp:
        generator = RecursiveVectorGenerator(**gen_kwargs)
        fmt = get_format(fmt_name)
        final = Path(final_path)
        tmp = final.with_name(
            f"{final.name}.partial.{mp.current_process().pid}")
        try:
            result = fmt.write_blocks(tmp, generator.iter_blocks(start, stop),
                                      generator.num_vertices)
            fsync_file(tmp)
            tmp.replace(final)
        finally:
            tmp.unlink(missing_ok=True)
        fsync_dir(final.parent)
    return WorkerResult(chunk, start, stop, result.num_edges,
                        str(final), sp.seconds,
                        encode_seconds=result.encode_seconds,
                        write_seconds=result.write_seconds)


def _progress_hook(progress: Callable[[int], None] | None
                   ) -> Callable[[int, WorkerResult], None] | None:
    """Adapt a cumulative-edge ``progress`` callback to the scheduler's
    per-task ``on_result(index, result)`` hook."""
    if progress is None:
        return None
    edges_done = 0

    def hook(index: int, worker_result: WorkerResult) -> None:
        nonlocal edges_done
        edges_done += worker_result.num_edges
        progress(edges_done)

    return hook


class LocalCluster:
    """A pool of worker processes executing AVS generation partitions."""

    def __init__(self, spec: ClusterSpec | None = None,
                 num_workers: int | None = None) -> None:
        if spec is None:
            workers = num_workers if num_workers is not None else 2
            spec = ClusterSpec(machines=1, threads_per_machine=workers)
        self.spec = spec

    # ------------------------------------------------------------------

    @staticmethod
    def _generator_kwargs(generator: RecursiveVectorGenerator) -> dict:
        """The picklable recipe a worker needs to rebuild ``generator``
        (spawn-safe: plain scalars plus the seed matrix)."""
        return dict(
            scale=generator.scale,
            num_edges=generator.num_edges,
            seed_matrix=generator.seed_matrix,
            noise=generator.noise,
            direction=generator.direction,
            engine=generator.engine,
            dedup=generator.dedup,
            degree_method=generator.degree_method,
            seed=generator.seed,
            block_size=generator.block_size,
            bundle_depth=generator.bundle_depth,
        )

    def _build_tasks(self, generator: RecursiveVectorGenerator,
                     out_dir: Path, ranges: list[Bin],
                     fmt_name: str) -> list[tuple]:
        gen_kwargs = self._generator_kwargs(generator)
        return [
            (w, r.start, r.stop, gen_kwargs, fmt_name,
             str(out_dir / f"part-{w:04d}.{fmt_name}"))
            for w, r in enumerate(ranges)
        ]

    @staticmethod
    def _make_validator(fmt_name: str, faults: FaultPlan | None):
        """Part-file validator run in the supervisor after each success.

        Existence/size are always checked; a full read-back (edge count
        vs. the worker's report) runs when fault injection is active,
        where corrupt output is an expected failure mode.
        """
        fmt = get_format(fmt_name)
        deep = faults is not None and not faults.empty

        def validate(task: tuple, result: WorkerResult) -> None:
            path = Path(result.path)
            if not path.exists():
                raise WorkerError(
                    f"worker reported success but {path} is missing")
            if result.num_edges > 0 and path.stat().st_size == 0:
                raise WorkerError(
                    f"worker reported {result.num_edges} edges but "
                    f"{path} is empty")
            if deep:
                try:
                    edges = fmt.read_edges(path)
                except (FormatError, ValueError, OSError) as exc:
                    raise WorkerError(
                        f"{path} is unreadable: {exc}") from exc
                if edges.shape[0] != result.num_edges:
                    raise WorkerError(
                        f"{path} holds {edges.shape[0]} edges, worker "
                        f"reported {result.num_edges}")

        return validate

    @staticmethod
    def _pool_size(processes: int | None, num_tasks: int,
                   logical_workers: int) -> int:
        if processes is not None:
            return processes
        return min(logical_workers, num_tasks, mp.cpu_count())

    def _run_supervised(self, tasks: list[tuple], worker, pool_size: int,
                        retry: RetryPolicy | None,
                        faults: FaultPlan | None,
                        fmt_name: str,
                        start_method: str | None,
                        on_result=None,
                        ) -> tuple[list[WorkerResult],
                                   dict[int, list[TaskAttempt]]]:
        """Shared scatter path: resolve policy/faults/context, run the
        scheduler, and check the per-task contracts."""
        faults = faults if faults is not None else FaultPlan.from_env()
        policy = retry if retry is not None else RetryPolicy()
        ctx = mp.get_context(start_method if start_method is not None
                             else pick_start_method())
        results, history = run_tasks(
            tasks, worker, pool_size=pool_size, policy=policy,
            faults=faults, validate=self._make_validator(fmt_name, faults),
            on_result=on_result, mp_context=ctx)
        for index, task in enumerate(tasks):
            check_worker_result(results[index],
                                start=task[1], stop=task[2])
            check_attempt_history(history[index])
        return results, history

    # ------------------------------------------------------------------

    def generate_to_files(self, generator: RecursiveVectorGenerator,
                          out_dir: Path | str,
                          fmt_name: str = "adj6",
                          processes: int | None = None, *,
                          retry: RetryPolicy | None = None,
                          faults: FaultPlan | None = None,
                          start_method: str | None = None,
                          progress: Callable[[int], None] | None = None,
                          ) -> DistributedResult:
        """Partition, scatter, and generate part files in parallel.

        ``processes`` caps the real OS processes (defaults to the logical
        worker count; the logical partitioning is unaffected).  ``retry``
        and ``faults`` configure the fault-tolerance layer; when
        ``faults`` is omitted, ``TRILLIONG_FAULT_*`` environment
        variables are honoured (none set means no injection).
        ``start_method`` forces ``fork``/``spawn`` (default: fork where
        available, spawn otherwise).  ``progress`` is called with the
        cumulative edge count as each partition lands.
        """
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        result = DistributedResult()
        with span("partition", workers=self.spec.num_workers) as sp:
            ranges = range_partition(generator, self.spec.num_workers)
        result.partition_seconds = sp.seconds

        tasks = self._build_tasks(generator, out_dir, ranges, fmt_name)
        pool_size = self._pool_size(processes, len(tasks),
                                    self.spec.num_workers)
        with span("scatter", tasks=len(tasks), pool=pool_size) as sp:
            result.workers, result.task_attempts = self._run_supervised(
                tasks, _worker_generate, pool_size, retry, faults,
                fmt_name, start_method,
                on_result=_progress_hook(progress))
        result.elapsed_seconds = sp.seconds + result.partition_seconds
        return result

    def generate_checkpointed(self, generator: RecursiveVectorGenerator,
                              out_dir: Path | str,
                              fmt_name: str = "adj6",
                              blocks_per_chunk: int = 16,
                              processes: int | None = None, *,
                              retry: RetryPolicy | None = None,
                              faults: FaultPlan | None = None,
                              start_method: str | None = None,
                              progress: Callable[[int], None]
                              | None = None,
                              ) -> DistributedResult:
        """Parallel *and* resumable generation: chunked like
        :class:`~repro.dist.checkpoint.CheckpointedRun`, scattered like
        :meth:`generate_to_files`.

        Each finished chunk is recorded in the manifest as it lands, so a
        killed run (even ``SIGKILL``) resumes from the completed chunks
        and the final output is bit-identical to an uninterrupted — or a
        sequential — run of the same configuration.  Returns a
        :class:`DistributedResult` covering the chunks generated by
        *this* call, with ``checkpoint`` holding the full manifest view.
        """
        run = CheckpointedRun(generator, out_dir, fmt_name,
                              blocks_per_chunk)
        pending = run.pending()
        gen_kwargs = self._generator_kwargs(generator)
        chunk_index = {name: i for i, (name, _, _)
                       in enumerate(run.chunk_ranges())}
        tasks = [
            (chunk_index[name], lo, hi, gen_kwargs, fmt_name,
             str(run.out_dir / name))
            for name, lo, hi in pending
        ]
        names = [name for name, _, _ in pending]

        tick = _progress_hook(progress)

        def record(position: int, worker_result: WorkerResult) -> None:
            run.mark_complete(names[position], worker_result.num_edges)
            if tick is not None:
                tick(position, worker_result)

        result = DistributedResult(checkpoint=run)
        pool_size = self._pool_size(processes, len(tasks),
                                    self.spec.num_workers)
        with span("scatter", tasks=len(tasks), pool=pool_size) as sp:
            result.workers, result.task_attempts = self._run_supervised(
                tasks, _worker_chunk, pool_size, retry, faults, fmt_name,
                start_method, on_result=record)
        result.elapsed_seconds = sp.seconds
        return result

    def read_all_edges(self, result: DistributedResult,
                       fmt_name: str = "adj6") -> np.ndarray:
        """Concatenate all part files back into one edge array (for
        verification; paper-scale outputs would stay on disk)."""
        fmt = get_format(fmt_name)
        parts = [fmt.read_edges(p) for p in result.paths]
        parts = [p for p in parts if p.size]
        if not parts:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(parts)
