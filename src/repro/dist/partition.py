"""AVS-level range partitioning — Figure 6's combine/gather/repartition/
scatter pipeline.

TrillionG avoids WES/p's shuffle skew by partitioning *scopes* (source
vertices), not edges, before generation: every worker receives a contiguous
vertex range whose expected edge mass is ~|E|/P.  The four steps:

1. **combine** — each worker takes an equal slice of the vertex range,
   evaluates its scopes' sizes (Theorem 1), and combines consecutive scopes
   into bins of roughly ``|E|/p`` edges;
2. **gather** — bin summaries (start, stop, mass — tiny metadata, not
   edges) travel to the master;
3. **repartition** — the master re-cuts the concatenated bins into exactly
   ``p`` contiguous ranges of nearly equal mass;
4. **scatter** — each worker receives its range and generates it.

Ranges are aligned to the generator's randomness blocks so that the
partitioned run reproduces the exact same graph as a sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..contracts import check_partition_cover
from ..core.generator import RecursiveVectorGenerator

__all__ = ["Bin", "combine", "repartition", "range_partition"]


@dataclass(frozen=True)
class Bin:
    """A contiguous vertex range with its (expected) edge mass."""

    start: int
    stop: int
    mass: float

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError("empty bin")


def combine(block_masses: np.ndarray, block_size: int, start_vertex: int,
            target_mass: float) -> list[Bin]:
    """Combine consecutive blocks into bins of ~``target_mass`` edges.

    ``block_masses[i]`` is the edge mass of the block starting at
    ``start_vertex + i * block_size``.  The final bin is usually lighter,
    as the paper notes.
    """
    bins: list[Bin] = []
    acc = 0.0
    bin_start = start_vertex
    cursor = start_vertex
    for mass in block_masses:
        acc += float(mass)
        cursor += block_size
        if acc >= target_mass:
            bins.append(Bin(bin_start, cursor, acc))
            bin_start = cursor
            acc = 0.0
    if cursor > bin_start:
        bins.append(Bin(bin_start, cursor, acc))
    return bins


def repartition(bins: list[Bin], num_workers: int) -> list[Bin]:
    """Master-side re-cut of gathered bins into ``num_workers`` contiguous
    ranges of nearly equal mass (bins are atomic units, so the cut is at
    bin granularity)."""
    if not bins:
        raise ValueError("no bins to repartition")
    remaining = sum(b.mass for b in bins)
    out: list[Bin] = []
    acc = 0.0
    start = bins[0].start
    for b in bins:
        acc += b.mass
        # Adaptive target: spread what is left evenly over the workers
        # still unassigned, so an oversized early bin (the hub) does not
        # starve the tail ranges.
        workers_left = num_workers - len(out)
        if workers_left > 1 and acc >= remaining / workers_left:
            out.append(Bin(start, b.stop, acc))
            remaining -= acc
            start = b.stop
            acc = 0.0
    if start < bins[-1].stop:
        out.append(Bin(start, bins[-1].stop, acc))
    return out


def range_partition(generator: RecursiveVectorGenerator,
                    num_workers: int) -> list[Bin]:
    """Run the full Figure 6 pipeline for an AVS generator.

    Returns ``<= num_workers`` block-aligned vertex ranges whose realized
    edge masses are nearly equal.  Uses the generator's own Theorem 1 draws
    (which are deterministic per block), so the partition is exact with
    respect to the graph that will actually be generated.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    n = generator.num_vertices
    block_size = generator.block_size
    num_blocks = (n + block_size - 1) // block_size
    total_edges = generator.num_edges
    # Step 1: combine, with each logical worker scanning an equal slice of
    # the block grid.
    blocks_per_worker = max(num_blocks // num_workers, 1)
    all_bins: list[Bin] = []
    # Bins 8x finer than the final per-worker target give the master enough
    # granularity to cut balanced ranges (bins stay atomic in step 3).
    bin_target = total_edges / num_workers / 8
    for w_start in range(0, num_blocks, blocks_per_worker):
        w_stop = min(w_start + blocks_per_worker, num_blocks)
        masses = np.array([
            float(generator.block_degrees(b).sum())
            for b in range(w_start, w_stop)])
        # Step 2 (gather) is implicit: bins are tiny metadata.
        all_bins.extend(combine(masses, block_size,
                                w_start * block_size, bin_target))
    # Fix the final bin of the grid to end exactly at |V|.
    last = all_bins[-1]
    if last.stop > n:
        all_bins[-1] = Bin(last.start, n, last.mass)
    # Step 3: repartition on the master.
    ranges = repartition(all_bins, num_workers)
    # Section 5's determinism argument needs the ranges to tile [0, |V|)
    # exactly: a gap drops scopes, an overlap generates them twice.
    check_partition_cover(ranges, 0, n)
    # Step 4 (scatter) is the caller handing ranges to workers.
    return ranges
