"""Deprecated alias: the hash shuffle lives in
:mod:`repro.util.shuffle` (the ``util`` bottom layer) since the
layering cleanup.  Nothing in-repo imports this module any more — the
reprolint project model proves it — so it now exists only to keep old
out-of-tree callers limping along, loudly.
"""

from __future__ import annotations

import warnings

from ..util.shuffle import hash_partition, mix64, partition_sizes

__all__ = ["mix64", "hash_partition", "partition_sizes"]

warnings.warn(
    "repro.dist.shuffle is deprecated; import from repro.util.shuffle "
    "instead",
    DeprecationWarning, stacklevel=2)
