"""Backward-compatible alias: the hash shuffle moved to
:mod:`repro.util.shuffle` so the ``models`` layer can use it without
importing ``dist`` (reprolint's layering rule RPL201)."""

from __future__ import annotations

from ..util.shuffle import hash_partition, mix64, partition_sizes

__all__ = ["mix64", "hash_partition", "partition_sizes"]
