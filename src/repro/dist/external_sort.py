"""Deprecated alias: the external sort lives in
:mod:`repro.util.external_sort` (the ``util`` bottom layer) since the
layering cleanup.  Nothing in-repo imports this module any more — the
reprolint project model proves it — so it now exists only to keep old
out-of-tree callers limping along, loudly.
"""

from __future__ import annotations

import warnings

from ..util.external_sort import (external_sort_unique, merge_sorted_runs,
                                  write_run)

__all__ = ["write_run", "external_sort_unique", "merge_sorted_runs"]

warnings.warn(
    "repro.dist.external_sort is deprecated; import from "
    "repro.util.external_sort instead",
    DeprecationWarning, stacklevel=2)
