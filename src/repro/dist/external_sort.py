"""Backward-compatible alias: the external sort moved to
:mod:`repro.util.external_sort` so the ``models`` layer can use it
without importing ``dist`` (reprolint's layering rule RPL201)."""

from __future__ import annotations

from ..util.external_sort import (external_sort_unique, merge_sorted_runs,
                                  write_run)

__all__ = ["write_run", "external_sort_unique", "merge_sorted_runs"]
