"""Deterministic random-stream management.

Every generator in this library is seeded.  Scopes (and distributed
workers) get independent streams derived from ``(seed, label...)`` via
:class:`numpy.random.SeedSequence`, which guarantees:

- the same ``seed`` reproduces the same graph bit-for-bit,
- results do not depend on how scopes are partitioned across workers
  (each scope's stream is keyed by the scope id, not the worker id),
- streams are statistically independent.

Key shapes
----------
:func:`stream` and :func:`derive_seed` key their ``SeedSequence`` as the
entropy list ``[seed, *labels]`` — the label path *is* the key.
:func:`spawn_streams` uses a **different** shape: children come from
``SeedSequence([seed]).spawn(count)``, which keys each child by numpy's
internal ``spawn_key`` mechanism, *not* by appending the child index to
the entropy list.  Consequently ``spawn_streams(seed, n)[i]`` and
``stream(seed, i)`` are unrelated streams; the two families are
disjoint by construction and must never be substituted for one another.
The golden-digest tests in ``tests/core/test_rng_golden.py`` freeze
both schemes.

With ``TRILLIONG_SANITIZE=1`` every derivation is recorded in the
:mod:`repro.sanitize` ledger and returned generators are wrapped so
draws are traced too; off-mode pays one boolean check per derivation.
"""

from __future__ import annotations

import numpy as np

from ..sanitize import record_derivation, sanitize_enabled, trace_stream

__all__ = ["stream", "spawn_streams", "derive_seed"]


def stream(seed: int, *labels: int) -> np.random.Generator:
    """Return an independent generator keyed by ``seed`` and label path.

    ``stream(seed, scope_id)`` is the per-scope stream used during edge
    generation; ``stream(seed)`` is the root stream.  The underlying
    key is ``SeedSequence([seed, *labels])`` — see the module docstring
    for how this differs from :func:`spawn_streams`.
    """
    gen = np.random.default_rng(np.random.SeedSequence([seed, *labels]))
    if sanitize_enabled():
        return trace_stream(gen, "stream", seed, labels)
    return gen


def spawn_streams(seed: int, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child streams from ``seed``.

    Children are keyed by ``SeedSequence([seed])`` plus numpy's
    ``spawn_key`` — a different key shape from :func:`stream`, so
    ``spawn_streams(seed, n)[i]`` is **not** ``stream(seed, i)``.
    """
    children = np.random.SeedSequence([seed]).spawn(count)
    gens = [np.random.default_rng(child) for child in children]
    if sanitize_enabled():
        return [trace_stream(gen, "spawn", seed, (i,))
                for i, gen in enumerate(gens)]
    return gens


def derive_seed(seed: int, *labels: int) -> int:
    """Derive a 63-bit integer sub-seed, for handing to a subprocess.

    Keyed exactly like :func:`stream` (``SeedSequence([seed, *labels])``)
    so a worker re-deriving streams from the sub-seed stays on the same
    entropy tree.
    """
    if sanitize_enabled():
        record_derivation("derive_seed", seed, labels)
    seq = np.random.SeedSequence([seed, *labels])
    return int(seq.generate_state(1, np.uint64)[0] >> np.uint64(1))
