"""Deterministic random-stream management.

Every generator in this library is seeded.  Scopes (and distributed
workers) get independent streams derived from ``(seed, label...)`` via
:class:`numpy.random.SeedSequence`, which guarantees:

- the same ``seed`` reproduces the same graph bit-for-bit,
- results do not depend on how scopes are partitioned across workers
  (each scope's stream is keyed by the scope id, not the worker id),
- streams are statistically independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stream", "spawn_streams", "derive_seed"]


def stream(seed: int, *labels: int) -> np.random.Generator:
    """Return an independent generator keyed by ``seed`` and label path.

    ``stream(seed, scope_id)`` is the per-scope stream used during edge
    generation; ``stream(seed)`` is the root stream.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, *labels]))


def spawn_streams(seed: int, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` independent child streams from ``seed``."""
    children = np.random.SeedSequence([seed]).spawn(count)
    return [np.random.default_rng(child) for child in children]


def derive_seed(seed: int, *labels: int) -> int:
    """Derive a 63-bit integer sub-seed, for handing to a subprocess."""
    seq = np.random.SeedSequence([seed, *labels])
    return int(seq.generate_state(1, np.uint64)[0] >> np.uint64(1))
