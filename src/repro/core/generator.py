"""The AVS (A Vertex Scope) generator — the recursive vector model engine.

This is the core of TrillionG (Sections 4-5): for each source vertex ``u``
it draws the scope size ``d+(u)`` (Theorem 1), builds ``RecVec`` (Lemma 2 /
Lemma 8), and samples that many *distinct* destinations (Theorem 2,
Algorithm 5), requiring only ``O(dmax)`` working memory.

Engines
-------
``reference``
    Paper-faithful per-edge Python loop (Algorithms 4-5), instrumented with
    recursion/draw counters and the three Idea toggles — the engine behind
    the Figure 13 ablation.
``vectorized``
    The same Algorithm 5 translation loop, executed batched in numpy over a
    block of sources (row-wise searchsorted).  Identical stochastic process.
``bitwise``
    Exploits the bit-factorization of ``P(v|u)`` (see
    :mod:`repro.core.probability`): destination bits are independent
    Bernoulli draws.  Distributionally identical and fast in numpy.
``alias``
    The linear-work kernel (Hübschle-Schneider & Sanders): Vose alias
    tables over *bundles* of recursion-path prefixes draw the top
    ``bundle_depth`` destination bits in O(1), and the remaining low
    bits are filled by the vectorized bit-peel — O(1 + (log|V|)/b) per
    edge instead of O(log|V|).  See :mod:`repro.core.alias` and
    ``docs/kernel.md``.

Each engine is deterministic per ``(params, seed)`` but the engines are
**not** byte-identical to one another — they consume their streams in
different shapes.  Golden digests per backend are frozen in
``tests/core/test_rng_golden.py``.

Determinism
-----------
Randomness is keyed by ``(seed, tag, block_index)`` where blocks are fixed
``block_size``-aligned ranges of source vertices, so the generated graph is
a pure function of the configuration — independent of how many workers
generate it or how the vertex range is partitioned.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import ConfigurationError, GenerationError
from ..telemetry import RECURSION_BUCKETS, Stopwatch, registry
from .alias import build_alias_table, bundle_pmf
from .process import EdgeProcess, make_process
from .rng import stream
from .scope import sample_scope_sizes
from .seed import GRAPH500, SeedMatrix

__all__ = [
    "IdeaToggles",
    "GenerationStats",
    "RecursiveVectorGenerator",
    "AdjacencyBlock",
]

# Stream tags: keep distinct so no two purposes share a stream.
_TAG_NOISE = 101
_TAG_DEGREE = 102
_TAG_EDGE = 103

_ENGINES = ("vectorized", "bitwise", "alias", "reference")
#: User-facing destination-sampler names -> internal engine names.
_SAMPLER_ENGINES = {"recvec": "vectorized", "bitwise": "bitwise",
                    "alias": "alias"}
_MAX_TOPUP_ROUNDS = 200
_MAX_BUNDLE_DEPTH = 24


@dataclass(frozen=True)
class IdeaToggles:
    """The three performance ideas of Section 4.3, individually togglable
    for the Figure 13 ablation.  All three default to on (full TrillionG).

    - ``reuse_recvec`` (Idea #1): build RecVec once per scope instead of
      once per edge.
    - ``reduce_recursions`` (Idea #2): recurse once per 1-bit of the
      destination (Theorem 2) instead of once per level (RMAT-style).
    - ``single_random`` (Idea #3): draw one uniform per edge and translate
      it, instead of one uniform per recursion step.
    """

    reuse_recvec: bool = True
    reduce_recursions: bool = True
    single_random: bool = True

    @classmethod
    def all_off(cls) -> "IdeaToggles":
        return cls(False, False, False)


@dataclass
class GenerationStats:
    """Counters accumulated while generating (reference engine counts
    recursions and draws; all engines count edges and duplicates)."""

    edges: int = 0
    duplicates_discarded: int = 0
    recursion_steps: int = 0
    random_draws: int = 0
    recvec_builds: int = 0
    max_scope_size: int = 0

    def merge(self, other: "GenerationStats") -> None:
        self.edges += other.edges
        self.duplicates_discarded += other.duplicates_discarded
        self.recursion_steps += other.recursion_steps
        self.random_draws += other.random_draws
        self.recvec_builds += other.recvec_builds
        self.max_scope_size = max(self.max_scope_size, other.max_scope_size)


@dataclass
class AdjacencyBlock:
    """One generated block: CSR-like triplet over ``block_size`` sources.

    ``destinations[offsets[j]:offsets[j+1]]`` are the (sorted, distinct)
    out-neighbours of ``sources[j]``.
    """

    sources: np.ndarray       # (n,) vertex ids
    offsets: np.ndarray       # (n+1,) int64 prefix sums of degrees
    destinations: np.ndarray  # (total,) int64

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    @property
    def num_edges(self) -> int:
        return int(self.offsets[-1])

    def iter_adjacency(self) -> Iterator[tuple[int, np.ndarray]]:
        for j, u in enumerate(self.sources):
            yield int(u), self.destinations[self.offsets[j]:
                                            self.offsets[j + 1]]

    def edge_array(self) -> np.ndarray:
        """Materialize as an ``(m, 2)`` edge array."""
        src = np.repeat(self.sources.astype(np.int64), self.degrees)
        return np.column_stack([src, self.destinations])


class RecursiveVectorGenerator:
    """TrillionG's per-scope generator over a range of source vertices.

    Parameters
    ----------
    scale:
        ``log2(|V|)``.
    edge_factor:
        ``|E| / |V|`` (Graph500 default 16); overridden by ``num_edges``.
    seed_matrix:
        2x2 seed; defaults to the Graph500 standard matrix.
    num_edges:
        Explicit ``|E|`` target (expected value; the realized count is
        stochastic per Theorem 1).
    noise:
        NSKG noise parameter ``N`` (0 disables noise).
    direction:
        ``"out"`` for AVS-O (scopes are rows; yields out-adjacency) or
        ``"in"`` for AVS-I (scopes are columns; yields in-adjacency).
    engine:
        ``"vectorized"`` (default), ``"bitwise"``, ``"alias"``, or
        ``"reference"``.
    sampler:
        Destination-sampler name — the user-facing spelling of the
        batched backends: ``"recvec"`` (-> ``vectorized``),
        ``"bitwise"``, or ``"alias"``.  Takes precedence over
        ``engine`` when given.
    ideas:
        Idea toggles (reference engine only; the batched engines embody all
        three ideas by construction).
    dedup:
        Eliminate repeat edges within each scope and top up to the drawn
        scope size (Algorithm 2's set semantics).  Default True.
    degree_method:
        Theorem 1 approximation, see
        :func:`repro.core.scope.sample_scope_sizes`.
    seed:
        Master random seed.
    block_size:
        Number of consecutive sources generated per batch; randomness is
        keyed per block, so this also fixes the determinism granularity.
    bundle_depth:
        Alias backend only: number of top destination bits drawn per
        alias-table gather (table size ``2**bundle_depth``; effective
        depth is capped at ``scale``).  Larger bundles mean fewer fill
        draws but exponentially bigger tables — see ``docs/kernel.md``
        for the tradeoff.  Like ``block_size``, it is part of the
        determinism key for the alias backend.
    """

    def __init__(self, scale: int, edge_factor: int = 16,
                 seed_matrix: SeedMatrix | None = None, *,
                 num_edges: int | None = None,
                 noise: float = 0.0,
                 direction: str = "out",
                 engine: str = "vectorized",
                 sampler: str | None = None,
                 ideas: IdeaToggles | None = None,
                 dedup: bool = True,
                 degree_method: str = "normal",
                 seed: int = 0,
                 block_size: int = 4096,
                 bundle_depth: int = 8) -> None:
        if scale < 1:
            raise ConfigurationError("scale must be >= 1")
        if scale > 56:
            raise ConfigurationError(
                "scale > 56 would overflow int64 destination packing")
        if direction not in ("out", "in"):
            raise ConfigurationError("direction must be 'out' or 'in'")
        if sampler is not None:
            if sampler not in _SAMPLER_ENGINES:
                raise ConfigurationError(
                    f"unknown sampler {sampler!r}; expected one of "
                    f"{tuple(_SAMPLER_ENGINES)}")
            engine = _SAMPLER_ENGINES[sampler]
        if engine not in _ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {_ENGINES}")
        if not 1 <= bundle_depth <= _MAX_BUNDLE_DEPTH:
            raise ConfigurationError(
                f"bundle_depth must be in [1, {_MAX_BUNDLE_DEPTH}], "
                f"got {bundle_depth}")
        if block_size < 1:
            raise ConfigurationError("block_size must be positive")
        self.scale = scale
        self.num_vertices = 1 << scale
        self.num_edges = (num_edges if num_edges is not None
                          else edge_factor * self.num_vertices)
        if self.num_edges < 1:
            raise ConfigurationError("num_edges must be positive")
        base = seed_matrix if seed_matrix is not None else GRAPH500
        self.seed_matrix = base
        self.direction = direction
        matrix = base if direction == "out" else base.transpose()
        self.engine = engine
        self.ideas = ideas if ideas is not None else IdeaToggles()
        self.dedup = dedup
        self.degree_method = degree_method
        self.seed = seed
        self.noise = noise
        self.block_size = block_size
        self.bundle_depth = bundle_depth
        # Effective bundle depth: a bundle cannot cover more levels than
        # the address has bits.
        self._bundle_levels = min(bundle_depth, scale)
        # Alias tables keyed by the source's top-bundle_levels bit
        # pattern, cached across blocks (pure function of the process).
        self._alias_tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.process: EdgeProcess = make_process(
            matrix, scale, noise, stream(seed, _TAG_NOISE))
        self.stats = GenerationStats()

    # ------------------------------------------------------------------
    # Degree (scope size) sampling — Theorem 1
    # ------------------------------------------------------------------

    def block_degrees(self, block_index: int) -> np.ndarray:
        """Scope sizes for every source in block ``block_index``."""
        sources = self._block_sources(block_index)
        probs = self.process.row_probabilities(sources)
        rng = stream(self.seed, _TAG_DEGREE, block_index)
        # A scope of distinct edges cannot exceed its |V| cells; without
        # dedup, repeats are allowed and no cap applies.
        max_size = self.num_vertices if self.dedup else None
        return sample_scope_sizes(probs, self.num_edges, rng,
                                  method=self.degree_method,
                                  max_size=max_size)

    def degrees(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Scope sizes for sources in ``[start, stop)`` (out-degrees for
        AVS-O, in-degrees for AVS-I)."""
        start, stop = self._check_range(start, stop)
        if start == stop:
            return np.empty(0, np.int64)
        chunks = []
        for block in range(start // self.block_size,
                           (stop - 1) // self.block_size + 1):
            sizes = self.block_degrees(block)
            lo = max(start - block * self.block_size, 0)
            hi = min(stop - block * self.block_size, self.block_size)
            chunks.append(sizes[lo:hi])
        return np.concatenate(chunks) if chunks else np.empty(0, np.int64)

    # ------------------------------------------------------------------
    # Block generation
    # ------------------------------------------------------------------

    def generate_block(self, block_index: int) -> AdjacencyBlock:
        """Generate all scopes of one block (Algorithm 4, batched)."""
        sources = self._block_sources(block_index)
        degrees = self.block_degrees(block_index)
        rng = stream(self.seed, _TAG_EDGE, block_index)
        before = (self.stats.random_draws, self.stats.recvec_builds,
                  self.stats.duplicates_discarded)
        if self.engine == "reference":
            block = self._generate_block_reference(sources, degrees, rng)
        else:
            block = self._generate_block_batched(sources, degrees, rng)
        self.stats.edges += block.num_edges
        if degrees.size:
            self.stats.max_scope_size = max(self.stats.max_scope_size,
                                            int(degrees.max()))
        self._record_block_metrics(block, degrees, before)
        return block

    def _record_block_metrics(self, block: AdjacencyBlock,
                              degrees: np.ndarray,
                              before: tuple[int, int, int]) -> None:
        """Publish per-block telemetry (no-op when telemetry is off).

        Aggregation is vectorized per block — popcounts and bincounts over
        arrays, then a handful of ``observe_bulk`` calls — so the cost is
        O(block) numpy work, never a per-edge Python loop.  Nothing here
        touches the RNG streams, so generated bytes are identical with
        telemetry on or off.
        """
        reg = registry()
        if not reg.enabled:
            return
        draws0, builds0, dups0 = before
        stats = self.stats
        draws = stats.random_draws - draws0
        builds = stats.recvec_builds - builds0
        reg.counter("generator.blocks").inc()
        reg.counter("generator.edges").inc(block.num_edges)
        reg.counter("generator.duplicates_discarded").inc(
            stats.duplicates_discarded - dups0)
        reg.counter("generator.random_draws").inc(draws)
        reg.counter("generator.recvec_builds").inc(builds)
        if self.engine in ("vectorized", "reference"):
            # Idea #1 effectiveness: every draw beyond the first per scope
            # reuses an already-built RecVec.  Builds that served no draw
            # (zero-degree scopes) appear only in recvec_builds, keeping
            # hits + misses == random_draws exact.
            hits = max(draws - builds, 0)
            reg.counter("generator.recvec_reuse_hits").inc(hits)
            reg.counter("generator.recvec_reuse_misses").inc(draws - hits)
        if block.destinations.size:
            if self.engine == "alias":
                # The bundle gather resolves the top bundle_levels bits
                # in one step; only fill-region 1-bits still cost a
                # translation each, so the per-edge count collapses to
                # 1 + popcount of the low bits.
                fill = self.scale - self._bundle_levels
                low = block.destinations & np.int64((1 << fill) - 1)
                pops = _popcount64(low) + 1
            else:
                # Theorem 2: Algorithm 5 recurses once per 1-bit of the
                # destination, so the per-edge recursion count is
                # popcount(v).
                pops = _popcount64(block.destinations)
            counts = np.bincount(pops)
            values = np.nonzero(counts)[0]
            reg.histogram("generator.recursions_per_edge",
                          bounds=RECURSION_BUCKETS).observe_bulk(
                values, counts[values])
        if degrees.size:
            values, counts = np.unique(degrees, return_counts=True)
            reg.histogram("generator.scope_size").observe_bulk(
                values, counts)

    def iter_blocks(self, start: int = 0,
                    stop: int | None = None) -> Iterator[AdjacencyBlock]:
        """Yield :class:`AdjacencyBlock` objects covering ``[start, stop)``.

        Partial first/last blocks are generated whole (determinism is per
        block) and then sliced to the requested range.
        """
        start, stop = self._check_range(start, stop)
        if start == stop:
            return
        for block_index in range(start // self.block_size,
                                 (stop - 1) // self.block_size + 1):
            block = self.generate_block(block_index)
            base = block_index * self.block_size
            lo = max(start - base, 0)
            hi = min(stop - base, len(block.sources))
            if lo == 0 and hi == len(block.sources):
                yield block
            else:
                offs = block.offsets
                dests = block.destinations[offs[lo]:offs[hi]]
                yield AdjacencyBlock(block.sources[lo:hi],
                                     offs[lo:hi + 1] - offs[lo],
                                     dests)

    def iter_adjacency(self, start: int = 0, stop: int | None = None
                       ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(vertex, neighbours)`` pairs over ``[start, stop)``.

        For AVS-O the pair is ``(source, out-neighbours)``; for AVS-I it is
        ``(destination, in-neighbours)``.
        """
        for block in self.iter_blocks(start, stop):
            yield from block.iter_adjacency()

    def edges(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Materialize edges for scopes in ``[start, stop)`` as ``(m, 2)``
        ``(source, destination)`` rows.  AVS-I output is flipped back to
        (source, destination) order."""
        parts = [block.edge_array() for block in self.iter_blocks(start, stop)]
        if parts:
            out = np.concatenate(parts)
        else:
            out = np.empty((0, 2), dtype=np.int64)
        if self.direction == "in":
            out = out[:, ::-1]
        return out

    # ------------------------------------------------------------------
    # Batched engines (vectorized / bitwise)
    # ------------------------------------------------------------------

    def _generate_block_batched(self, sources: np.ndarray,
                                degrees: np.ndarray,
                                rng: np.random.Generator) -> AdjacencyBlock:
        saturated = self._saturated_mask(degrees)
        if saturated.any():
            return self._generate_block_with_saturated(sources, degrees,
                                                       saturated, rng)
        total = int(degrees.sum())
        rows = np.repeat(np.arange(sources.size, dtype=np.int64), degrees)
        sampler: _DestinationSampler
        if self.engine == "vectorized":
            recvecs = self.process.build_recvecs(sources)
            self.stats.recvec_builds += sources.size
            sampler = _RecVecSampler(recvecs)
        elif self.engine == "alias":
            sampler = self._build_alias_sampler(sources)
        else:
            bit_probs = self.process.bit_probabilities(sources)
            sampler = _BitwiseSampler(bit_probs, self.scale)
        dests = sampler.sample(rows, rng)
        self.stats.random_draws += total * sampler.draws_per_edge
        if not self.dedup:
            order = np.argsort(rows * np.int64(self.num_vertices) + dests,
                               kind="stable")
            offsets = np.zeros(sources.size + 1, dtype=np.int64)
            np.cumsum(degrees, out=offsets[1:])
            return AdjacencyBlock(sources, offsets, dests[order])
        keys, dups = self._dedup_topup(rows, dests, degrees, sampler, rng,
                                       sources)
        self.stats.duplicates_discarded += dups
        rows_final = keys // self.num_vertices
        dests_final = keys % self.num_vertices
        counts = np.bincount(rows_final, minlength=sources.size)
        offsets = np.zeros(sources.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return AdjacencyBlock(sources, offsets, dests_final)

    def _dedup_topup(self, rows: np.ndarray, dests: np.ndarray,
                     degrees: np.ndarray, sampler: "_DestinationSampler",
                     rng: np.random.Generator,
                     sources: np.ndarray) -> tuple[np.ndarray, int]:
        """Per-scope duplicate elimination with stochastic top-up.

        Implements Algorithm 2's ``while count(edgeSet) <= |S|`` loop for a
        whole block at once: duplicates are dropped (set union), shortfalls
        are refilled by drawing again, until every scope reaches its size.
        Scopes whose rejection top-up stalls (very skewed conditional
        distributions turn the last few distinct draws into a coupon-
        collector problem) are finished by the exact PPSWOR sampler.
        Returns the sorted packed keys ``row * |V| + dest`` and the number
        of duplicates discarded.
        """
        span = np.int64(self.num_vertices)
        keys = _sorted_unique(np.sort(rows * span + dests))
        duplicates = rows.size - keys.size
        for _ in range(_MAX_TOPUP_ROUNDS):
            have = np.bincount((keys // span).astype(np.int64),
                               minlength=degrees.size)
            shortfall = degrees - have
            if not (shortfall > 0).any():
                return keys, duplicates
            refill_rows = np.repeat(
                np.arange(degrees.size, dtype=np.int64),
                np.maximum(shortfall, 0))
            new_dests = sampler.sample(refill_rows, rng)
            candidates = _sorted_unique(np.sort(refill_rows * span
                                                + new_dests))
            # Drop candidates already present (both arrays are sorted).
            if keys.size:
                pos = np.searchsorted(keys, candidates)
                pos = np.minimum(pos, keys.size - 1)
                fresh = candidates[keys[pos] != candidates]
            else:
                fresh = candidates
            duplicates += refill_rows.size - fresh.size
            if fresh.size == 0:
                break
            keys = np.sort(np.concatenate([keys, fresh]))
        # Rejection stalled (or rounds exhausted): finish the remaining
        # scopes exactly.
        have = np.bincount((keys // span).astype(np.int64),
                           minlength=degrees.size)
        short_rows = np.nonzero(degrees - have > 0)[0]
        for row in short_rows:
            exact = self._sample_scope_exact(int(sources[row]),
                                             int(degrees[row]), rng)
            keep = keys[keys // span != row]
            keys = np.sort(np.concatenate([keep, row * span + exact]))
        return keys, duplicates

    def _build_alias_sampler(self, sources: np.ndarray) -> "_AliasSampler":
        """Gather (building and caching as needed) the per-pattern alias
        tables covering ``sources`` — see :mod:`repro.core.alias`.

        The table for a source depends only on its top ``bundle_levels``
        bits, so consecutive sources share tables: a 4096-source block
        touches at most two patterns once ``scale - bundle_depth >= 12``.
        Tables are cached on the generator for the lifetime of the run.
        """
        b = self._bundle_levels
        fill = self.scale - b
        codes = (sources.astype(np.uint64)
                 >> np.uint64(fill)).astype(np.int64)
        patterns, pattern_rows = np.unique(codes, return_inverse=True)
        prob = np.empty((patterns.size, 1 << b), dtype=np.float64)
        alias = np.empty((patterns.size, 1 << b), dtype=np.int64)
        built = 0
        watch = Stopwatch()
        with watch:
            for j, code in enumerate(patterns):
                cached = self._alias_tables.get(int(code))
                if cached is None:
                    representative = np.array([int(code) << fill],
                                              dtype=np.uint64)
                    level_probs = self.process.bit_probabilities(
                        representative)[0][fill:]
                    cached = build_alias_table(bundle_pmf(level_probs))
                    self._alias_tables[int(code)] = cached
                    built += 1
                prob[j], alias[j] = cached
        reg = registry()
        if reg.enabled and built:
            reg.counter("gen.alias.tables_built").inc(built)
            reg.counter("gen.alias.build_seconds").inc(watch.seconds)
        bit_probs = self.process.bit_probabilities(sources)
        return _AliasSampler(bit_probs, fill, pattern_rows.astype(np.int64),
                             prob, alias)

    # ------------------------------------------------------------------
    # Saturated scopes (small-scale hubs whose size approaches |V|)
    # ------------------------------------------------------------------

    def _saturated_mask(self, degrees: np.ndarray) -> np.ndarray:
        """Scopes whose rejection-based top-up would coupon-collect.

        When a drawn scope size exceeds ~1/4 of the scope area (possible
        only at small scales, where the hub's expected degree ``|E| * P(u->)``
        can reach ``|V|``), collecting the last distinct destinations by
        redrawing takes unboundedly long because the tail cells have
        vanishing probability.  Those scopes are sampled exactly instead.
        """
        if not self.dedup:
            return np.zeros(degrees.shape, dtype=bool)
        return degrees > (self.num_vertices >> 2)

    def _sample_scope_exact(self, u: int, size: int,
                            rng: np.random.Generator) -> np.ndarray:
        """Exact without-replacement sample of ``size`` destinations.

        Materializes the row PMF (product of per-bit Bernoulli factors) and
        takes a PPSWOR sample via the Gumbel top-k trick — distributionally
        identical to the paper's draw-until-distinct loop, but O(|V| log |V|)
        instead of coupon-collector time.  Only reachable at small scales,
        so the O(|V|) row never exceeds a few MB.
        """
        if self.scale > 26:
            raise GenerationError(
                "saturated scope at a scale too large to materialize; "
                "this cannot occur for edge factors <= |V|^(1/4)")
        bit_probs = self.process.bit_probabilities(
            np.array([u], dtype=np.uint64))[0]
        pmf = np.array([1.0])
        for x in range(self.scale):
            p = bit_probs[x]
            pmf = np.concatenate([pmf * (1.0 - p), pmf * p])
        size = min(size, int(np.count_nonzero(pmf)))
        with np.errstate(divide="ignore"):
            scores = np.log(pmf) - np.log(-np.log(rng.random(pmf.size)))
        top = np.argpartition(scores, pmf.size - size)[pmf.size - size:]
        return np.sort(top).astype(np.int64)

    def _generate_block_with_saturated(self, sources: np.ndarray,
                                       degrees: np.ndarray,
                                       saturated: np.ndarray,
                                       rng: np.random.Generator
                                       ) -> AdjacencyBlock:
        """Split a block into normal scopes (batched path) and saturated
        scopes (exact path), then merge back in source order."""
        light_degrees = np.where(saturated, 0, degrees)
        light = self._generate_block_batched(sources, light_degrees, rng)
        per_source = [light.destinations[light.offsets[j]:
                                         light.offsets[j + 1]]
                      for j in range(sources.size)]
        for j in np.nonzero(saturated)[0]:
            per_source[j] = self._sample_scope_exact(int(sources[j]),
                                                     int(degrees[j]), rng)
        counts = np.array([d.size for d in per_source], dtype=np.int64)
        offsets = np.zeros(sources.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        dest = (np.concatenate(per_source) if per_source
                else np.empty(0, np.int64))
        return AdjacencyBlock(sources, offsets, dest)

    # ------------------------------------------------------------------
    # Reference engine (Algorithms 4-5, instrumented, idea toggles)
    # ------------------------------------------------------------------

    def _generate_block_reference(self, sources: np.ndarray,
                                  degrees: np.ndarray,
                                  rng: np.random.Generator) -> AdjacencyBlock:
        all_dests: list[np.ndarray] = []
        counts = np.empty(sources.size, dtype=np.int64)
        for j, u in enumerate(sources):
            dests = self._generate_scope_reference(int(u), int(degrees[j]),
                                                   rng)
            counts[j] = dests.size
            all_dests.append(dests)
        offsets = np.zeros(sources.size + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        destinations = (np.concatenate(all_dests) if all_dests
                        else np.empty(0, np.int64))
        return AdjacencyBlock(sources.copy(), offsets, destinations)

    def _generate_scope_reference(self, u: int, size: int,
                                  rng: np.random.Generator) -> np.ndarray:
        """Algorithm 4 for one scope, honoring the Idea toggles."""
        if self.dedup and size > (self.num_vertices >> 2):
            return self._sample_scope_exact(u, size, rng)
        ideas = self.ideas
        stats = self.stats
        recvec = None
        bit_probs = None
        if ideas.reuse_recvec:
            recvec = self.process.build_recvec(u)
            stats.recvec_builds += 1
            if not ideas.reduce_recursions:
                bit_probs = self.process.bit_probabilities(
                    np.array([u], dtype=np.uint64))[0]
        edge_set: set[int] = set()
        attempts = 0
        max_attempts = max(size * _MAX_TOPUP_ROUNDS, _MAX_TOPUP_ROUNDS)
        while len(edge_set) < size:
            if attempts >= max_attempts:
                # Rejection stalled on a very skewed scope; finish exactly
                # (same fallback as the batched engines).
                return self._sample_scope_exact(u, size, rng)
            attempts += 1
            if not ideas.reuse_recvec:
                recvec = self.process.build_recvec(u)
                stats.recvec_builds += 1
                if not ideas.reduce_recursions:
                    bit_probs = self.process.bit_probabilities(
                        np.array([u], dtype=np.uint64))[0]
            if ideas.reduce_recursions:
                v = _sample_destination_alg5(recvec, rng,
                                             ideas.single_random, stats)
            else:
                v = _sample_destination_bitpeel(bit_probs, rng,
                                                ideas.single_random, stats)
            if v in edge_set:
                stats.duplicates_discarded += 1
            else:
                edge_set.add(v)
        return np.array(sorted(edge_set), dtype=np.int64)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _block_sources(self, block_index: int) -> np.ndarray:
        lo = block_index * self.block_size
        hi = min(lo + self.block_size, self.num_vertices)
        if lo >= self.num_vertices:
            raise ValueError(f"block {block_index} is out of range")
        # int64, the AdjacencyBlock ID convention: the bit-twiddling
        # consumers (recvec builds, bit probabilities, alias codes)
        # all re-cast to uint64 themselves.
        return np.arange(lo, hi, dtype=np.int64)

    def _check_range(self, start: int, stop: int | None) -> tuple[int, int]:
        if stop is None:
            stop = self.num_vertices
        if not (0 <= start <= stop <= self.num_vertices):
            raise ValueError(
                f"invalid scope range [{start}, {stop}) for "
                f"|V| = {self.num_vertices}")
        return start, stop


def _popcount64(values: np.ndarray) -> np.ndarray:
    """Per-element popcount of non-negative int64 values."""
    v = values.astype(np.uint64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(v).astype(np.int64)
    # SWAR fallback for numpy < 2.0.
    v = v - ((v >> np.uint64(1)) & np.uint64(0x5555555555555555))
    v = ((v & np.uint64(0x3333333333333333))
         + ((v >> np.uint64(2)) & np.uint64(0x3333333333333333)))
    v = (v + (v >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((v * np.uint64(0x0101010101010101))
            >> np.uint64(56)).astype(np.int64)


def _sorted_unique(sorted_keys: np.ndarray) -> np.ndarray:
    """Deduplicate an already-sorted int array (avoids np.unique's hashing,
    which dominates the profile on repeated top-up rounds)."""
    if sorted_keys.size <= 1:
        return sorted_keys
    keep = np.empty(sorted_keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=keep[1:])
    return sorted_keys[keep]


# ---------------------------------------------------------------------------
# Destination samplers
# ---------------------------------------------------------------------------

class _DestinationSampler:
    """Batched destination sampler over per-source state rows."""

    #: Uniform draws consumed per requested destination (stats bookkeeping).
    draws_per_edge: int = 1

    def sample(self, rows: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class _RecVecSampler(_DestinationSampler):
    """Vectorized Theorem 2 over gathered RecVec rows."""

    def __init__(self, recvecs: np.ndarray) -> None:
        self.recvecs = recvecs

    def sample(self, rows: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        from .recvec import determine_edges_rowwise
        tops = self.recvecs[rows, -1]
        xs = rng.random(rows.size) * tops
        return determine_edges_rowwise(xs, self.recvecs, rows)


class _BitwiseSampler(_DestinationSampler):
    """Independent-bit Bernoulli sampler (see the factorization note in
    :mod:`repro.core.probability`)."""

    def __init__(self, bit_probs: np.ndarray, levels: int) -> None:
        self.bit_probs = bit_probs
        self.levels = levels
        self.draws_per_edge = levels

    def sample(self, rows: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        out = np.zeros(rows.size, dtype=np.int64)
        for x in range(self.levels):
            col = self.bit_probs[:, x]
            # Degenerate levels (seed entries of exactly 0 or 1) force
            # the bit for every source: decide without drawing, so no
            # randomness is consumed and the single-uniform rescale in
            # the reference path can never divide by zero.
            if np.all(col >= 1.0):
                out |= np.int64(1) << x
                continue
            if np.all(col <= 0.0):
                continue
            hits = rng.random(rows.size) < self.bit_probs[rows, x]
            out |= hits.astype(np.int64) << x
        return out


class _AliasSampler(_DestinationSampler):
    """Linear-work bundle sampler (Hübschle-Schneider & Sanders).

    The top ``levels - fill_levels`` destination bits are drawn as one
    prefix bundle from a per-source-pattern Vose alias table (two
    uniforms: slot pick + biased coin); the remaining ``fill_levels``
    low bits are filled by the vectorized bit-peel (one ``(n,
    fill_levels)`` uniform matrix).  Per-edge cost is O(1 +
    fill_levels) regardless of scale.

    The draw order — slot batch, coin batch, then the fill matrix — is
    a frozen part of the determinism contract
    (``tests/core/test_rng_golden.py``); reordering it is a golden
    break for every alias-backend user.
    """

    def __init__(self, bit_probs: np.ndarray, fill_levels: int,
                 pattern_rows: np.ndarray, prob: np.ndarray,
                 alias: np.ndarray) -> None:
        self.bit_probs = bit_probs        # (n_sources, levels)
        self.fill_levels = fill_levels
        self.pattern_rows = pattern_rows  # (n_sources,) -> table row
        self.prob = prob                  # (n_patterns, 2**b)
        self.alias = alias                # (n_patterns, 2**b)
        self.draws_per_edge = 2 + fill_levels

    def sample(self, rows: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        n = rows.size
        size = self.prob.shape[1]
        pat = self.pattern_rows[rows]
        slot_u = rng.random(n)
        coin_u = rng.random(n)
        slots = np.minimum((slot_u * size).astype(np.int64), size - 1)
        keep = coin_u < self.prob[pat, slots]
        prefix = np.where(keep, slots, self.alias[pat, slots])
        out = prefix << np.int64(self.fill_levels)
        if self.fill_levels:
            fill_u = rng.random((n, self.fill_levels))
            hits = fill_u < self.bit_probs[rows, :self.fill_levels]
            weights = np.int64(1) << np.arange(self.fill_levels,
                                               dtype=np.int64)
            out |= hits.astype(np.int64) @ weights
        reg = registry()
        if reg.enabled:
            reg.counter("gen.alias.bundle_draws").inc(n)
            reg.counter("gen.alias.fill_bits").inc(n * self.fill_levels)
        return out


def _sample_destination_alg5(recvec: np.ndarray, rng: np.random.Generator,
                             single_random: bool,
                             stats: GenerationStats) -> int:
    """One destination via Algorithm 5 (Ideas #2 on, #3 togglable)."""
    top = len(recvec) - 1
    x = rng.uniform(0.0, recvec[top])
    stats.random_draws += 1
    v = 0
    last_k = top
    while x >= recvec[0] and last_k > 0:
        k = min(bisect_right(recvec, x) - 1, last_k - 1)
        stats.recursion_steps += 1
        if single_random:
            sigma = (recvec[k + 1] - recvec[k]) / recvec[k]
            x = (x - recvec[k]) / sigma
        else:
            x = rng.uniform(0.0, recvec[k])
            stats.random_draws += 1
        v += 1 << k
        last_k = k
    return v


def _sample_destination_bitpeel(bit_probs: np.ndarray,
                                rng: np.random.Generator,
                                single_random: bool,
                                stats: GenerationStats) -> int:
    """One destination via per-level quadrant selection (Idea #2 off).

    With ``single_random`` the one uniform is repeatedly rescaled through
    the per-level inverse CDF; without it, a fresh uniform decides each
    level (the RMAT-style process).
    """
    levels = bit_probs.size
    x = rng.random() if single_random else 0.0
    if single_random:
        stats.random_draws += 1
    v = 0
    for level in range(levels - 1, -1, -1):
        p = bit_probs[level]
        # Degenerate level (seed entry of exactly 0 or 1): the bit is
        # forced, so consume no randomness and leave x untouched.
        # Without the short-circuit, the single-uniform rescale divides
        # by zero once float rounding pushes x to exactly 1.0 at a
        # p == 0 level ((x - 1.0) / 0.0), and the fresh-uniform path
        # burns a draw deciding a certain event.
        if p >= 1.0:
            v |= 1 << level
            continue
        if p <= 0.0:
            continue
        stats.recursion_steps += 1
        if single_random:
            if x < 1.0 - p:
                bit = 0
                x = x / (1.0 - p)
            else:
                bit = 1
                x = (x - (1.0 - p)) / p
        else:
            bit = 1 if rng.random() < p else 0
            stats.random_draws += 1
        v |= bit << level
    return v
