"""The recursive vector (``RecVec``) model — Section 4 of the paper.

``RecVec`` for a source vertex ``u`` stores the CDF of the destination
distribution at the powers of two::

    RecVec[x] = F_u(2**x) = sum_{v=0}^{2**x - 1} P(u -> v),   0 <= x <= L

where ``L = log2(|V|)``.  It is built in O(L) time via Lemma 2, occupies
O(L) space, and supports inverse-CDF sampling of a destination in
O(ones(v) * log L) time via the scale/translational symmetries (Lemmas 3-4,
Theorem 2, Algorithm 5).

Three search strategies are provided (Table 2):

- :func:`determine_edge` — the paper's Algorithm 5 (binary search on
  RecVec, iterative form);
- :func:`determine_edge_recursive` — literal recursive transcription of
  Algorithm 5 (test reference);
- :func:`determine_edge_cdf` — the naive O(|V|)-space CDF-vector method
  of Section 4.2, with linear or binary search (baseline for Table 2).

High precision: the paper stores RecVec as ``BigDecimal`` to survive
trillion-scale CDF arithmetic; :func:`build_recvec_decimal` provides the
equivalent using :mod:`decimal` with configurable precision.
"""

from __future__ import annotations

import decimal
from bisect import bisect_right
from decimal import Decimal

import numpy as np

from .bits import bits_array
from .probability import edge_probability, row_probability
from .seed import SeedMatrix

__all__ = [
    "build_recvec",
    "build_recvec_naive",
    "build_recvec_decimal",
    "build_recvecs",
    "sigma_from_recvec",
    "scale_symmetry_ratio",
    "determine_edge",
    "determine_edge_recursive",
    "determine_edge_cdf",
    "determine_edges",
    "determine_edges_rowwise",
]


# ---------------------------------------------------------------------------
# Construction (Definition 2 / Lemma 2)
# ---------------------------------------------------------------------------

def build_recvec(seed: SeedMatrix, u: int, levels: int) -> np.ndarray:
    """Build ``RecVec[0..levels]`` for source ``u`` in O(levels) (Lemma 2).

    Uses the recurrence implied by Lemma 2:
    ``RecVec[levels] = P(u->)`` and
    ``RecVec[x] = RecVec[x+1] * K[u[x],0] / (K[u[x],0] + K[u[x],1])``,
    i.e. halving the covered range keeps only the "destination bit = 0"
    branch at level ``x``.
    """
    a, b, c, d = seed.as_tuple()
    q0 = a / (a + b)          # keep-low factor when the source bit is 0
    q1 = c / (c + d)          # keep-low factor when the source bit is 1
    vec = np.empty(levels + 1, dtype=np.float64)
    vec[levels] = row_probability(seed, u, levels)
    for x in range(levels - 1, -1, -1):
        vec[x] = vec[x + 1] * (q1 if (u >> x) & 1 else q0)
    return vec


def build_recvec_naive(seed: SeedMatrix, u: int, levels: int) -> np.ndarray:
    """Definition 2 by brute force: O(|V|) summation of Proposition 1.

    Test support — cross-checks Lemma 2 on small graphs.
    """
    vec = np.empty(levels + 1, dtype=np.float64)
    for x in range(levels + 1):
        vec[x] = sum(
            edge_probability(seed, u, v, levels) for v in range(1 << x))
    return vec


def build_recvec_decimal(seed: SeedMatrix, u: int, levels: int,
                         precision: int = 34) -> list[Decimal]:
    """High-precision RecVec using :mod:`decimal` (paper: ``BigDecimal``).

    ``precision=34`` matches IEEE 754 decimal128's 34 significant digits,
    the type the paper says it "approximately matches".
    """
    ctx = decimal.Context(prec=precision)
    a, b, c, d = (ctx.create_decimal(repr(x)) for x in seed.as_tuple())
    q0 = ctx.divide(a, a + b)
    q1 = ctx.divide(c, c + d)
    ab, cd = a + b, c + d
    ones = int(u).bit_count()
    p_row = ctx.multiply(ctx.power(ab, levels - ones), ctx.power(cd, ones))
    vec: list[Decimal] = [Decimal(0)] * (levels + 1)
    vec[levels] = p_row
    for x in range(levels - 1, -1, -1):
        factor = q1 if (u >> x) & 1 else q0
        vec[x] = ctx.multiply(vec[x + 1], factor)
    return vec


def build_recvecs(seed: SeedMatrix, sources: np.ndarray,
                  levels: int) -> np.ndarray:
    """Vectorized Lemma 2: one RecVec row per source vertex.

    Returns an array of shape ``(len(sources), levels + 1)`` where row ``j``
    is ``RecVec`` for ``sources[j]``.  Runs in O(len(sources) * levels)
    numpy time with no per-vertex Python loop.
    """
    a, b, c, d = seed.as_tuple()
    q0 = a / (a + b)
    q1 = c / (c + d)
    ab, cd = a + b, c + d
    src = np.asarray(sources, dtype=np.uint64)
    ones = bits_array(src).astype(np.int64)
    out = np.empty((src.size, levels + 1), dtype=np.float64)
    out[:, levels] = np.power(ab, levels - ones) * np.power(cd, ones)
    for x in range(levels - 1, -1, -1):
        bit = ((src >> np.uint64(x)) & np.uint64(1)).astype(bool)
        out[:, x] = out[:, x + 1] * np.where(bit, q1, q0)
    return out


# ---------------------------------------------------------------------------
# Symmetries (Lemmas 3-4)
# ---------------------------------------------------------------------------

def scale_symmetry_ratio(seed: SeedMatrix, u: int, k: int) -> float:
    """Lemma 3's constant ratio ``sigma_{u[k]} = K[u[k],1] / K[u[k],0]``:
    the PMF over ``[2^k, 2^{k+1})`` is the PMF over ``[0, 2^k)`` scaled by
    this constant."""
    a, b, c, d = seed.as_tuple()
    return (d / c) if (u >> k) & 1 else (b / a)


def sigma_from_recvec(recvec, k: int) -> float:
    """Algorithm 5's in-place sigma:
    ``(RecVec[k+1] - RecVec[k]) / RecVec[k]``.

    Equals :func:`scale_symmetry_ratio` for the noiseless model (because
    ``F_u(2^{k+1}) = F_u(2^k) * (1 + sigma)`` by Lemma 4 with ``r = R``) and
    remains correct under NSKG noise, where the per-level ratios differ.
    Works for both numpy rows and Decimal lists.
    """
    return (recvec[k + 1] - recvec[k]) / recvec[k]


# ---------------------------------------------------------------------------
# Edge determination (Theorem 2 / Algorithm 5)
# ---------------------------------------------------------------------------

def determine_edge(x, recvec) -> int:
    """Determine the destination vertex for random value ``x`` (Algorithm 5).

    ``x`` must lie in ``[0, RecVec[L])``.  Iterative transcription of the
    paper's tail recursion: while ``x >= RecVec[0]``, find the unique ``k``
    with ``RecVec[k] <= x < RecVec[k+1]`` (binary search), accumulate
    ``2**k``, and translate ``x' = (x - RecVec[k]) / sigma``; when
    ``x < RecVec[0]`` the remaining destination suffix is 0.

    Accepts either a numpy float row or a list of :class:`~decimal.Decimal`.
    """
    top = len(recvec) - 1
    v = 0
    # In exact arithmetic k strictly decreases between iterations; last_k
    # enforces that under floating point so a bit can never be added twice.
    last_k = top
    while x >= recvec[0] and last_k > 0:
        # bisect_right gives the first index whose value exceeds x; the
        # paper's k is one to its left.  Clamp for x == RecVec[top] edge case.
        k = min(bisect_right(recvec, x) - 1, last_k - 1)
        sigma = (recvec[k + 1] - recvec[k]) / recvec[k]
        x = (x - recvec[k]) / sigma
        v += 1 << k
        last_k = k
    return v


def determine_edge_recursive(x, recvec, _last_k: int | None = None) -> int:
    """Literal recursive form of Algorithm 5 (reference for tests).

    Python's recursion limit is ample: the depth is the destination
    popcount, at most ``log2(|V|)``.
    """
    if _last_k is None:
        _last_k = len(recvec) - 1
    if x < recvec[0] or _last_k == 0:
        return 0
    k = min(bisect_right(recvec, x) - 1, _last_k - 1)
    sigma = (recvec[k + 1] - recvec[k]) / recvec[k]
    return (1 << k) + determine_edge_recursive((x - recvec[k]) / sigma,
                                               recvec, k)


def determine_edge_cdf(x: float, cdf: np.ndarray,
                       search: str = "binary") -> int:
    """The naive method of Section 4.2: invert the full CDF vector.

    ``cdf`` has length ``|V| + 1`` with ``cdf[0] = 0`` (see
    :func:`repro.core.probability.brute_force_cdf`).  ``search`` selects the
    Table 2 row: ``"linear"`` (O(|V|)) or ``"binary"`` (O(log |V|)).
    """
    if search == "binary":
        idx = int(np.searchsorted(cdf, x, side="right")) - 1
    elif search == "linear":
        idx = 0
        while idx + 1 < len(cdf) and cdf[idx + 1] <= x:
            idx += 1
    else:
        raise ValueError(f"unknown search strategy: {search!r}")
    return min(idx, len(cdf) - 2)


def determine_edges(xs: np.ndarray, recvec: np.ndarray) -> np.ndarray:
    """Vectorized Algorithm 5 for a batch of random values sharing one
    RecVec (i.e. one source vertex).

    Runs the translation loop simultaneously over all values; each pass
    peels one 1 bit from every still-active value, so the number of passes
    is the maximum destination popcount.
    """
    top = recvec.size - 1
    # sigma[k] for every k, precomputed once (Idea #1 at vector granularity).
    sigmas = (recvec[1:] - recvec[:-1]) / recvec[:-1]
    x = np.asarray(xs, dtype=np.float64).copy()
    v = np.zeros(x.shape, dtype=np.int64)
    last_k = np.full(x.shape, top, dtype=np.int64)
    active = (x >= recvec[0]) & (last_k > 0)
    while active.any():
        xa = x[active]
        k = np.searchsorted(recvec, xa, side="right") - 1
        np.minimum(k, last_k[active] - 1, out=k)
        x[active] = (xa - recvec[k]) / sigmas[k]
        v[active] += np.int64(1) << k.astype(np.int64)
        last_k[active] = k
        active = (x >= recvec[0]) & (last_k > 0)
    return v


def determine_edges_rowwise(xs: np.ndarray, recvecs: np.ndarray,
                            rows: np.ndarray) -> np.ndarray:
    """Vectorized Algorithm 5 where edge ``j`` uses RecVec row ``rows[j]``.

    ``recvecs`` has shape ``(num_sources, L + 1)``; ``rows`` maps each
    random value to its source's row.  The per-row "searchsorted" is done
    by counting, across the L+1 columns, how many RecVec entries are
    ``<= x`` — O(L) vectorized comparisons per pass.
    """
    num_levels = recvecs.shape[1] - 1
    rv = recvecs[rows]                              # (n, L+1) gathered rows
    sigmas = (rv[:, 1:] - rv[:, :-1]) / rv[:, :-1]  # (n, L)
    x = np.asarray(xs, dtype=np.float64).copy()
    v = np.zeros(x.shape, dtype=np.int64)
    last_k = np.full(x.shape, num_levels, dtype=np.int64)
    active = (x >= rv[:, 0]) & (last_k > 0)
    while active.any():
        idx = np.nonzero(active)[0]
        xa = x[idx]
        k = (rv[idx] <= xa[:, None]).sum(axis=1) - 1
        np.minimum(k, last_k[idx] - 1, out=k)
        base = rv[idx, k]
        x[idx] = (xa - base) / sigmas[idx, k]
        v[idx] += np.int64(1) << k.astype(np.int64)
        last_k[idx] = k
        active[idx] = (x[idx] >= rv[idx, 0]) & (k > 0)
    return v
