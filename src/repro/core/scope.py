"""Stochastic scope sizing — Theorem 1.

The size of the scope ``S(u, V)`` (the out-degree of ``u``) is the number of
successes among ``n = |E|`` Bernoulli trials each succeeding with probability
``p = P(u->)``; Theorem 1 approximates the Binomial(n, p) with
``Normal(np, np(1-p))``.  TeG's failure (Figure 8) comes precisely from
replacing this stochastic draw with the deterministic mean, so the sampler
also exposes a ``"deterministic"`` method for that baseline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sample_scope_sizes", "SCOPE_SIZE_METHODS"]

SCOPE_SIZE_METHODS = ("normal", "binomial", "poisson", "deterministic")


def sample_scope_sizes(probabilities: np.ndarray, num_edges: int,
                       rng: np.random.Generator,
                       method: str = "normal",
                       max_size: int | None = None) -> np.ndarray:
    """Draw scope sizes for a batch of scopes.

    Parameters
    ----------
    probabilities:
        ``p_i = P(u_i ->)`` for each scope (Lemma 1, or Lemma 7 under
        noise).
    num_edges:
        ``n = |E|``, the number of Bernoulli trials.
    rng:
        Source of randomness (one stream per worker keeps generation
        deterministic and partition-independent).
    method:
        - ``"normal"`` — Theorem 1's Normal(np, np(1-p)) approximation,
          rounded to the nearest integer (the paper's method);
        - ``"binomial"`` — exact Binomial(n, p) (used by tests to bound the
          approximation error);
        - ``"poisson"`` — Poisson(np), the classic sparse-graph limit;
        - ``"deterministic"`` — ``round(np)`` with no randomness (the TeG
          baseline's static early fixing).
    max_size:
        Upper clip, defaulting to no clip.  Callers pass ``|V|`` because a
        scope of a simple directed graph cannot hold more distinct edges
        than it has cells.

    Returns
    -------
    numpy.ndarray of int64 sizes, clipped to ``[0, max_size]``.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if np.any(p < 0) or np.any(p > 1):
        raise ValueError("scope probabilities must lie in [0, 1]")
    mean = num_edges * p
    if method == "normal":
        std = np.sqrt(mean * (1.0 - p))
        sizes = np.rint(rng.normal(mean, std)).astype(np.int64)
    elif method == "binomial":
        sizes = rng.binomial(num_edges, p).astype(np.int64)
    elif method == "poisson":
        sizes = rng.poisson(mean).astype(np.int64)
    elif method == "deterministic":
        sizes = np.rint(mean).astype(np.int64)
    else:
        raise ValueError(
            f"unknown scope size method {method!r}; "
            f"expected one of {SCOPE_SIZE_METHODS}")
    np.maximum(sizes, 0, out=sizes)
    if max_size is not None:
        np.minimum(sizes, max_size, out=sizes)
    return sizes
