"""Bit-level utilities used throughout the recursive vector model.

The paper treats vertex IDs as binary strings of length ``log2(|V|)`` and
expresses probabilities through popcounts (Proposition 1) and per-bit lookups
(Lemmas 2-4).  This module provides those primitives both for scalar Python
integers and for numpy arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits",
    "bits_array",
    "bit_at",
    "bits_of",
    "mask",
    "is_power_of_two",
    "ilog2",
    "ones_positions",
    "reverse_bits",
]


def bits(x: int) -> int:
    """Return ``Bits(x)``: the number of 1 bits in ``x`` (x >= 0)."""
    if x < 0:
        raise ValueError(f"bits() requires a non-negative integer, got {x}")
    return int(x).bit_count()


def bits_array(x: np.ndarray) -> np.ndarray:
    """Vectorized popcount over an unsigned/non-negative integer array."""
    return np.bitwise_count(x)


def bit_at(x: int, k: int) -> int:
    """Return the ``k``-th bit of ``x`` counting from the LSB (bit 0)."""
    return (x >> k) & 1


def bits_of(x: int, width: int) -> tuple[int, ...]:
    """Return the bits of ``x`` as a tuple ``(b[width-1], ..., b[0])``,
    most-significant first, zero-padded to ``width`` bits.

    This matches the paper's convention of reading a vertex ID as a binary
    string whose leftmost character is the quadrant chosen at the first
    (coarsest) recursion level.
    """
    if x >= (1 << width):
        raise ValueError(f"{x} does not fit in {width} bits")
    return tuple((x >> k) & 1 for k in range(width - 1, -1, -1))


def mask(width: int) -> int:
    """Return a bit mask of ``width`` ones (``2**width - 1``)."""
    return (1 << width) - 1


def is_power_of_two(x: int) -> bool:
    """True when ``x`` is a positive power of two."""
    return x > 0 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """Exact integer log2; raises for non-powers of two.

    The scope-based model requires ``|V| = 2**scale`` so that recursive
    quadrant selection terminates exactly at 1x1 cells.
    """
    if not is_power_of_two(x):
        raise ValueError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def ones_positions(x: int) -> list[int]:
    """Return the bit positions (LSB = 0) that are set in ``x``, ascending.

    Theorem 2 reconstructs a destination vertex as ``sum(2**k for k in θ)``;
    this is the inverse mapping used by tests.
    """
    positions = []
    k = 0
    while x:
        if x & 1:
            positions.append(k)
        x >>= 1
        k += 1
    return positions


def reverse_bits(x: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``x`` (bit 0 becomes bit width-1).

    Used by the Graph500-style vertex scramble.
    """
    if x >= (1 << width):
        raise ValueError(f"{x} does not fit in {width} bits")
    out = 0
    for _ in range(width):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out
