"""AVS generation for n x n seed matrices (general SKG).

The paper implements the recursive vector model for 2 x 2 seeds (RMAT) and
notes that SKG generalizes RMAT to ``n x n`` probability parameters.  This
module extends the AVS approach to that full generality: vertex IDs become
base-``n`` digit strings of length ``depth`` (``|V| = n**depth``), Lemma 1
becomes a product of per-digit row sums, and edge determination factorizes
per digit — the base-``n`` analogue of the ``bitwise`` engine, i.e. the
destination's digit at position ``d`` is drawn from the categorical
distribution ``K[u_d, :] / rowsum(K[u_d, :])``.

For ``n = 2`` this reduces exactly to the main generator's process
(verified by tests).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, GenerationError
from .rng import stream
from .scope import sample_scope_sizes
from .seed import SeedMatrix

__all__ = ["NAryRecursiveVectorGenerator"]

_TAG_DEGREE = 301
_TAG_EDGE = 302
_MAX_TOPUP = 200


class NAryRecursiveVectorGenerator:
    """Scope-per-source-vertex generation under an ``n x n`` seed.

    Parameters
    ----------
    seed_matrix:
        ``n x n`` seed (n >= 2).
    depth:
        Number of recursion levels; ``|V| = n ** depth``.
    num_edges:
        Target edge count (defaults to ``16 * |V|``).
    dedup:
        Per-scope duplicate elimination (Algorithm 2 semantics).
    """

    def __init__(self, seed_matrix: SeedMatrix, depth: int, *,
                 num_edges: int | None = None, dedup: bool = True,
                 seed: int = 0, block_size: int = 4096) -> None:
        if depth < 1:
            raise ConfigurationError("depth must be >= 1")
        self.seed_matrix = seed_matrix
        self.order = seed_matrix.order
        self.depth = depth
        self.num_vertices = self.order ** depth
        if self.num_vertices > 2 ** 56:
            raise ConfigurationError("graph too large for int64 packing")
        self.num_edges = (num_edges if num_edges is not None
                          else 16 * self.num_vertices)
        if self.num_edges < 1:
            raise ConfigurationError("num_edges must be positive")
        self.dedup = dedup
        self.seed = seed
        self.block_size = block_size
        entries = seed_matrix.entries
        self._row_sums = entries.sum(axis=1)            # (n,)
        if np.any(self._row_sums <= 0):
            raise ConfigurationError(
                "every seed row needs positive mass for AVS scoping")
        # Conditional digit CDF per source digit: (n, n).
        self._digit_cdf = np.cumsum(entries / self._row_sums[:, None],
                                    axis=1)

    # ------------------------------------------------------------------

    def _digits(self, vertices: np.ndarray) -> np.ndarray:
        """Base-n digits, shape ``(m, depth)``, position 0 = least
        significant digit."""
        v = np.asarray(vertices, dtype=np.int64)
        out = np.empty((v.size, self.depth), dtype=np.int64)
        for d in range(self.depth):
            out[:, d] = v % self.order
            v = v // self.order
        return out

    def row_probabilities(self, sources: np.ndarray) -> np.ndarray:
        """Generalized Lemma 1: ``P(u->) = prod_d rowsum(u_d)``."""
        digits = self._digits(sources)
        return np.prod(self._row_sums[digits], axis=1)

    def block_degrees(self, block_index: int) -> np.ndarray:
        sources = self._block_sources(block_index)
        probs = self.row_probabilities(sources)
        rng = stream(self.seed, _TAG_DEGREE, block_index)
        max_size = self.num_vertices if self.dedup else None
        return sample_scope_sizes(probs, self.num_edges, rng,
                                  max_size=max_size)

    def degrees(self) -> np.ndarray:
        return np.concatenate([
            self.block_degrees(b) for b in range(self._num_blocks())])

    # ------------------------------------------------------------------

    def _sample_destinations(self, src_digits: np.ndarray,
                             rng: np.random.Generator) -> np.ndarray:
        """Digit-factorized destination sampling (base-n bitwise)."""
        total = src_digits.shape[0]
        dest = np.zeros(total, dtype=np.int64)
        scale = 1
        for d in range(self.depth):
            cdf_rows = self._digit_cdf[src_digits[:, d]]     # (m, n)
            r = rng.random(total)
            digit = (cdf_rows < r[:, None]).sum(axis=1)
            np.minimum(digit, self.order - 1, out=digit)
            dest += digit * scale
            scale *= self.order
        return dest

    def _sample_scope_exact(self, u: int, size: int,
                            rng: np.random.Generator) -> np.ndarray:
        """PPSWOR fallback for saturated/stalled scopes (mirrors the
        binary generator's)."""
        if self.num_vertices > 1 << 26:
            raise GenerationError(
                "saturated scope too large to materialize")
        digits = self._digits(np.array([u]))[0]
        # Build the row PMF digit-by-digit, least significant first: the
        # step-d digit lands at index place n^d, so the final index IS the
        # vertex ID.
        pmf = np.array([1.0])
        for d in range(self.depth):
            row = (self.seed_matrix.entries[digits[d]]
                   / self._row_sums[digits[d]])
            pmf = np.concatenate([pmf * p for p in row])
        size = min(size, int(np.count_nonzero(pmf)))
        with np.errstate(divide="ignore"):
            scores = np.log(pmf) - np.log(-np.log(rng.random(pmf.size)))
        top = np.argpartition(scores, pmf.size - size)[pmf.size - size:]
        return np.sort(top).astype(np.int64)

    # ------------------------------------------------------------------

    def _num_blocks(self) -> int:
        return (self.num_vertices + self.block_size - 1) // self.block_size

    def _block_sources(self, block_index: int) -> np.ndarray:
        lo = block_index * self.block_size
        hi = min(lo + self.block_size, self.num_vertices)
        if lo >= self.num_vertices:
            raise ValueError(f"block {block_index} out of range")
        return np.arange(lo, hi, dtype=np.int64)

    def generate_block(self, block_index: int) -> np.ndarray:
        """All edges of one block as an ``(m, 2)`` array."""
        sources = self._block_sources(block_index)
        degrees = self.block_degrees(block_index)
        rng = stream(self.seed, _TAG_EDGE, block_index)
        rows = np.repeat(np.arange(sources.size, dtype=np.int64), degrees)
        src_digits = self._digits(sources[rows])
        dests = self._sample_destinations(src_digits, rng)
        if not self.dedup:
            return np.column_stack([sources[rows], dests])
        span = np.int64(self.num_vertices)
        keys = np.unique(rows.astype(np.int64) * span + dests)
        for _ in range(_MAX_TOPUP):
            have = np.bincount((keys // span).astype(np.int64),
                               minlength=sources.size)
            shortfall = degrees - have
            if not (shortfall > 0).any():
                break
            refill = np.repeat(np.arange(sources.size, dtype=np.int64),
                               np.maximum(shortfall, 0))
            new = refill.astype(np.int64) * span + self._sample_destinations(
                self._digits(sources[refill]), rng)
            merged = np.unique(np.concatenate([keys, new]))
            if merged.size == keys.size:
                # Stalled: finish the short scopes exactly.
                for row in np.nonzero(shortfall > 0)[0]:
                    exact = self._sample_scope_exact(
                        int(sources[row]), int(degrees[row]), rng)
                    keys = np.concatenate(
                        [keys[keys // span != row],
                         np.int64(row) * span + exact])
                keys = np.sort(keys)
                break
            keys = merged
        rows_final = (keys // span).astype(np.int64)
        return np.column_stack([sources[rows_final], keys % span])

    def edges(self) -> np.ndarray:
        parts = [self.generate_block(b) for b in range(self._num_blocks())]
        return (np.concatenate(parts) if parts
                else np.empty((0, 2), dtype=np.int64))
