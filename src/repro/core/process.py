"""Edge-process abstraction: plain SKG/RMAT vs NSKG behind one interface.

The AVS generator needs three quantities per source vertex ``u``:

1. the row probability ``P(u->)`` (Theorem 1's ``p``),
2. the RecVec row (Theorem 2's search structure),
3. the per-bit Bernoulli parameters (for the ``bitwise`` engine).

Both the noiseless process (one seed matrix, Lemmas 1-2) and the noisy NSKG
process (per-level matrices, Lemmas 7-8) provide them; generators are
written against this interface and are noise-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .noise import NoisySeedStack
from .recvec import build_recvec, build_recvecs
from .seed import SeedMatrix

__all__ = ["EdgeProcess", "PlainProcess", "NoisyProcess", "make_process"]


class EdgeProcess(ABC):
    """Everything the AVS generator needs to know about the stochastic
    process, independent of whether noise is applied."""

    #: number of recursion levels, ``log2(|V|)``
    levels: int

    @property
    def num_vertices(self) -> int:
        return 1 << self.levels

    @abstractmethod
    def row_probabilities(self, sources: np.ndarray) -> np.ndarray:
        """``P(u->)`` for each source (Lemma 1 / Lemma 7)."""

    @abstractmethod
    def build_recvecs(self, sources: np.ndarray) -> np.ndarray:
        """RecVec rows, shape ``(n, levels + 1)`` (Lemma 2 / Lemma 8)."""

    @abstractmethod
    def bit_probabilities(self, sources: np.ndarray) -> np.ndarray:
        """``P(v[x]=1 | u)`` per bit position, shape ``(n, levels)``."""

    def build_recvec(self, u: int) -> np.ndarray:
        """Single-source RecVec (convenience for the reference engine)."""
        return self.build_recvecs(np.array([u], dtype=np.uint64))[0]


class PlainProcess(EdgeProcess):
    """The noiseless RMAT/SKG process driven by one 2x2 seed matrix."""

    def __init__(self, seed_matrix: SeedMatrix, levels: int) -> None:
        if not seed_matrix.is_rmat:
            raise ValueError(
                "PlainProcess requires a 2x2 seed; use FastKronecker for "
                "n x n seeds")
        self.seed_matrix = seed_matrix
        self.levels = levels
        a, b, c, d = seed_matrix.as_tuple()
        self._row_sums = np.array([a + b, c + d])
        self._bit_one = np.array([b / (a + b), d / (c + d)])

    def row_probabilities(self, sources: np.ndarray) -> np.ndarray:
        src = np.asarray(sources, dtype=np.uint64)
        ones = np.bitwise_count(src).astype(np.int64)
        ab, cd = self._row_sums
        return np.power(ab, self.levels - ones) * np.power(cd, ones)

    def build_recvecs(self, sources: np.ndarray) -> np.ndarray:
        return build_recvecs(self.seed_matrix, sources, self.levels)

    def build_recvec(self, u: int) -> np.ndarray:
        return build_recvec(self.seed_matrix, u, self.levels)

    def bit_probabilities(self, sources: np.ndarray) -> np.ndarray:
        src = np.asarray(sources, dtype=np.uint64)
        out = np.empty((src.size, self.levels), dtype=np.float64)
        for x in range(self.levels):
            bit_set = ((src >> np.uint64(x)) & np.uint64(1)).astype(bool)
            out[:, x] = np.where(bit_set, self._bit_one[1], self._bit_one[0])
        return out


class NoisyProcess(EdgeProcess):
    """The NSKG process driven by a per-level noisy seed stack."""

    def __init__(self, stack: NoisySeedStack) -> None:
        self.stack = stack
        self.levels = stack.levels

    def row_probabilities(self, sources: np.ndarray) -> np.ndarray:
        return self.stack.row_probabilities(sources)

    def build_recvecs(self, sources: np.ndarray) -> np.ndarray:
        return self.stack.build_recvecs(sources)

    def bit_probabilities(self, sources: np.ndarray) -> np.ndarray:
        return self.stack.bit_probabilities(sources)


def make_process(seed_matrix: SeedMatrix, levels: int, noise: float,
                 rng: np.random.Generator) -> EdgeProcess:
    """Build the right process for a noise parameter (0 => plain)."""
    if noise == 0.0:
        return PlainProcess(seed_matrix, levels)
    return NoisyProcess(NoisySeedStack.draw(seed_matrix, levels, noise, rng))
