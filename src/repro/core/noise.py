"""NSKG random noise — Appendix C (Definition 3, Lemmas 7-8).

Plain SKG raises one seed matrix to a Kronecker power, which produces the
oscillating log-log degree plot of Figure 9(a).  NSKG instead takes the
Kronecker product of ``log|V|`` *different* matrices ``K_0 ⊗ ... ⊗ K_{L-1}``
where each ``K_i`` perturbs the base seed by a level-specific uniform noise
``mu_i ~ U(-N, N)``::

    K_i = [ alpha(1 - 2 mu_i/(alpha+delta)),  beta + mu_i
            gamma + mu_i,                     delta(1 - 2 mu_i/(alpha+delta)) ]

The perturbation preserves each matrix's total mass, so the process remains
a probability model.  ``N`` must satisfy ``N <= min((alpha+delta)/2, beta)``
so no entry goes negative.

Convention: ``K_0`` is the coarsest recursion level, i.e. it governs the
most-significant bit of vertex IDs (matching ``K = K_0 ⊗ K_1 ⊗ ...``).
"""

from __future__ import annotations

import numpy as np

from ..contracts import check_seed_matrix
from ..errors import ConfigurationError
from .seed import SeedMatrix

__all__ = ["max_noise", "noisy_seed_matrices", "NoisySeedStack"]


def max_noise(seed: SeedMatrix) -> float:
    """The largest admissible noise parameter.

    Definition 3 prints ``min((alpha+delta)/2, beta)``, which keeps every
    perturbed entry non-negative only when ``beta == gamma`` (true for the
    Graph500 seed the paper uses).  For asymmetric seeds ``gamma + mu``
    can go negative under the printed bound, so ``gamma`` is included
    here: ``min((alpha+delta)/2, beta, gamma)``.
    """
    a, b, c, d = seed.as_tuple()
    return min((a + d) / 2.0, b, c)


def noisy_seed_matrices(seed: SeedMatrix, levels: int, noise: float,
                        rng: np.random.Generator) -> list[SeedMatrix]:
    """Draw the per-level noisy matrices ``K_0 .. K_{levels-1}`` (Def. 3)."""
    if noise < 0:
        raise ConfigurationError("noise parameter must be non-negative")
    limit = max_noise(seed)
    if noise > limit + 1e-12:
        raise ConfigurationError(
            f"noise {noise} exceeds the admissible bound "
            f"min((alpha+delta)/2, beta) = {limit:.6g}")
    a, b, c, d = seed.as_tuple()
    mus = rng.uniform(-noise, noise, size=levels)
    matrices = []
    for mu in mus:
        shrink = 1.0 - 2.0 * mu / (a + d)
        matrices.append(SeedMatrix.rmat(a * shrink, b + mu,
                                        c + mu, d * shrink))
        # Definition 3's perturbation is mass-preserving (Lemmas 7-8).
        check_seed_matrix(matrices[-1])
    return matrices


class NoisySeedStack:
    """The per-level matrices of one NSKG instance, with the closed forms
    of Lemmas 7-8 evaluated directly on the stack.

    The stack's randomness (the ``mu_i`` draws) is part of the *model*, not
    of edge generation: all workers generating the same graph must share the
    same stack, so it is drawn once from the graph-level seed and shipped to
    workers.
    """

    def __init__(self, matrices: list[SeedMatrix]) -> None:
        if not matrices:
            raise ConfigurationError("noisy seed stack cannot be empty")
        if any(not m.is_rmat for m in matrices):
            raise ConfigurationError("NSKG requires 2x2 seed matrices")
        self.matrices = list(matrices)
        self.levels = len(matrices)
        # Per-level row sums and keep-low/one-probability tables, indexed by
        # [level][source_bit].  Level 0 = most significant bit.
        self._row_sums = np.array(
            [m.row_sums() for m in matrices])            # (L, 2)
        entries = np.array([m.entries for m in matrices])  # (L, 2, 2)
        self._keep_low = entries[:, :, 0] / self._row_sums   # K[s,0]/rowsum
        self._bit_one = entries[:, :, 1] / self._row_sums    # K[s,1]/rowsum

    @classmethod
    def draw(cls, seed: SeedMatrix, levels: int, noise: float,
             rng: np.random.Generator) -> "NoisySeedStack":
        """Draw a fresh stack per Definition 3."""
        return cls(noisy_seed_matrices(seed, levels, noise, rng))

    def _level_of_bit(self, bit: int) -> int:
        """Kronecker level governing bit position ``bit`` (LSB = 0)."""
        return self.levels - 1 - bit

    # -- Lemma 7 -----------------------------------------------------------

    def row_probabilities(self, sources: np.ndarray) -> np.ndarray:
        """``P'(u->) = prod_i (K_i[u_i,0] + K_i[u_i,1])`` over levels
        (equivalent to Lemma 7's modifier-product form)."""
        src = np.asarray(sources, dtype=np.uint64)
        out = np.ones(src.shape, dtype=np.float64)
        for bit in range(self.levels):
            level = self._level_of_bit(bit)
            bit_set = ((src >> np.uint64(bit)) & np.uint64(1)).astype(bool)
            out *= np.where(bit_set, self._row_sums[level, 1],
                            self._row_sums[level, 0])
        return out

    # -- Lemma 8 -----------------------------------------------------------

    def build_recvecs(self, sources: np.ndarray) -> np.ndarray:
        """Noisy RecVec rows (Lemma 8) for a batch of sources.

        Same recurrence as the noiseless Lemma 2, but the keep-low factor at
        bit ``x`` comes from the level-specific matrix ``K_{L-1-x}``.
        """
        src = np.asarray(sources, dtype=np.uint64)
        out = np.empty((src.size, self.levels + 1), dtype=np.float64)
        out[:, self.levels] = self.row_probabilities(src)
        for x in range(self.levels - 1, -1, -1):
            level = self._level_of_bit(x)
            bit_set = ((src >> np.uint64(x)) & np.uint64(1)).astype(bool)
            factor = np.where(bit_set, self._keep_low[level, 1],
                              self._keep_low[level, 0])
            out[:, x] = out[:, x + 1] * factor
        return out

    def bit_probabilities(self, sources: np.ndarray) -> np.ndarray:
        """``P(v[x] = 1 | u)`` per bit position, shape ``(n, levels)``
        with column ``x`` = bit position ``x`` (LSB = 0); the bitwise
        engine's Bernoulli parameters under noise."""
        src = np.asarray(sources, dtype=np.uint64)
        out = np.empty((src.size, self.levels), dtype=np.float64)
        for x in range(self.levels):
            level = self._level_of_bit(x)
            bit_set = ((src >> np.uint64(x)) & np.uint64(1)).astype(bool)
            out[:, x] = np.where(bit_set, self._bit_one[level, 1],
                                 self._bit_one[level, 0])
        return out
