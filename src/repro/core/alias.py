"""Alias tables over bundles of recursion-path prefixes.

"Linear Work Generation of R-MAT Graphs" (Hübschle-Schneider & Sanders)
observes that the per-edge cost of recursive Kronecker samplers —
O(log|V|) recursion steps in Algorithm 5 / the bit-peel loop — can be
collapsed by precomputing the joint distribution of whole *bundles* of
recursion decisions.  For a bundle depth ``b``, the top ``b`` destination
bits form a prefix ``w`` in ``{0,1}^b`` whose conditional probability
given the source factorizes over levels (see
:mod:`repro.core.probability`)::

    P(w | u) = prod_{j<b}  p_j        if w[j] = 1
                           (1 - p_j)  if w[j] = 0

where ``p_j`` is the per-level Bernoulli parameter of destination bit
``levels - b + j``.  That PMF has only ``2**b`` outcomes, so a Vose
alias table draws a whole prefix in O(1): one uniform picks a slot, one
uniform flips the slot's biased coin.  The remaining ``levels - b`` low
bits are filled by the ordinary vectorized bit-peel.

Because ``p_j`` depends on the source only through the source's bit at
the same level, a table is keyed by the source's top-``b`` bit pattern:
at most ``2**b`` tables of ``2**b`` entries each, and in practice one or
a handful per generation block (consecutive sources share their high
bits).  :class:`repro.core.generator.RecursiveVectorGenerator` caches
tables per pattern across blocks, so construction cost is amortized to
nothing over a run.

Everything here is plain float64 numpy; determinism is inherited from
the caller's seeded streams (the alias structure itself is a pure
function of the seed matrix).
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_alias_table", "bundle_pmf", "sample_alias"]


def bundle_pmf(level_probs: np.ndarray) -> np.ndarray:
    """PMF over all ``2**b`` prefixes for per-level one-bit probabilities.

    ``level_probs[j]`` is the probability that prefix bit ``j`` is 1
    (bit ``j`` of the returned index corresponds to destination bit
    ``levels - b + j``).  Built by the same doubling recurrence as the
    exact scope sampler: each level splits every prefix into its 0- and
    1-extension.
    """
    probs = np.asarray(level_probs, dtype=np.float64)
    if probs.ndim != 1 or probs.size == 0:
        raise ValueError("level_probs must be a non-empty 1-D array")
    if probs.size > 24:
        raise ValueError(
            f"bundle depth {probs.size} would materialize a "
            f"{1 << probs.size}-entry table; cap the depth at 24")
    pmf = np.array([1.0])
    for p in probs:
        pmf = np.concatenate([pmf * (1.0 - p), pmf * p])
    return pmf


def build_alias_table(weights: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Vose's O(n) alias construction for a discrete distribution.

    Returns ``(prob, alias)``: to sample, draw slot ``i`` uniformly and
    keep it with probability ``prob[i]``, otherwise take ``alias[i]``.
    Zero-weight outcomes are handled (they end up with ``prob == 0`` and
    a live alias); weights need not be normalized.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if not np.isfinite(w).all() or (w < 0).any():
        raise ValueError("weights must be finite and non-negative")
    total = float(w.sum())
    if total <= 0.0:
        raise ValueError("weights must not sum to zero")
    n = w.size
    scaled = w * (n / total)
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    small = [int(i) for i in np.nonzero(scaled < 1.0)[0]]
    large = [int(i) for i in np.nonzero(scaled >= 1.0)[0]]
    while small and large:
        s = small.pop()
        g = large.pop()
        prob[s] = scaled[s]
        alias[s] = g
        scaled[g] = (scaled[g] + scaled[s]) - 1.0
        (small if scaled[g] < 1.0 else large).append(g)
    # Float residue: any leftover slot keeps probability 1 of itself.
    for i in small + large:
        prob[i] = 1.0
        alias[i] = i
    return prob, alias


def sample_alias(prob: np.ndarray, alias: np.ndarray,
                 slot_u: np.ndarray, coin_u: np.ndarray) -> np.ndarray:
    """Vectorized alias draw from pre-drawn uniforms (single table).

    ``slot_u`` picks the slot, ``coin_u`` flips the slot's coin; both in
    ``[0, 1)``.  Kept separate from the table gather in the generator so
    the draw order (slot batch, then coin batch) is an explicit, frozen
    part of the determinism contract.
    """
    n = prob.size
    slots = np.minimum((slot_u * n).astype(np.int64), n - 1)
    return np.where(coin_u < prob[slots], slots, alias[slots])
