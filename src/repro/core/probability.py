"""Closed-form edge and row probabilities for the Kronecker process.

Implements Proposition 1 (probability of a single edge ``u -> v``),
Lemma 1 (row probability ``P(u->)``), and the per-bit conditional
probabilities that justify the ``bitwise`` generation engine.

Factorization note (used by the fast engine)
--------------------------------------------
Proposition 1 writes ``K[u,v] = prod_i K[u[i], v[i]]`` over bit positions
``i``.  Dividing by Lemma 1's ``P(u->) = prod_i (K[u[i],0] + K[u[i],1])``
shows the conditional distribution of the destination given the source
factorizes across bits::

    P(v | u) = prod_i  K[u[i], v[i]] / (K[u[i], 0] + K[u[i], 1])

so each destination bit is an independent Bernoulli draw with success
probability ``K[u[i],1] / (K[u[i],0] + K[u[i],1])``.  Sampling those bits
directly is distributionally identical to inverting the CDF with Theorem 2;
``tests/core/test_engines_agree.py`` checks this empirically.
"""

from __future__ import annotations

import math

import numpy as np

from .bits import bits, bits_array, ilog2, mask
from .seed import SeedMatrix

__all__ = [
    "edge_probability",
    "row_probability",
    "row_probabilities",
    "column_probability",
    "destination_bit_probabilities",
    "expected_degree",
    "log_row_probabilities",
    "total_row_probability_check",
    "brute_force_row_probability",
    "brute_force_cdf",
]


def edge_probability(seed: SeedMatrix, u: int, v: int, levels: int) -> float:
    """Probability of the cell ``(u, v)`` in ``K^{⊗levels}`` (Proposition 1).

    ``K[u,v] = alpha^Bits(~u & ~v) * beta^Bits(~u & v) *
    gamma^Bits(u & ~v) * delta^Bits(u & v)`` with popcounts taken over
    ``levels`` bits.
    """
    a, b, c, d = seed.as_tuple()
    m = mask(levels)
    if u > m or v > m:
        raise ValueError(f"vertex id out of range for {levels} levels")
    nu, nv = ~u & m, ~v & m
    return (a ** bits(nu & nv) * b ** bits(nu & v) *
            c ** bits(u & nv) * d ** bits(u & v))


def row_probability(seed: SeedMatrix, u: int, levels: int) -> float:
    """Row probability ``P(u->) = (alpha+beta)^Bits(~u) * (gamma+delta)^Bits(u)``
    (Lemma 1): the total probability mass of all edges out of ``u``."""
    ab, cd = (float(x) for x in seed.row_sums())
    m = mask(levels)
    if u > m:
        raise ValueError(f"vertex id {u} out of range for {levels} levels")
    ones = bits(u)
    return ab ** (levels - ones) * cd ** ones


def column_probability(seed: SeedMatrix, v: int, levels: int) -> float:
    """Column probability ``P(->v) = (alpha+gamma)^Bits(~v) * (beta+delta)^Bits(v)``,
    the AVS-I analogue of Lemma 1."""
    ac, bd = (float(x) for x in seed.col_sums())
    m = mask(levels)
    if v > m:
        raise ValueError(f"vertex id {v} out of range for {levels} levels")
    ones = bits(v)
    return ac ** (levels - ones) * bd ** ones


def row_probabilities(seed: SeedMatrix, vertices: np.ndarray,
                      levels: int) -> np.ndarray:
    """Vectorized Lemma 1 over an array of source vertex IDs."""
    ab, cd = (float(x) for x in seed.row_sums())
    ones = bits_array(np.asarray(vertices, dtype=np.uint64)).astype(np.int64)
    return np.power(ab, levels - ones) * np.power(cd, ones)


def log_row_probabilities(seed: SeedMatrix, vertices: np.ndarray,
                          levels: int) -> np.ndarray:
    """Natural log of Lemma 1, stable at very large ``levels`` where the
    direct product underflows float64 (relevant past scale ~700 only for
    pathological seeds, but cheap insurance for the cost model)."""
    ab, cd = (float(x) for x in seed.row_sums())
    ones = bits_array(np.asarray(vertices, dtype=np.uint64)).astype(np.float64)
    return (levels - ones) * math.log(ab) + ones * math.log(cd)


def destination_bit_probabilities(seed: SeedMatrix, u: int,
                                  levels: int) -> np.ndarray:
    """Per-level probability that the destination bit is 1, given source ``u``.

    Returns an array ``p`` of length ``levels`` indexed by bit position
    (LSB = index 0): ``p[i] = K[u[i],1] / (K[u[i],0] + K[u[i],1])``.
    This is the Bernoulli parameter used by the ``bitwise`` engine and also
    equals the paper's scale-symmetry ratio ``sigma_{u[k]}`` normalized:
    ``sigma = p / (1 - p)`` (Lemma 3).
    """
    a, b, c, d = seed.as_tuple()
    p0 = b / (a + b)
    p1 = d / (c + d)
    out = np.empty(levels, dtype=np.float64)
    for i in range(levels):
        out[i] = p1 if (u >> i) & 1 else p0
    return out


def expected_degree(seed: SeedMatrix, u: int, levels: int,
                    num_edges: int) -> float:
    """Expected out-degree of ``u``: ``|E| * P(u->)`` (mean of Theorem 1)."""
    return num_edges * row_probability(seed, u, levels)


def total_row_probability_check(seed: SeedMatrix, levels: int) -> float:
    """Sum of ``P(u->)`` over all ``u``; equals 1.0 exactly.

    ``sum_u (ab)^(L-Bits(u)) (cd)^Bits(u) = (ab + cd)^L = 1``.
    Exposed for tests; evaluated in closed form, not by enumeration.
    """
    ab, cd = (float(x) for x in seed.row_sums())
    return (ab + cd) ** levels


def brute_force_row_probability(seed: SeedMatrix, u: int,
                                levels: int) -> float:
    """O(|V|) cross-check of Lemma 1 by summing Proposition 1 over all v.

    Test-support only; do not call at scale (this is exactly the AES cost
    the paper's Lemma 1 avoids).
    """
    n = 1 << levels
    return sum(edge_probability(seed, u, v, levels) for v in range(n))


def brute_force_cdf(seed: SeedMatrix, u: int, levels: int) -> np.ndarray:
    """The naive CDF vector ``F_u`` of Section 4.2 (positions 1..|V|).

    ``F_u(r) = sum_{v=0}^{r-1} P(u->v)``, returned as an array of length
    ``|V| + 1`` with ``F_u(0) = 0``.  This is the O(|V|)-space structure
    whose cost Table 2 compares against RecVec.
    """
    n = 1 << levels
    pmf = np.array(
        [edge_probability(seed, u, v, levels) for v in range(n)])
    cdf = np.concatenate([[0.0], np.cumsum(pmf)])
    return cdf
