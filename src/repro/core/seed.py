"""Seed probability matrices for RMAT / Kronecker-family generators.

A seed matrix ``K`` is an ``n x n`` matrix of non-negative reals summing to
1.  The full edge-probability matrix of a graph with ``|V| = n**L`` vertices
is the L-fold Kronecker power ``K ⊗ K ⊗ ... ⊗ K`` (Definition 1 in the
paper).  RMAT is the 2x2 case, where the entries are conventionally named
``alpha, beta, gamma, delta`` (Figure 1(a)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import SeedMatrixError

__all__ = ["SeedMatrix", "GRAPH500", "UNIFORM"]

_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class SeedMatrix:
    """An ``n x n`` seed probability matrix.

    Parameters
    ----------
    entries:
        Square matrix of non-negative floats summing to 1.0 (within a small
        tolerance; the matrix is renormalized exactly on construction so that
        downstream CDFs close to 1).

    Examples
    --------
    >>> k = SeedMatrix.rmat(0.57, 0.19, 0.19, 0.05)
    >>> k.alpha, k.delta
    (0.57, 0.05)
    >>> k.order
    2
    """

    entries: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.entries, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
            raise SeedMatrixError(
                f"seed matrix must be square, got shape {arr.shape}")
        if arr.shape[0] < 2:
            raise SeedMatrixError("seed matrix must be at least 2x2")
        if np.any(arr < 0):
            raise SeedMatrixError("seed matrix entries must be non-negative")
        total = float(arr.sum())
        if not math.isclose(total, 1.0, abs_tol=_SUM_TOLERANCE):
            raise SeedMatrixError(
                f"seed matrix entries must sum to 1.0, got {total}")
        # Entries are stored verbatim: renormalizing a sum that is off by
        # only representation noise would perturb exact user inputs (and
        # the paper's worked examples).  Downstream CDFs are built from row
        # sums, so a 1-ulp total deficit is harmless.
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        object.__setattr__(self, "entries", arr)

    # -- constructors ------------------------------------------------------

    @classmethod
    def rmat(cls, alpha: float, beta: float, gamma: float,
             delta: float) -> "SeedMatrix":
        """Build the 2x2 RMAT seed ``[[alpha, beta], [gamma, delta]]``."""
        return cls(np.array([[alpha, beta], [gamma, delta]]))

    @classmethod
    def graph500(cls) -> "SeedMatrix":
        """The Graph500 standard seed ``[0.57, 0.19; 0.19, 0.05]``."""
        return cls.rmat(0.57, 0.19, 0.19, 0.05)

    @classmethod
    def uniform(cls, order: int = 2) -> "SeedMatrix":
        """All-equal entries: the Erdős–Rényi special case (Sec. 8)."""
        return cls(np.full((order, order), 1.0 / (order * order),
                           dtype=np.float64))

    # -- basic views -------------------------------------------------------

    @property
    def order(self) -> int:
        """Side length ``n`` of the matrix."""
        return self.entries.shape[0]

    @property
    def is_rmat(self) -> bool:
        """True for the 2x2 (RMAT) case."""
        return self.order == 2

    def _require_rmat(self) -> None:
        if not self.is_rmat:
            raise SeedMatrixError(
                "this operation is defined only for 2x2 (RMAT) seeds")

    @property
    def alpha(self) -> float:
        self._require_rmat()
        return float(self.entries[0, 0])

    @property
    def beta(self) -> float:
        self._require_rmat()
        return float(self.entries[0, 1])

    @property
    def gamma(self) -> float:
        self._require_rmat()
        return float(self.entries[1, 0])

    @property
    def delta(self) -> float:
        self._require_rmat()
        return float(self.entries[1, 1])

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(alpha, beta, gamma, delta)`` for a 2x2 seed."""
        return (self.alpha, self.beta, self.gamma, self.delta)

    # -- derived quantities ------------------------------------------------

    def row_sums(self) -> np.ndarray:
        """Per-row sums; for 2x2 these are ``(alpha+beta, gamma+delta)``,
        the factors of Lemma 1."""
        return self.entries.sum(axis=1)

    def col_sums(self) -> np.ndarray:
        """Per-column sums; for 2x2 these are ``(alpha+gamma, beta+delta)``."""
        return self.entries.sum(axis=0)

    def kronecker_power(self, levels: int) -> np.ndarray:
        """Materialize ``K ⊗ ... ⊗ K`` (``levels`` factors).

        Only usable for small graphs — the result has ``order**levels`` rows
        (this is exactly the AES scalability problem the paper identifies).
        Used by tests to cross-check closed forms against brute force.
        """
        if levels < 1:
            raise ValueError("levels must be >= 1")
        out = self.entries
        for _ in range(levels - 1):
            out = np.kron(out, self.entries)
        return out

    def out_zipf_slope(self) -> float:
        """Zipfian slope of the out-degree distribution this seed induces:
        ``log2(gamma+delta) - log2(alpha+beta)`` (Lemma 6 / Table 3)."""
        self._require_rmat()
        return math.log2(self.gamma + self.delta) - math.log2(
            self.alpha + self.beta)

    def in_zipf_slope(self) -> float:
        """Zipfian slope of the in-degree distribution:
        ``log2(beta+delta) - log2(alpha+gamma)`` (Lemma 6 / Table 3)."""
        self._require_rmat()
        return math.log2(self.beta + self.delta) - math.log2(
            self.alpha + self.gamma)

    def expected_ones_fraction(self) -> float:
        """Exact expected fraction of 1 bits in a destination vertex ID.

        At each recursion level the RMAT process picks the "destination = 1"
        half (beta or delta quadrant) with marginal probability
        ``beta + delta``, independently per level, so the expected popcount
        of a generated destination is ``(beta + delta) * log|V|``.  This is
        the quantity Idea #2 exploits: the recursive vector model recurses
        once per 1 bit instead of once per level.  For the Graph500 seed the
        fraction is 0.24, i.e. ~4.17x fewer recursions than RMAT.
        """
        self._require_rmat()
        return self.beta + self.delta

    def lemma5_ones_fraction(self) -> float:
        """The paper's printed Lemma 5 estimate of the 1-bit fraction.

        Lemma 5 approximates the destination popcount as
        ``log|V| / ((a+b)/b + 1 - b*(c+d)/(d*(a+b)))``.  The paper quotes
        ``log|V|/4.917`` for the Graph500 seed; the printed formula itself
        evaluates to ``log|V|/3.8`` and the exact marginal (see
        :meth:`expected_ones_fraction`) is ``log|V|/4.167`` — all three
        agree that recursions shrink ~4-5x.  We expose the printed formula
        for the EXPERIMENTS.md comparison and use the exact marginal in
        performance accounting.
        """
        self._require_rmat()
        a, b, c, d = self.as_tuple()
        if b == 0 or d == 0 or (a + b) == 0:
            return self.expected_ones_fraction()
        denominator = (a + b) / b + 1 - (b * (c + d)) / (d * (a + b))
        return 1.0 / denominator

    def transpose(self) -> "SeedMatrix":
        """Seed with source/destination roles swapped (AVS-I from AVS-O)."""
        return SeedMatrix(self.entries.T.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SeedMatrix):
            return NotImplemented
        return self.entries.shape == other.entries.shape and bool(
            np.allclose(self.entries, other.entries))

    def __hash__(self) -> int:
        return hash(self.entries.tobytes())

    def __str__(self) -> str:
        rows = "; ".join(
            ", ".join(f"{x:.4g}" for x in row) for row in self.entries)
        return f"SeedMatrix[{rows}]"


#: The Graph500 standard seed matrix used throughout the paper's evaluation.
GRAPH500 = SeedMatrix.rmat(0.57, 0.19, 0.19, 0.05)

#: The uniform seed (Erdős–Rényi equivalent).
UNIFORM = SeedMatrix.uniform()
