"""Core of the recursive vector model (paper Sections 4-5 and Appendix C)."""

from .generator import (AdjacencyBlock, GenerationStats, IdeaToggles,
                        RecursiveVectorGenerator)
from .nary import NAryRecursiveVectorGenerator
from .noise import NoisySeedStack, max_noise, noisy_seed_matrices
from .probability import (column_probability, edge_probability,
                          row_probabilities, row_probability)
from .process import EdgeProcess, NoisyProcess, PlainProcess, make_process
from .recvec import (build_recvec, build_recvec_decimal, build_recvecs,
                     determine_edge, determine_edge_cdf,
                     determine_edge_recursive, determine_edges,
                     determine_edges_rowwise, scale_symmetry_ratio,
                     sigma_from_recvec)
from .rng import derive_seed, spawn_streams, stream
from .scope import sample_scope_sizes
from .seed import GRAPH500, UNIFORM, SeedMatrix

__all__ = [
    "AdjacencyBlock", "GenerationStats", "IdeaToggles",
    "RecursiveVectorGenerator", "NAryRecursiveVectorGenerator",
    "NoisySeedStack", "max_noise",
    "noisy_seed_matrices", "column_probability", "edge_probability",
    "row_probabilities", "row_probability", "EdgeProcess", "NoisyProcess",
    "PlainProcess", "make_process", "build_recvec", "build_recvec_decimal",
    "build_recvecs", "determine_edge", "determine_edge_cdf",
    "determine_edge_recursive", "determine_edges", "determine_edges_rowwise",
    "scale_symmetry_ratio", "sigma_from_recvec", "derive_seed",
    "spawn_streams", "stream", "sample_scope_sizes", "GRAPH500", "UNIFORM",
    "SeedMatrix",
]
