"""Command-line interface: ``trilliong`` / ``python -m repro``.

Subcommands
-----------
``generate``  — generate a Graph500-style graph to TSV/ADJ6/CSR6;
``rich``      — generate the bibliographical rich graph (Section 6);
``stats``     — print statistics of a graph file;
``degrees``   — print the degree histogram of a graph file;
``convert``   — convert between graph formats;
``simulate``  — print a paper figure's series from the cluster cost model.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .analysis import degree_histogram, graph_stats, in_degrees, out_degrees
from .cluster import (figure11a_series, figure11b_series, figure12_series,
                      figure14_series)
from .core.seed import SeedMatrix
from .dist.runner import ClusterSpec
from .formats import available_formats, get_format
from .rich_graph import RichGraphGenerator, bibliographical_config
from .system import TrillionG

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="trilliong",
        description="TrillionG reproduction: recursive-vector-model "
                    "synthetic graph generator")
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("--scale", type=int, required=True,
                     help="log2 of the vertex count")
    gen.add_argument("--edge-factor", type=int, default=16,
                     help="|E| / |V| (Graph500 default: 16)")
    gen.add_argument("--format", choices=available_formats(),
                     default="adj6")
    gen.add_argument("--output", required=True,
                     help="output file (or directory with --machines > 1)")
    gen.add_argument("--noise", type=float, default=0.0,
                     help="NSKG noise parameter N")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--engine",
                     choices=("vectorized", "bitwise", "alias",
                              "reference"),
                     default="vectorized")
    gen.add_argument("--sampler",
                     choices=("recvec", "bitwise", "alias"),
                     default=None,
                     help="destination-sampling backend (overrides "
                          "--engine): recvec = Algorithm 5 inverse-CDF, "
                          "bitwise = per-level Bernoulli, alias = "
                          "linear-work alias-table bundles")
    gen.add_argument("--bundle-depth", type=int, default=8,
                     help="alias sampler: top bits drawn per table "
                          "gather (table size 2^depth; default 8)")
    gen.add_argument("--matrix", default=None,
                     help="seed matrix as 'a,b,c,d' (default Graph500)")
    gen.add_argument("--machines", type=int, default=1)
    gen.add_argument("--threads", type=int, default=1,
                     help="threads per machine")
    gen.add_argument("--retries", type=int, default=None,
                     help="max re-attempts per worker task before the "
                          "run fails (default 3)")
    gen.add_argument("--task-timeout", type=float, default=None,
                     help="per-attempt wall-clock budget in seconds; "
                          "hung workers are killed and retried")
    gen.add_argument("--resume", action="store_true",
                     help="checkpointed generation into the output "
                          "directory; re-run the same command after a "
                          "crash to continue where it stopped")
    gen.add_argument("--blocks-per-chunk", type=int, default=16,
                     help="checkpoint granularity with --resume")
    gen.add_argument("--metrics-out", default=None,
                     help="write the run's telemetry report (metrics + "
                          "span tree, merged across workers) as JSON")
    gen.add_argument("--sanitize-trace", default=None, metavar="PATH",
                     help="run under the determinism sanitizer and write "
                          "its trace (draws, derivations, block write "
                          "order) as JSON; compare two traces with "
                          "`python -m repro.sanitize.diff`")
    gen.add_argument("--progress", action="store_true",
                     help="live progress line on stderr "
                          "(edges/s, ETA, pipeline queue depth)")
    gen.add_argument("--flight", nargs="?", const=True, default=None,
                     type=float, metavar="INTERVAL",
                     help="run the flight recorder: sample metrics + "
                          "process vitals into a bounded ring buffer "
                          "(optional sampling interval in seconds; "
                          "distributed workers record themselves too). "
                          "The time series lands under 'flight' in "
                          "--metrics-out and --trace-out")
    gen.add_argument("--serve-telemetry", type=int, default=None,
                     metavar="PORT",
                     help="serve live read-only introspection over HTTP "
                          "on 127.0.0.1:PORT for the duration of the "
                          "run (/metrics /healthz /progress /spans "
                          "/flight; 0 picks a free port)")
    gen.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write the run's span trees (per-worker "
                          "tracks) + flight counters as Chrome Trace "
                          "Event JSON, loadable in Perfetto or "
                          "chrome://tracing")

    rich = sub.add_parser("rich",
                          help="generate a rich (gMark-style) graph")
    rich.add_argument("--vertices", type=int, default=1 << 14)
    rich.add_argument("--edges", type=int, default=None)
    rich.add_argument("--config", default=None,
                      help="JSON graph configuration (overrides --schema)")
    rich.add_argument("--schema", default="bibliographical",
                      help="built-in schema: bibliographical, watdiv, "
                           "snb, or sp2bench")
    rich.add_argument("--output", required=True,
                      help="output triple file (src\\tpred\\tdst)")
    rich.add_argument("--seed", type=int, default=0)
    rich.add_argument("--dump-config", default=None,
                      help="also write the effective configuration as "
                           "JSON to this path")

    verify = sub.add_parser(
        "verify", help="validate a generated graph file")
    verify.add_argument("--input", required=True)
    verify.add_argument("--format", choices=available_formats(),
                        default="adj6")
    verify.add_argument("--vertices", type=int, required=True)
    verify.add_argument("--matrix", default=None,
                        help="seed matrix 'a,b,c,d' to check the Zipf "
                             "slope against (default Graph500)")
    verify.add_argument("--expected-edges", type=int, default=None)

    stats = sub.add_parser("stats", help="print graph statistics")
    stats.add_argument("--input", required=True)
    stats.add_argument("--format", choices=available_formats(),
                       default="adj6")
    stats.add_argument("--vertices", type=int, default=None,
                       help="|V| (default: max id + 1)")

    degrees = sub.add_parser("degrees", help="print degree histogram")
    degrees.add_argument("--input", required=True)
    degrees.add_argument("--format", choices=available_formats(),
                         default="adj6")
    degrees.add_argument("--direction", choices=("out", "in"),
                         default="out")

    convert = sub.add_parser("convert", help="convert graph formats")
    convert.add_argument("--input", required=True)
    convert.add_argument("--output", required=True)
    convert.add_argument("--from", dest="from_format",
                         choices=available_formats(), required=True)
    convert.add_argument("--to", dest="to_format",
                         choices=available_formats(), required=True)

    sim = sub.add_parser("simulate",
                         help="print a paper figure from the cost model")
    sim.add_argument("--figure", choices=("11a", "11b", "12", "14"),
                     required=True)

    merge = sub.add_parser(
        "merge", help="merge ordered part files into one graph file")
    merge.add_argument("--parts", nargs="+", required=True,
                       help="part files in vertex-range order")
    merge.add_argument("--vertices", type=int, required=True)
    merge.add_argument("--output", required=True)
    merge.add_argument("--from", dest="in_format",
                       choices=available_formats(), default="adj6")
    merge.add_argument("--to", dest="out_format",
                       choices=available_formats(), default=None)

    plan = sub.add_parser(
        "plan", help="capacity planning on the paper's cluster model")
    plan.add_argument("--machines", type=int, default=10,
                      help="cluster size (paper-spec PCs)")
    plan.add_argument("--hours", type=float, default=None,
                      help="optional time budget")
    plan.add_argument("--target-scale", type=int, default=None,
                      help="also report machines needed for this scale")

    baseline = sub.add_parser(
        "baseline", help="run one of the paper's baseline generators")
    baseline.add_argument("--model", required=True,
                          help="model name, e.g. 'RMAT-mem' "
                               "(see repro.models.ALL_MODELS)")
    baseline.add_argument("--scale", type=int, required=True)
    baseline.add_argument("--edge-factor", type=int, default=16)
    baseline.add_argument("--format", choices=available_formats(),
                          default="tsv")
    baseline.add_argument("--output", required=True)
    baseline.add_argument("--seed", type=int, default=0)
    baseline.add_argument("--fan-in", type=int, default=None,
                          help="disk models: runs merged at once before "
                               "an intermediate merge pass spills "
                               "(bounds merge memory)")
    baseline.add_argument("--spill-chunk", type=int, default=None,
                          help="disk models: keys per merge-read chunk "
                               "(default: one generation batch)")

    analyze = sub.add_parser(
        "analyze", help="print realism metrics for a graph file")
    analyze.add_argument("--input", required=True)
    analyze.add_argument("--format", choices=available_formats(),
                         default="adj6")
    analyze.add_argument("--vertices", type=int, required=True)

    exp = sub.add_parser(
        "experiment",
        help="run a paper experiment and print its rows")
    exp.add_argument("--id", dest="experiment_id", default=None,
                     help="experiment id (see --list)")
    exp.add_argument("--list", action="store_true",
                     help="list available experiments")

    nary = sub.add_parser(
        "nary", help="generate with an n x n seed matrix (general SKG)")
    nary.add_argument("--matrix", required=True,
                      help="n*n comma-separated entries, row-major")
    nary.add_argument("--depth", type=int, required=True,
                      help="recursion depth; |V| = n^depth")
    nary.add_argument("--edges", type=int, default=None,
                      help="target |E| (default 16 * |V|)")
    nary.add_argument("--format", choices=available_formats(),
                      default="tsv")
    nary.add_argument("--output", required=True)
    nary.add_argument("--seed", type=int, default=0)

    fit = sub.add_parser(
        "fit", help="fit a seed matrix to a graph; optionally rescale it")
    fit.add_argument("--input", required=True)
    fit.add_argument("--format", choices=available_formats(),
                     default="adj6")
    fit.add_argument("--vertices", type=int, required=True,
                     help="|V| of the input graph (power of two)")
    fit.add_argument("--rescale", type=int, default=None,
                     help="target scale: also generate a scaled graph")
    fit.add_argument("--output", default=None,
                     help="output file for the rescaled graph")
    fit.add_argument("--seed", type=int, default=0)
    return parser


def _parse_matrix(text: str | None) -> SeedMatrix | None:
    if text is None:
        return None
    values = [float(x) for x in text.split(",")]
    if len(values) != 4:
        raise SystemExit("--matrix expects exactly four values a,b,c,d")
    return SeedMatrix.rmat(*values)


def _cmd_generate(args: argparse.Namespace) -> int:
    cluster = None
    if args.machines * args.threads > 1:
        cluster = ClusterSpec(machines=args.machines,
                              threads_per_machine=args.threads)
    retry = None
    if args.retries is not None or args.task_timeout is not None:
        from .dist import RetryPolicy
        retry = RetryPolicy(
            retries=args.retries if args.retries is not None else 3,
            task_timeout=args.task_timeout)
    if args.sanitize_trace is not None:
        from .sanitize import enable_sanitize, reset_sanitizer
        enable_sanitize(True)
        reset_sanitizer()
    tg = TrillionG(args.scale, args.edge_factor,
                   _parse_matrix(args.matrix), noise=args.noise,
                   engine=args.engine, sampler=args.sampler,
                   bundle_depth=args.bundle_depth, seed=args.seed,
                   cluster=cluster, retry=retry,
                   flight=args.flight,
                   serve_telemetry=args.serve_telemetry)
    reporter = None
    if args.progress:
        from .telemetry import ProgressReporter
        reporter = ProgressReporter(total_edges=tg.num_edges)
    result = tg.generate_to(args.output, fmt=args.format,
                            resume=args.resume,
                            blocks_per_chunk=args.blocks_per_chunk,
                            progress=reporter)
    if reporter is not None:
        reporter.finish()
    if args.metrics_out is not None:
        from .telemetry import write_json_report
        write_json_report(args.metrics_out, result.telemetry)
    if args.trace_out is not None:
        if result.telemetry is None:
            print("--trace-out skipped: telemetry is disabled "
                  "(TRILLIONG_TELEMETRY=0)", file=sys.stderr)
        else:
            from .telemetry.traceview import write_trace as _write_chrome
            _write_chrome(args.trace_out, result.telemetry,
                          label=f"trilliong scale={args.scale}")
            print(f"chrome trace -> {args.trace_out}")
    if args.sanitize_trace is not None:
        from .sanitize import write_trace
        write_trace(args.sanitize_trace)
        print(f"sanitizer trace -> {args.sanitize_trace}")
    print(f"generated |V|={result.num_vertices} "
          f"|E|={result.num_edges} "
          f"bytes={result.bytes_written} "
          f"elapsed={result.elapsed_seconds:.2f}s "
          f"skew={result.skew:.3f} "
          f"edges/s={result.edges_per_second:,.0f} "
          f"MB/s={result.bytes_per_second / 2**20:.1f} "
          f"(encode={result.encode_seconds:.2f}s "
          f"write={result.write_seconds:.2f}s)")
    for p in result.paths:
        print(f"  {p}")
    return 0


def _cmd_rich(args: argparse.Namespace) -> int:
    if args.config is not None:
        from .rich_graph import load_config
        config = load_config(args.config)
    else:
        from .rich_graph import builtin_schema
        config = builtin_schema(args.schema, args.vertices, args.edges)
    if args.dump_config is not None:
        from .rich_graph import save_config
        save_config(config, args.dump_config)
    generator = RichGraphGenerator(config, seed=args.seed)
    count = generator.write_ntriples(args.output)
    print(f"generated rich graph: |V|={config.num_vertices} "
          f"triples={count} -> {args.output}")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from .validate import validate_edges
    edges = _load_edges(args)
    seed_matrix = _parse_matrix(args.matrix)
    if seed_matrix is None:
        from .core.seed import GRAPH500
        seed_matrix = GRAPH500
    report = validate_edges(edges, args.vertices,
                            seed_matrix=seed_matrix,
                            expected_edges=args.expected_edges)
    print(report)
    return 0 if report.ok else 1


def _load_edges(args: argparse.Namespace) -> np.ndarray:
    fmt = get_format(args.format)
    return fmt.read_edges(args.input)


def _cmd_stats(args: argparse.Namespace) -> int:
    edges = _load_edges(args)
    num_vertices = args.vertices
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if edges.size else 0
    print(graph_stats(edges, num_vertices))
    return 0


def _cmd_degrees(args: argparse.Namespace) -> int:
    edges = _load_edges(args)
    num_vertices = int(edges.max()) + 1 if edges.size else 0
    seq = (out_degrees(edges, num_vertices) if args.direction == "out"
           else in_degrees(edges, num_vertices))
    hist = degree_histogram(seq)
    print("degree\tcount")
    for d, c in zip(hist.degrees, hist.counts):
        print(f"{d}\t{c}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    src = get_format(args.from_format)
    dst = get_format(args.to_format)
    edges = src.read_edges(args.input)
    num_vertices = int(edges.max()) + 1 if edges.size else 1
    result = dst.write_edges(args.output, edges, num_vertices)
    print(f"converted {args.input} ({args.from_format}) -> "
          f"{result.path} ({args.to_format}), {result.num_edges} edges")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    series = {
        "11a": figure11a_series,
        "11b": figure11b_series,
        "12": figure12_series,
        "14": figure14_series,
    }[args.figure]()
    print("model\tscale\telapsed_s\tpeak_mem_MB\tconstruct_ratio")
    for row in series:
        mem = row.peak_memory_bytes / 2**20
        print(f"{row.model}\t{row.scale}\t{row.cell()}\t{mem:.0f}\t"
              f"{row.construction_ratio:.2f}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from .dist import merge_parts
    result = merge_parts(args.parts, args.vertices, args.output,
                         in_format=args.in_format,
                         out_format=args.out_format)
    print(f"merged {len(args.parts)} parts: |E|={result.num_edges} "
          f"-> {result.path}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from dataclasses import replace as _replace

    from .cluster import PAPER_CLUSTER, capacity_report, machines_needed
    cluster = _replace(PAPER_CLUSTER, machines=args.machines)
    budget = args.hours * 3600 if args.hours is not None else None
    report = capacity_report(cluster, budget)
    print(f"cluster: {cluster.machines} machines x "
          f"{cluster.threads_per_machine} threads, "
          f"{cluster.network.name}")
    if budget is not None:
        print(f"time budget: {args.hours:g} h")
    for method, scale in sorted(report.max_scales.items()):
        cell = scale if scale is not None else "infeasible"
        print(f"  {method:18s} max scale {cell}")
    print(f"best method: {report.winner()}")
    if args.target_scale is not None:
        needed = machines_needed(args.target_scale, base=cluster,
                                 time_budget_seconds=budget)
        print(f"machines needed for scale {args.target_scale}: "
              f"{needed if needed is not None else 'beyond limit'}")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    from .models import ALL_MODELS
    from .models.base import StreamingDedupMixin
    try:
        cls = ALL_MODELS[args.model]
    except KeyError:
        raise SystemExit(
            f"unknown model {args.model!r}; available: "
            f"{sorted(ALL_MODELS)}")
    streaming = isinstance(cls, type) and issubclass(cls,
                                                     StreamingDedupMixin)
    extra: dict = {}
    if args.fan_in is not None or args.spill_chunk is not None:
        if not streaming:
            raise SystemExit(
                "--fan-in/--spill-chunk apply only to the disk-based "
                "(external-sort) models")
        if args.fan_in is not None:
            extra["fan_in"] = args.fan_in
        if args.spill_chunk is not None:
            extra["spill_chunk"] = args.spill_chunk
    generator = cls(args.scale, args.edge_factor, seed=args.seed, **extra)
    if streaming:
        # Disk models stream spill -> merge -> format writer end to end:
        # bounded memory, so the graph may be larger than RAM.
        result = generator.write_to(args.output, fmt=args.format)
    else:
        edges = generator.generate()
        fmt = get_format(args.format)
        result = fmt.write_edges(args.output, edges,
                                 generator.num_vertices)
    report = generator.report
    print(f"{cls.name}: |E|={result.num_edges} "
          f"dup={report.duplicates_discarded} "
          f"elapsed={report.elapsed_seconds:.2f}s -> {result.path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import (clustering_coefficient_sampled,
                           effective_diameter, fit_kronecker_class_slope,
                           oscillation_score, reciprocity)
    edges = _load_edges(args)
    n = args.vertices
    degs = out_degrees(edges, n)
    print(graph_stats(edges, n))
    try:
        print(f"zipf class slope : {fit_kronecker_class_slope(degs):.3f}")
    except ValueError:
        print("zipf class slope : n/a")
    print(f"oscillation      : {oscillation_score(degs):.3f}")
    print(f"reciprocity      : {reciprocity(edges, n):.3f}")
    print(f"clustering (est.): "
          f"{clustering_coefficient_sampled(edges, n, 2000):.3f}")
    print(f"eff. diameter    : "
          f"{effective_diameter(edges, n, samples=8):.2f}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (EXPERIMENTS, available_experiments,
                              run_experiment)
    if args.list or args.experiment_id is None:
        for exp_id in available_experiments():
            print(f"{exp_id:18s} {EXPERIMENTS[exp_id][0]}")
        return 0
    rows = run_experiment(args.experiment_id)
    if not rows:
        print("(no rows)")
        return 0
    headers = list(rows[0])
    widths = [max(len(h), max(len(str(r[h])) for r in rows))
              for h in headers]
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(str(r[h]).ljust(w)
                        for h, w in zip(headers, widths)))
    return 0


def _cmd_nary(args: argparse.Namespace) -> int:
    import math

    from .core.nary import NAryRecursiveVectorGenerator
    values = [float(x) for x in args.matrix.split(",")]
    order = math.isqrt(len(values))
    if order * order != len(values) or order < 2:
        raise SystemExit(
            "--matrix expects n*n entries for some n >= 2 "
            f"(got {len(values)})")
    seed_matrix = SeedMatrix(np.array(values).reshape(order, order))
    generator = NAryRecursiveVectorGenerator(
        seed_matrix, args.depth, num_edges=args.edges, seed=args.seed)
    edges = generator.edges()
    fmt = get_format(args.format)
    result = fmt.write_edges(args.output, edges, generator.num_vertices)
    print(f"generated n-ary graph: n={order} |V|={generator.num_vertices} "
          f"|E|={result.num_edges} -> {result.path}")
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from .fit import GraphScaler
    fmt = get_format(args.format)
    edges = fmt.read_edges(args.input)
    scaler = GraphScaler.fit(edges, args.vertices)
    seed = scaler.seed_matrix
    print(f"fitted seed matrix: "
          f"[{seed.alpha:.4f}, {seed.beta:.4f}; "
          f"{seed.gamma:.4f}, {seed.delta:.4f}]")
    print(f"edge factor: {scaler.fit_result.edge_factor:.2f}   "
          f"out-slope: {seed.out_zipf_slope():.3f}   "
          f"in-slope: {seed.in_zipf_slope():.3f}")
    if args.rescale is not None:
        if args.output is None:
            raise SystemExit("--rescale requires --output")
        generator = scaler.generator(args.rescale, seed=args.seed)
        result = fmt.write_blocks(args.output, generator.iter_blocks(),
                                  generator.num_vertices)
        print(f"rescaled to scale {args.rescale}: "
              f"{result.num_edges} edges -> {result.path}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "fit": _cmd_fit,
    "nary": _cmd_nary,
    "experiment": _cmd_experiment,
    "baseline": _cmd_baseline,
    "plan": _cmd_plan,
    "merge": _cmd_merge,
    "analyze": _cmd_analyze,
    "verify": _cmd_verify,
    "rich": _cmd_rich,
    "stats": _cmd_stats,
    "degrees": _cmd_degrees,
    "convert": _cmd_convert,
    "simulate": _cmd_simulate,
}


def main(argv: list[str] | None = None) -> int:
    from .telemetry import configure_logging
    configure_logging()
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
