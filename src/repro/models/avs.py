"""TrillionG as a scope-based model (AVS) — adapter over the core engine.

Wraps :class:`repro.core.generator.RecursiveVectorGenerator` in the
:class:`~repro.models.base.ScopeBasedGenerator` interface so it can be
compared head-to-head with the WES/AES baselines in the benchmark harness.
``TrillionGSeqGenerator`` is the single-threaded variant the paper calls
TrillionG/seq (Figure 11(a)).
"""

from __future__ import annotations

import numpy as np

from ..core.generator import IdeaToggles, RecursiveVectorGenerator
from .base import Complexity, ScopeBasedGenerator

__all__ = ["TrillionGSeqGenerator"]


class TrillionGSeqGenerator(ScopeBasedGenerator):
    """Single-threaded TrillionG (the recursive vector model, AVS)."""

    name = "TrillionG/seq"
    complexity = Complexity("O(|E| log|V| / P)", "O(d_max)", "AVS")

    def __init__(self, *args, noise: float = 0.0, engine: str = "vectorized",
                 ideas: IdeaToggles | None = None, block_size: int = 4096,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.inner = RecursiveVectorGenerator(
            self.scale, seed_matrix=self.seed_matrix,
            num_edges=self.num_edges, noise=noise, engine=engine,
            ideas=ideas, seed=self.seed, block_size=block_size)

    def estimated_peak_bytes(self) -> int:
        """AVS holds one scope (<= d_max destinations) plus RecVec; the
        batched engines hold one block of scopes.  Estimated as the block's
        expected edge mass (upper-bounded by the hub block)."""
        expected_block_edges = (self.num_edges / self.num_vertices
                                * self.inner.block_size)
        # The hub block can be ~|E| * P(0->)-heavy; bound with a 4x margin.
        return int(max(expected_block_edges * 4, 1024) * 8)

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        report = self.report
        with report.time_phase("generate"):
            edges = self.inner.edges()
        report.realized_edges = edges.shape[0]
        report.duplicates_discarded = self.inner.stats.duplicates_discarded
        report.peak_memory_bytes = self.estimated_peak_bytes()
        return edges
