"""Scope-based generators: TrillionG (AVS) and every baseline the paper
evaluates (Section 3, Section 7)."""

from .avs import TrillionGSeqGenerator
from .ba import BarabasiAlbertGenerator
from .base import Complexity, GenerationReport, ScopeBasedGenerator, dedup_edges
from .erdos_renyi import ErdosRenyiGenerator
from .fast_kronecker import FastKroneckerGenerator, fast_kronecker_edge_batch
from .graph500 import Graph500Generator, scramble_vertices
from .kronecker import KroneckerAesGenerator
from .rmat import RmatDiskGenerator, RmatMemGenerator, rmat_edge_batch
from .teg import TegGenerator
from .wesp import WespDiskGenerator, WespMemGenerator

#: Registry of all comparable generators by report name.
ALL_MODELS = {
    cls.name: cls
    for cls in (
        RmatMemGenerator, RmatDiskGenerator, KroneckerAesGenerator,
        FastKroneckerGenerator, WespMemGenerator, WespDiskGenerator,
        TrillionGSeqGenerator, TegGenerator, Graph500Generator,
        BarabasiAlbertGenerator, ErdosRenyiGenerator,
    )
}

__all__ = [
    "TrillionGSeqGenerator", "BarabasiAlbertGenerator", "Complexity",
    "GenerationReport", "ScopeBasedGenerator", "dedup_edges",
    "ErdosRenyiGenerator", "FastKroneckerGenerator",
    "fast_kronecker_edge_batch", "Graph500Generator", "scramble_vertices",
    "KroneckerAesGenerator", "RmatDiskGenerator", "RmatMemGenerator",
    "rmat_edge_batch", "TegGenerator", "WespDiskGenerator",
    "WespMemGenerator", "ALL_MODELS",
]
