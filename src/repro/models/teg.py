"""TeG — the non-stochastic decomposition baseline (Figure 8's foil).

The paper describes TeG as decomposing the adjacency matrix into
submatrices (scopes) whose edge counts are "statically (early) fixed"
instead of drawn stochastically; as a result its degree plot is "far from
RMAT's".  TeG is reproduced with exactly that one change: per-vertex scopes
whose sizes are the deterministic expectation ``round(|E| * P(u->))``
instead of Theorem 1's normal draw.  Destinations within a scope are still
sampled stochastically (so the *in*-degree side stays smooth; the failure
shows on the statically fixed side, as in Figure 8's TeG panel).
"""

from __future__ import annotations

import numpy as np

from ..core.generator import RecursiveVectorGenerator
from .base import Complexity, ScopeBasedGenerator

__all__ = ["TegGenerator"]


class TegGenerator(ScopeBasedGenerator):
    """TeG-style static decomposition generator."""

    name = "TeG"
    complexity = Complexity("O(|E| log|V| / P)", "O(d_max)", "AVS-static")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.inner = RecursiveVectorGenerator(
            self.scale, seed_matrix=self.seed_matrix,
            num_edges=self.num_edges, seed=self.seed,
            degree_method="deterministic")

    def estimated_peak_bytes(self) -> int:
        return int(max(self.num_edges / self.num_vertices
                       * self.inner.block_size * 4, 1024) * 8)

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        report = self.report
        with report.time_phase("generate"):
            edges = self.inner.edges()
        report.realized_edges = edges.shape[0]
        report.duplicates_discarded = self.inner.stats.duplicates_discarded
        report.peak_memory_bytes = self.estimated_peak_bytes()
        return edges
