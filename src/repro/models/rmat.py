"""RMAT — the WES (Whole Edges Scope) baseline (Section 2.1).

RMAT generates each edge by ``log2(|V|)`` recursive quadrant selections over
the whole adjacency matrix and keeps every generated edge in memory to
eliminate duplicates, giving O(|E| log|V|) time and O(|E|) space (Table 1).

Two variants are provided, matching Figure 11(a)'s bars:

- :class:`RmatMemGenerator` — in-memory duplicate elimination (the default
  RMAT); subject to the memory budget (O.O.M past the budget).
- :class:`RmatDiskGenerator` — duplicates eliminated by external sort on
  disk, trading memory for I/O (the paper measures it ~18.5x slower than
  TrillionG/seq).
"""

from __future__ import annotations

import tempfile
from typing import Iterator

import numpy as np

from ..errors import GenerationError
from ..util.external_sort import DEFAULT_FAN_IN
from ..util.spill import SpillStore
from .base import (BYTES_PER_EDGE_IN_MEMORY, Complexity, ScopeBasedGenerator,
                   StreamingDedupMixin, dedup_edges)

__all__ = ["rmat_edge_batch", "RmatMemGenerator", "RmatDiskGenerator"]

_TAG_EDGES = 1
_MAX_ROUNDS = 200


def rmat_edge_batch(seed_matrix, levels: int, count: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` edges by recursive quadrant selection (may repeat).

    Vectorized over edges: each of the ``levels`` recursion steps draws one
    uniform per edge and picks a quadrant, appending one bit to the source
    and one to the destination — exactly the Figure 1(b) process, batched.
    """
    cum = np.cumsum(seed_matrix.entries.ravel())[:-1]
    u = np.zeros(count, dtype=np.int64)
    v = np.zeros(count, dtype=np.int64)
    for _ in range(levels):
        r = rng.random(count)
        quadrant = np.searchsorted(cum, r, side="right")
        u = (u << 1) | (quadrant >> 1)
        v = (v << 1) | (quadrant & 1)
    return np.column_stack([u, v])


class RmatMemGenerator(ScopeBasedGenerator):
    """RMAT with in-memory duplicate elimination (WES)."""

    name = "RMAT-mem"
    complexity = Complexity("O(|E| log|V|)", "O(|E|)", "WES")

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        rng = self.rng(_TAG_EDGES)
        report = self.report
        keys = np.empty(0, dtype=np.int64)
        shortfall = self.num_edges
        with report.time_phase("generate"):
            for _ in range(_MAX_ROUNDS):
                batch = rmat_edge_batch(self.seed_matrix, self.scale,
                                        shortfall, rng)
                new = np.sort(self.pack_edges(batch))
                merged = np.sort(np.concatenate([keys, new]))
                keep = np.empty(merged.size, dtype=bool)
                keep[0] = True
                np.not_equal(merged[1:], merged[:-1], out=keep[1:])
                unique = merged[keep]
                report.duplicates_discarded += merged.size - unique.size
                keys = unique
                shortfall = self.num_edges - keys.size
                if shortfall <= 0:
                    break
            else:
                raise GenerationError(
                    "RMAT failed to collect |E| distinct edges")
        report.realized_edges = keys.size
        report.peak_memory_bytes = keys.size * BYTES_PER_EDGE_IN_MEMORY
        return self.unpack_edges(keys)


class RmatDiskGenerator(StreamingDedupMixin):
    """RMAT with external-sort duplicate elimination (WES, disk-based).

    Generates ``|E| * (1 + epsilon)`` candidate edges in bounded-memory
    batches, spills sorted runs to disk (atomically, see
    :mod:`repro.util.spill`), and streams the multi-pass bounded-fan-in
    merge with duplicates dropped.  Peak memory is
    ``O(fan_in * spill_chunk)`` keys end to end — never the edge set —
    so :meth:`write_to` can produce graphs larger than RAM.
    """

    name = "RMAT-disk"
    complexity = Complexity("O(|E| log|V|) + sort(|E|)", "O(batch)", "WES")

    def __init__(self, *args, batch_edges: int = 1 << 18,
                 epsilon: float = 0.01, spill_dir: str | None = None,
                 fan_in: int = DEFAULT_FAN_IN,
                 spill_chunk: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.batch_edges = batch_edges
        self.epsilon = epsilon
        self.spill_dir = spill_dir
        self.fan_in = fan_in
        #: Keys per merge-read chunk; defaults to one generation batch.
        self.spill_chunk = spill_chunk

    def estimated_peak_bytes(self) -> int:
        return self.batch_edges * BYTES_PER_EDGE_IN_MEMORY

    def iter_unique_key_chunks(self) -> Iterator[np.ndarray]:
        self.check_memory_budget()
        rng = self.rng(_TAG_EDGES)
        report = self.report
        target = int(self.num_edges * (1 + self.epsilon))
        chunk_items = self.spill_chunk or self.batch_edges
        with tempfile.TemporaryDirectory(dir=self.spill_dir) as tmp:
            store = SpillStore(tmp)
            produced = 0
            with report.time_phase("generate"):
                while produced < target:
                    count = min(self.batch_edges, target - produced)
                    batch = rmat_edge_batch(self.seed_matrix, self.scale,
                                            count, rng)
                    store.add_run(np.sort(self.pack_edges(batch)))
                    produced += count
            emitted = 0
            with report.time_phase("external_sort"):
                for chunk in store.iter_unique(chunk_items=chunk_items,
                                               fan_in=self.fan_in):
                    emitted += int(chunk.size)
                    yield chunk
        report.duplicates_discarded = produced - emitted
        report.realized_edges = emitted
        report.peak_memory_bytes = self.estimated_peak_bytes()
