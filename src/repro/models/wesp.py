"""WES/p — the merge-based parallel RMAT variant (Section 3.2, Algorithm 3).

``P`` workers each generate ``|E|/P * (1 + epsilon)`` edges over the *whole*
adjacency matrix, then all edges are shuffled by a hash of the edge key and
each worker merge-deduplicates its incoming partition.  This is the paper's
RMAT/p baseline (their own distributed implementation used in Figure 11(b)).

Two duplicate-elimination variants, as in the paper:

- :class:`WespMemGenerator` — in-memory merge (fails the memory budget for
  graphs whose per-worker partition exceeds it, and suffers partition skew);
- :class:`WespDiskGenerator` — external sort per partition.

This module executes the P logical workers within one process (the data
movement and merge work is identical); :mod:`repro.dist.runner` runs the
same dataflow across real processes.
"""

from __future__ import annotations

import tempfile
from typing import Iterator

import numpy as np

from ..util.external_sort import DEFAULT_FAN_IN
from ..util.shuffle import hash_partition
from ..util.spill import SpillStore
from .base import (BYTES_PER_EDGE_IN_MEMORY, Complexity, ScopeBasedGenerator,
                   StreamingDedupMixin)
from .rmat import rmat_edge_batch

__all__ = ["WespMemGenerator", "WespDiskGenerator"]

_TAG_WORKER = 7


class _WespBase(ScopeBasedGenerator):
    """Shared generate/shuffle phases of WES/p."""

    def __init__(self, *args, num_workers: int = 4, epsilon: float = 0.01,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.epsilon = epsilon

    def _generate_local_sets(self) -> list[np.ndarray]:
        """Algorithm 3 lines 1-6: each worker's local (deduplicated) edge
        key set of target size |E|/P * (1 + epsilon)."""
        per_worker = int(np.ceil(self.num_edges / self.num_workers
                                 * (1 + self.epsilon)))
        local_sets = []
        for worker in range(self.num_workers):
            rng = self.rng(_TAG_WORKER, worker)
            batch = rmat_edge_batch(self.seed_matrix, self.scale,
                                    per_worker, rng)
            keys = np.sort(self.pack_edges(batch))
            keep = np.empty(keys.size, dtype=bool)
            keep[0] = True
            np.not_equal(keys[1:], keys[:-1], out=keep[1:])
            unique = keys[keep]
            self.report.duplicates_discarded += keys.size - unique.size
            local_sets.append(unique)
        return local_sets

    def _shuffle(self, local_sets: list[np.ndarray]) -> list[np.ndarray]:
        """Algorithm 3 line 7: hash-shuffle local sets across workers.

        Returns per-destination-worker partitions; also records the skew
        the paper blames for WES/p's scaling wall.
        """
        partitions: list[list[np.ndarray]] = [
            [] for _ in range(self.num_workers)]
        for keys in local_sets:
            parts = hash_partition(keys, self.num_workers)
            for w, part in enumerate(parts):
                partitions[w].append(part)
        merged = [np.concatenate(parts) if parts else
                  np.empty(0, dtype=np.int64) for parts in partitions]
        sizes = np.array([m.size for m in merged], dtype=np.float64)
        if sizes.sum() > 0:
            self.report.phase_seconds.setdefault("shuffle", 0.0)
            self.skew = float(sizes.max() / max(sizes.mean(), 1.0))
        else:
            self.skew = 1.0
        return merged


class WespMemGenerator(_WespBase):
    """WES/p with in-memory merge (the paper's RMAT/p-mem)."""

    name = "RMAT/p-mem"
    complexity = Complexity(
        "O(|E| log|V| / P) + T_shuffle + T_merge", "O(|E| / P)", "WES/p")

    def estimated_peak_bytes(self) -> int:
        # The largest post-shuffle partition must fit in one worker.  With
        # hashing the expectation is |E|/P, but skew pushes it higher; use
        # the expectation for the up-front check (skew shows up in results).
        return int(self.num_edges / self.num_workers
                   * BYTES_PER_EDGE_IN_MEMORY)

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        report = self.report
        with report.time_phase("generate"):
            local_sets = self._generate_local_sets()
        with report.time_phase("shuffle"):
            partitions = self._shuffle(local_sets)
        with report.time_phase("merge"):
            merged_parts = []
            peak = 0
            for part in partitions:
                keys = np.sort(part)
                if keys.size:
                    keep = np.empty(keys.size, dtype=bool)
                    keep[0] = True
                    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
                    unique = keys[keep]
                    report.duplicates_discarded += keys.size - unique.size
                    merged_parts.append(unique)
                    peak = max(peak, keys.size * BYTES_PER_EDGE_IN_MEMORY)
        keys = np.sort(np.concatenate(merged_parts)) if merged_parts \
            else np.empty(0, dtype=np.int64)
        report.realized_edges = keys.size
        report.peak_memory_bytes = peak
        return self.unpack_edges(keys)


class WespDiskGenerator(StreamingDedupMixin, _WespBase):
    """WES/p with external-sort merge (the paper's RMAT/p-disk).

    Every partition's batches are spilled as sorted runs and *one*
    global bounded-fan-in merge streams the deduplicated union — the
    sorted union over all partitions equals the sorted union over all
    local sets, so the output is identical to
    :class:`WespMemGenerator` while peak merge memory stays at
    ``O(fan_in * spill_chunk)`` keys.
    """

    name = "RMAT/p-disk"
    complexity = Complexity(
        "O(|E| log|V| / P) + T_shuffle + sort(|E|/P)", "O(batch)", "WES/p")

    def __init__(self, *args, batch_edges: int = 1 << 18,
                 spill_dir: str | None = None,
                 fan_in: int = DEFAULT_FAN_IN,
                 spill_chunk: int | None = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.batch_edges = batch_edges
        self.spill_dir = spill_dir
        self.fan_in = fan_in
        #: Keys per merge-read chunk; defaults to one spill batch.
        self.spill_chunk = spill_chunk

    def estimated_peak_bytes(self) -> int:
        return self.batch_edges * BYTES_PER_EDGE_IN_MEMORY

    def iter_unique_key_chunks(self) -> Iterator[np.ndarray]:
        self.check_memory_budget()
        report = self.report
        chunk_items = self.spill_chunk or self.batch_edges
        with report.time_phase("generate"):
            local_sets = self._generate_local_sets()
        with report.time_phase("shuffle"):
            partitions = self._shuffle(local_sets)
        del local_sets
        before = sum(int(p.size) for p in partitions)
        emitted = 0
        with tempfile.TemporaryDirectory(dir=self.spill_dir) as tmp:
            with report.time_phase("merge"):
                store = SpillStore(tmp)
                for part in partitions:
                    for j in range(0, part.size, self.batch_edges):
                        store.add_run(np.sort(part[j:j + self.batch_edges]))
                del partitions
                for chunk in store.iter_unique(chunk_items=chunk_items,
                                               fan_in=self.fan_in):
                    emitted += int(chunk.size)
                    yield chunk
        report.duplicates_discarded += before - emitted
        report.realized_edges = emitted
        report.peak_memory_bytes = self.estimated_peak_bytes()
