"""Graph500-style generator — Appendix D's comparison target.

The Graph500 reference generator (a) follows the noisy SKG (NSKG) process,
(b) *scrambles* vertex IDs with a perfect hash so consecutive IDs do not
share degree structure (avoiding the workload skew RMAT/p suffers), and
(c) hands the edge list to a CSR-like *construction* step whose shuffle and
conversion dominate its runtime at scale (>90% per Figure 14(b)).

This model reproduces all three stages with separate phase timings so the
Figure 14(b) construction-overhead ratio is measurable.  It is in-memory
only, like the benchmark ("inherently an in-memory framework"), so it is
subject to the memory budget and OOMs past ~scale 30 on the paper's
hardware.
"""

from __future__ import annotations

import numpy as np

from ..core.generator import RecursiveVectorGenerator
from .base import (BYTES_PER_EDGE_IN_MEMORY, Complexity, ScopeBasedGenerator)

__all__ = ["Graph500Generator", "scramble_vertices"]


def scramble_vertices(vertices: np.ndarray, scale: int,
                      salt: int = 0x5851F42D) -> np.ndarray:
    """Bijective pseudo-random relabelling of vertex IDs on
    ``[0, 2**scale)``.

    Graph500 scrambles IDs via perfect hashing so that the heavy rows of
    the Kronecker matrix land on arbitrary machines.  Two rounds of
    (odd-multiplier affine, xorshift) are each bijective mod ``2**scale``,
    so their composition is a permutation with good mixing.
    """
    mask = np.uint64((1 << scale) - 1)
    a = np.uint64(0x9E3779B97F4A7C15 | 1)   # odd => invertible mod 2^scale
    x = np.asarray(vertices, dtype=np.uint64) & mask
    for round_salt in (salt, salt ^ 0xA5A5A5A5):
        x = (x * a + np.uint64(round_salt)) & mask
        if scale > 1:
            # xorshift by >= scale/2 bits is an involution-free bijection
            # on scale-bit words.
            x ^= x >> np.uint64((scale + 1) // 2)
            x &= mask
    return x.astype(np.int64)


class Graph500Generator(ScopeBasedGenerator):
    """NSKG generation + vertex scramble + CSR construction."""

    name = "Graph500"
    complexity = Complexity("O(|E| log|V| / P) + T_construct",
                            "O(|E|)", "WES/p+scramble")

    def __init__(self, *args, noise: float = 0.1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.noise = noise
        self.inner = RecursiveVectorGenerator(
            self.scale, seed_matrix=self.seed_matrix,
            num_edges=self.num_edges, noise=noise, seed=self.seed)
        self.csr: tuple[np.ndarray, np.ndarray] | None = None

    def estimated_peak_bytes(self) -> int:
        # Edge list + CSR arrays all live in memory during construction.
        return self.num_edges * BYTES_PER_EDGE_IN_MEMORY * 2

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        report = self.report
        with report.time_phase("generate"):
            edges = self.inner.edges()
        with report.time_phase("scramble"):
            scrambled = np.column_stack([
                scramble_vertices(edges[:, 0], self.scale),
                scramble_vertices(edges[:, 1], self.scale)])
        with report.time_phase("construct"):
            self.csr = self._build_csr(scrambled)
        report.realized_edges = scrambled.shape[0]
        report.duplicates_discarded = self.inner.stats.duplicates_discarded
        report.peak_memory_bytes = self.estimated_peak_bytes()
        return scrambled

    def _build_csr(self, edges: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
        """The construction step: sort by source and build index arrays.

        This models Graph500's shuffle + CSR conversion, whose cost the
        paper shows dwarfs generation (>90% of runtime at scale 29).
        """
        order = np.argsort(edges[:, 0] * np.int64(self.num_vertices)
                           + edges[:, 1], kind="stable")
        sorted_edges = edges[order]
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        counts = np.bincount(sorted_edges[:, 0],
                             minlength=self.num_vertices)
        np.cumsum(counts, out=indptr[1:])
        return indptr, sorted_edges[:, 1].copy()

    def construction_overhead_ratio(self) -> float:
        """Fraction of total time spent in scramble + construction
        (the Figure 14(b) metric)."""
        phases = self.report.phase_seconds
        total = sum(phases.values())
        if total == 0:
            return 0.0
        return (phases.get("scramble", 0.0)
                + phases.get("construct", 0.0)) / total
