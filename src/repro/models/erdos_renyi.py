"""Erdős–Rényi random graphs (related work, Section 8).

G(n, M)-style: |E| distinct uniformly random directed edges.  The paper
notes ER is exactly the RMAT model with the uniform seed
``alpha = beta = gamma = delta = 0.25``; a test verifies the equivalence.
"""

from __future__ import annotations

import numpy as np

from ..errors import GenerationError
from .base import (BYTES_PER_EDGE_IN_MEMORY, Complexity, ScopeBasedGenerator)

__all__ = ["ErdosRenyiGenerator"]

_TAG_EDGES = 1
_MAX_ROUNDS = 200


class ErdosRenyiGenerator(ScopeBasedGenerator):
    """Uniform random directed graph with exactly |E| distinct edges."""

    name = "Erdos-Renyi"
    complexity = Complexity("O(|E|)", "O(|E|)", "WES")

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        rng = self.rng(_TAG_EDGES)
        report = self.report
        n = np.int64(self.num_vertices)
        keys = np.empty(0, dtype=np.int64)
        shortfall = self.num_edges
        with report.time_phase("generate"):
            for _ in range(_MAX_ROUNDS):
                new = rng.integers(0, n * n, size=shortfall,
                                   dtype=np.int64)
                merged = np.sort(np.concatenate([keys, new]))
                keep = np.empty(merged.size, dtype=bool)
                keep[0] = True
                np.not_equal(merged[1:], merged[:-1], out=keep[1:])
                unique = merged[keep]
                report.duplicates_discarded += merged.size - unique.size
                keys = unique
                shortfall = self.num_edges - keys.size
                if shortfall <= 0:
                    break
            else:
                raise GenerationError(
                    "Erdos-Renyi failed to collect |E| distinct edges")
        report.realized_edges = keys.size
        report.peak_memory_bytes = keys.size * BYTES_PER_EDGE_IN_MEMORY
        return self.unpack_edges(keys)
