"""The scope-based generation framework (Section 3, Algorithms 1-2).

Every generator in :mod:`repro.models` is an instance of the scope-based
model: it is characterized by its scope shape (WES / AES / AVS), carries the
corresponding time/space complexity (Table 1), and produces the same
stochastic graph family.  The :class:`ScopeBasedGenerator` base class holds
the shared configuration, the Table 1 complexity metadata, and the simulated
memory budget used to reproduce the paper's O.O.M outcomes deterministically.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..contracts import check_seed_matrix
from ..core.rng import stream
from ..core.seed import GRAPH500, SeedMatrix
from ..errors import ConfigurationError, OutOfMemoryError

if TYPE_CHECKING:
    from pathlib import Path

    from ..core.generator import AdjacencyBlock
    from ..formats.base import WriteResult

__all__ = ["Complexity", "GenerationReport", "ScopeBasedGenerator",
           "StreamingDedupMixin", "dedup_edges",
           "BYTES_PER_EDGE_IN_MEMORY"]

#: Working-set bytes per edge for in-memory duplicate elimination: an 8-byte
#: packed key plus hash-set overhead (the constant used for O.O.M checks).
BYTES_PER_EDGE_IN_MEMORY = 16


@dataclass(frozen=True)
class Complexity:
    """Asymptotic complexity row of Table 1."""

    time: str
    space: str
    scope: str  # "WES", "AES", "AVS", or a variant label


@dataclass
class GenerationReport:
    """What a generation run did: realized counts, phase timings, and the
    peak working set (estimated from array sizes, since the experiments at
    paper scale run through the cost model, not psutil)."""

    model: str
    num_vertices: int = 0
    requested_edges: int = 0
    realized_edges: int = 0
    duplicates_discarded: int = 0
    peak_memory_bytes: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Bytes the run wrote to disk (0 for in-memory-only runs).
    bytes_written: int = 0

    @property
    def elapsed_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    @property
    def edges_per_second(self) -> float:
        """Realized edge throughput over all phases (0 when untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.realized_edges / self.elapsed_seconds

    @property
    def bytes_per_second(self) -> float:
        """Output byte throughput over all phases (0 when untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.bytes_written / self.elapsed_seconds

    def time_phase(self, name: str):
        """Context manager recording a named phase's wall time."""
        return _PhaseTimer(self, name)


class _PhaseTimer:
    def __init__(self, report: GenerationReport, name: str) -> None:
        self._report = report
        self._name = name

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = time.perf_counter() - self._start
        phases = self._report.phase_seconds
        phases[self._name] = phases.get(self._name, 0.0) + elapsed


class ScopeBasedGenerator(ABC):
    """Base class for all scope-based generators (Algorithm 1's driver).

    Parameters
    ----------
    scale:
        ``log2(|V|)``.
    edge_factor:
        ``|E| / |V|``; overridden by ``num_edges``.
    seed_matrix:
        Seed probability matrix (Graph500 standard by default).
    seed:
        Master random seed.
    memory_budget:
        Optional byte budget.  Generators whose working set provably
        exceeds it raise :class:`~repro.errors.OutOfMemoryError` up front —
        this reproduces the paper's O.O.M bars (Figures 11, 14) without
        actually exhausting RAM.
    """

    #: Table 1 metadata; subclasses override.
    complexity: Complexity = Complexity("?", "?", "?")
    #: Human-readable model name used in reports and benchmark tables.
    name: str = "abstract"

    def __init__(self, scale: int, edge_factor: int = 16,
                 seed_matrix: SeedMatrix | None = None, *,
                 num_edges: int | None = None,
                 seed: int = 0,
                 memory_budget: int | None = None) -> None:
        if scale < 1:
            raise ConfigurationError("scale must be >= 1")
        self.scale = scale
        self.num_vertices = 1 << scale
        self.num_edges = (num_edges if num_edges is not None
                          else edge_factor * self.num_vertices)
        if self.num_edges < 1:
            raise ConfigurationError("num_edges must be positive")
        self.seed_matrix = (seed_matrix if seed_matrix is not None
                            else GRAPH500)
        check_seed_matrix(self.seed_matrix)
        self.seed = seed
        self.memory_budget = memory_budget
        self.report = GenerationReport(model=self.name,
                                       num_vertices=self.num_vertices,
                                       requested_edges=self.num_edges)

    # ------------------------------------------------------------------

    @abstractmethod
    def generate(self) -> np.ndarray:
        """Generate the graph; returns an ``(m, 2)`` edge array and fills
        ``self.report``."""

    def estimated_peak_bytes(self) -> int:
        """Model-specific peak working set estimate, used for the budget
        check.  Default assumes the full edge set is held in memory (the
        WES behaviour); scope-bounded models override."""
        return self.num_edges * BYTES_PER_EDGE_IN_MEMORY

    def check_memory_budget(self) -> None:
        """Raise :class:`OutOfMemoryError` if this run cannot fit."""
        if self.memory_budget is None:
            return
        required = self.estimated_peak_bytes()
        if required > self.memory_budget:
            raise OutOfMemoryError(
                f"{self.name} needs ~{required / 2**30:.2f} GiB but the "
                f"budget is {self.memory_budget / 2**30:.2f} GiB",
                required_bytes=required,
                budget_bytes=self.memory_budget)

    def rng(self, *labels: int) -> np.random.Generator:
        """Per-purpose random stream (see :mod:`repro.core.rng`)."""
        return stream(self.seed, *labels)

    # ------------------------------------------------------------------

    def pack_edges(self, edges: np.ndarray) -> np.ndarray:
        """Pack ``(u, v)`` rows into sortable int64 keys ``u * |V| + v``."""
        return edges[:, 0] * np.int64(self.num_vertices) + edges[:, 1]

    def unpack_edges(self, keys: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pack_edges` (rows come out source-sorted)."""
        n = np.int64(self.num_vertices)
        return np.column_stack([keys // n, keys % n])


class StreamingDedupMixin(ScopeBasedGenerator):
    """Streaming surface of the disk-based (external-sort) generators.

    Subclasses implement :meth:`iter_unique_key_chunks` — the bounded-RAM
    generate -> spill -> merge pipeline yielding ascending duplicate-free
    packed-key chunks — and inherit the three consumer shapes:

    - :meth:`iter_blocks` regroups the stream into
      :class:`~repro.core.generator.AdjacencyBlock`s (sources never split
      across blocks, so the output is byte-identical to a whole-array
      pass);
    - :meth:`write_to` feeds those blocks straight into a format's
      block-streaming writer — generation to disk without ever holding
      the edge set;
    - :meth:`generate` keeps the historical whole-array contract by
      routing the stream through the engine's explicit terminal
      (:func:`repro.util.external_sort.collect_chunks`).
    """

    @abstractmethod
    def iter_unique_key_chunks(self) -> Iterator[np.ndarray]:
        """Yield the deduplicated edge keys as ascending int64 chunks."""

    def iter_blocks(self) -> Iterator[AdjacencyBlock]:
        from ..formats import blocks_from_sorted_keys
        return blocks_from_sorted_keys(self.iter_unique_key_chunks(),
                                       self.num_vertices)

    def write_to(self, path: Path | str, fmt: str = "adj6") -> WriteResult:
        """Stream the graph into ``path`` with bounded memory.

        Returns the format's :class:`~repro.formats.WriteResult`.
        """
        from ..formats import get_format
        result = get_format(fmt).write_blocks(path, self.iter_blocks(),
                                              self.num_vertices)
        self.report.bytes_written = result.bytes_written
        return result

    def generate(self) -> np.ndarray:
        from ..util.external_sort import collect_chunks
        keys = collect_chunks(self.iter_unique_key_chunks())
        return self.unpack_edges(keys)


def dedup_edges(edges: np.ndarray, num_vertices: int
                ) -> tuple[np.ndarray, int]:
    """Remove repeated edges; returns (unique edges sorted by (u, v),
    number of duplicates removed).  This is Algorithm 2's set-union
    semantics applied in bulk."""
    if edges.shape[0] == 0:
        return edges, 0
    keys = np.sort(edges[:, 0] * np.int64(num_vertices) + edges[:, 1])
    keep = np.empty(keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(keys[1:], keys[:-1], out=keep[1:])
    unique = keys[keep]
    n = np.int64(num_vertices)
    return np.column_stack([unique // n, unique % n]), keys.size - unique.size
