"""FastKronecker — SNAP's RMAT-like Kronecker generator (Section 3.1).

FastKronecker generates each edge by recursive *region* selection with an
``n x n`` seed matrix (``log_n |V|`` recursion steps per edge) and keeps all
edges in memory for duplicate elimination — the same O(|E| log|V|) /
O(|E|) profile as RMAT (Table 1), and equal to RMAT when ``n = 2``.
"""

from __future__ import annotations

import numpy as np

from ..core.seed import SeedMatrix
from ..errors import ConfigurationError, GenerationError
from .base import (BYTES_PER_EDGE_IN_MEMORY, Complexity, ScopeBasedGenerator)

__all__ = ["fast_kronecker_edge_batch", "FastKroneckerGenerator"]

_TAG_EDGES = 1
_MAX_ROUNDS = 200


def fast_kronecker_edge_batch(seed_matrix: SeedMatrix, depth: int,
                              count: int,
                              rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` edges by recursive n x n region selection.

    Each of the ``depth`` steps draws one uniform per edge, picks a cell of
    the seed matrix by inverse CDF over its ``n*n`` flattened entries, and
    appends one base-n digit to the source and destination IDs.
    """
    n = seed_matrix.order
    cum = np.cumsum(seed_matrix.entries.ravel())[:-1]
    u = np.zeros(count, dtype=np.int64)
    v = np.zeros(count, dtype=np.int64)
    for _ in range(depth):
        r = rng.random(count)
        cell = np.searchsorted(cum, r, side="right")
        u = u * n + cell // n
        v = v * n + cell % n
    return np.column_stack([u, v])


class FastKroneckerGenerator(ScopeBasedGenerator):
    """The SNAP FastKronecker baseline (n x n recursive descent, WES)."""

    name = "FastKronecker"
    complexity = Complexity("O(|E| log|V|)", "O(|E|)", "WES")

    def __init__(self, scale: int, edge_factor: int = 16,
                 seed_matrix: SeedMatrix | None = None, **kwargs) -> None:
        super().__init__(scale, edge_factor, seed_matrix, **kwargs)
        order = self.seed_matrix.order
        # |V| = order ** depth must equal 2 ** scale.
        depth = self._depth_for(order)
        self.depth = depth

    def _depth_for(self, order: int) -> int:
        num_vertices = self.num_vertices
        depth = 0
        size = 1
        while size < num_vertices:
            size *= order
            depth += 1
        if size != num_vertices:
            raise ConfigurationError(
                f"|V| = 2^{self.scale} is not a power of the seed order "
                f"{order}; FastKronecker requires |V| = n^k")
        return depth

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        rng = self.rng(_TAG_EDGES)
        report = self.report
        keys = np.empty(0, dtype=np.int64)
        shortfall = self.num_edges
        with report.time_phase("generate"):
            for _ in range(_MAX_ROUNDS):
                batch = fast_kronecker_edge_batch(
                    self.seed_matrix, self.depth, shortfall, rng)
                new = np.sort(self.pack_edges(batch))
                merged = np.sort(np.concatenate([keys, new]))
                keep = np.empty(merged.size, dtype=bool)
                keep[0] = True
                np.not_equal(merged[1:], merged[:-1], out=keep[1:])
                unique = merged[keep]
                report.duplicates_discarded += merged.size - unique.size
                keys = unique
                shortfall = self.num_edges - keys.size
                if shortfall <= 0:
                    break
            else:
                raise GenerationError(
                    "FastKronecker failed to collect |E| distinct edges")
        report.realized_edges = keys.size
        report.peak_memory_bytes = keys.size * BYTES_PER_EDGE_IN_MEMORY
        return self.unpack_edges(keys)
