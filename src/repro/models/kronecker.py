"""Original Kronecker (SKG) — the AES (An Edge Scope) baseline (Section 2.2).

SKG visits *every cell* of the |V| x |V| probability matrix and flips a
Bernoulli coin with the cell's probability — O(|V|^2) time, O(1) space
(Table 1).  The paper could not even measure it ("extremely slow ...
timeout"); it is implemented here both as the complexity reference point
and to verify that AES produces the same graph family as WES/AVS.

The cell sweep is vectorized row by row: the row PMF factorizes over bits
(see :mod:`repro.core.probability`), so each row's |V| probabilities are
materialized with log|V| vector operations.  This keeps the Python-level
cost at O(|V| log|V|) while the work remains the faithful O(|V|^2) cell
sweep.  Usable only at small scales by design.
"""

from __future__ import annotations

import numpy as np

from ..core.process import PlainProcess
from ..errors import ConfigurationError
from .base import Complexity, ScopeBasedGenerator

__all__ = ["KroneckerAesGenerator"]

_TAG_CELLS = 1
_MAX_AES_SCALE = 14


class KroneckerAesGenerator(ScopeBasedGenerator):
    """Cell-by-cell stochastic Kronecker graph generation (AES)."""

    name = "Kronecker-AES"
    complexity = Complexity("O(|V|^2 / P)", "O(1)", "AES")

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.scale > _MAX_AES_SCALE:
            raise ConfigurationError(
                f"AES is O(|V|^2); refusing scale > {_MAX_AES_SCALE} "
                "(this is exactly the scalability wall the paper "
                "identifies)")

    def estimated_peak_bytes(self) -> int:
        # One row of probabilities plus the output edges of that row.
        return self.num_vertices * 8 * 2

    def generate(self) -> np.ndarray:
        """Sweep all cells; cell (u, v) yields an edge with probability
        ``|E| * K[u, v]`` (the expected-|E| calibration Graph500/SKG uses;
        clipped at 1)."""
        self.check_memory_budget()
        rng = self.rng(_TAG_CELLS)
        process = PlainProcess(self.seed_matrix, self.scale)
        report = self.report
        n = self.num_vertices
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        with report.time_phase("generate"):
            for u in range(n):
                bit_probs = process.bit_probabilities(
                    np.array([u], dtype=np.uint64))[0]
                pmf = np.array([1.0])
                for x in range(self.scale):
                    p = bit_probs[x]
                    pmf = np.concatenate([pmf * (1 - p), pmf * p])
                pmf *= float(process.row_probabilities(
                    np.array([u], dtype=np.uint64))[0])
                cell_p = np.minimum(pmf * self.num_edges, 1.0)
                hits = np.nonzero(rng.random(n) < cell_p)[0]
                if hits.size:
                    rows.append(np.full(hits.size, u, dtype=np.int64))
                    cols.append(hits.astype(np.int64))
        if rows:
            edges = np.column_stack([np.concatenate(rows),
                                     np.concatenate(cols)])
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        report.realized_edges = edges.shape[0]
        report.peak_memory_bytes = self.estimated_peak_bytes()
        return edges
