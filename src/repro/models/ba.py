"""Barabási–Albert preferential attachment (related work, Section 8).

Each new vertex attaches ``m`` edges to existing vertices with probability
proportional to their current degree.  Included as the representative of
the preferential-attachment family the paper cites (ROLL generates BA
graphs at billion scale); used by tests to contrast BA's power law with
the Kronecker family's.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .base import Complexity, ScopeBasedGenerator

__all__ = ["BarabasiAlbertGenerator"]

_TAG_ATTACH = 1


class BarabasiAlbertGenerator(ScopeBasedGenerator):
    """BA model via the repeated-endpoint-array trick (O(|E|) time)."""

    name = "Barabasi-Albert"
    complexity = Complexity("O(|E|)", "O(|E|)", "sequential")

    def __init__(self, scale: int, edge_factor: int = 16, *args,
                 **kwargs) -> None:
        super().__init__(scale, edge_factor, *args, **kwargs)
        self.edges_per_vertex = max(self.num_edges // self.num_vertices, 1)
        if self.edges_per_vertex >= self.num_vertices:
            raise ConfigurationError(
                "edge factor too large for BA: m must be < |V|")

    def generate(self) -> np.ndarray:
        self.check_memory_budget()
        rng = self.rng(_TAG_ATTACH)
        report = self.report
        m = self.edges_per_vertex
        n = self.num_vertices
        with report.time_phase("generate"):
            # Endpoint pool: every edge contributes both endpoints, so
            # sampling uniformly from the pool is degree-proportional.
            sources = np.empty(n * m, dtype=np.int64)
            targets = np.empty(n * m, dtype=np.int64)
            pool = np.empty(2 * n * m, dtype=np.int64)
            pool_size = 0
            # Seed clique-ish core: first m+1 vertices connected in a ring.
            count = 0
            for v in range(1, m + 1):
                sources[count] = v
                targets[count] = v - 1
                pool[pool_size:pool_size + 2] = (v, v - 1)
                pool_size += 2
                count += 1
            for v in range(m + 1, n):
                picks = pool[rng.integers(0, pool_size, size=m)]
                # Distinct targets per new vertex (resample collisions).
                picks = np.unique(picks)
                while picks.size < m:
                    extra = pool[rng.integers(0, pool_size,
                                              size=m - picks.size)]
                    picks = np.unique(np.concatenate([picks, extra]))
                picks = picks[:m]
                sources[count:count + m] = v
                targets[count:count + m] = picks
                pool[pool_size:pool_size + m] = v
                pool[pool_size + m:pool_size + 2 * m] = picks
                pool_size += 2 * m
                count += m
        edges = np.column_stack([sources[:count], targets[:count]])
        report.realized_edges = count
        report.peak_memory_bytes = pool.nbytes + edges.nbytes
        return edges
