"""Distribution fitting: Zipf slopes, Gaussian moments, and the
oscillation score that Figure 9 / NSKG is about.

Lemma 6 predicts the Zipf slope of a Kronecker-family degree distribution
directly from the seed parameters; :func:`fit_zipf_slope` measures it from
a generated graph so Table 3 can compare prediction and measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .degree import degree_histogram

__all__ = ["fit_zipf_slope", "fit_kronecker_class_slope", "GaussianFit",
           "fit_gaussian", "oscillation_score"]


def fit_zipf_slope(degree_sequence: np.ndarray,
                   min_rank: int = 1, max_rank_fraction: float = 0.25
                   ) -> float:
    """Least-squares slope of the log-log rank-frequency plot.

    Vertices are ranked by degree (descending); frequency is the degree.
    Lemma 6's derivation holds at ranks ``2^k`` spanning the head of the
    distribution, so the fit covers ranks ``[min_rank, |V+| *
    max_rank_fraction]`` where ``|V+|`` counts vertices of nonzero degree
    (the deep tail flattens due to integer degrees and is excluded, as is
    standard).
    """
    seq = np.sort(np.asarray(degree_sequence, dtype=np.float64))[::-1]
    seq = seq[seq >= 1]
    if seq.size < 4:
        raise ValueError("need at least 4 nonzero degrees to fit a slope")
    max_rank = max(int(seq.size * max_rank_fraction), min_rank + 3)
    max_rank = min(max_rank, seq.size)
    ranks = np.arange(min_rank, max_rank + 1, dtype=np.float64)
    freqs = seq[min_rank - 1:max_rank]
    x = np.log2(ranks)
    y = np.log2(freqs)
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


def fit_kronecker_class_slope(degree_sequence: np.ndarray,
                              min_class_size: int = 8) -> float:
    """Measure Lemma 6's slope the way its derivation defines it.

    Lemma 6 places the popcount-``k`` vertex class at rank ``2^k`` with
    frequency ``(alpha+beta)^(L-k) * (gamma+delta)^k``, so the predicted
    slope ``log2(gamma+delta) - log2(alpha+beta)`` is the per-class decay
    of log-frequency.  Because vertex IDs of the Kronecker family encode
    their class (the popcount of the ID), we can group realized degrees by
    popcount directly and fit ``log2(mean class degree)`` against ``k``.

    ``degree_sequence[u]`` must be indexed by vertex ID (the generator's
    natural output).  Classes with fewer than ``min_class_size`` vertices
    are excluded (their means are too noisy).
    """
    seq = np.asarray(degree_sequence, dtype=np.float64)
    n = seq.size
    if n < 8:
        raise ValueError("need at least 8 vertices")
    classes = np.bitwise_count(np.arange(n, dtype=np.uint64)).astype(
        np.int64)
    num_classes = int(classes.max()) + 1
    sums = np.bincount(classes, weights=seq, minlength=num_classes)
    sizes = np.bincount(classes, minlength=num_classes)
    keep = (sizes >= min_class_size) & (sums > 0)
    ks = np.nonzero(keep)[0]
    if ks.size < 2:
        raise ValueError("not enough populated classes to fit")
    means = sums[keep] / sizes[keep]
    slope, _ = np.polyfit(ks.astype(np.float64), np.log2(means), 1)
    return float(slope)


@dataclass(frozen=True)
class GaussianFit:
    """Moment fit of a degree distribution."""

    mean: float
    std: float
    #: Excess kurtosis; ~0 for a true Gaussian, large for heavy tails.
    excess_kurtosis: float

    @property
    def looks_gaussian(self) -> bool:
        """Heuristic normality check used by the Figure 10 tests: a
        Kronecker Zipfian has excess kurtosis orders of magnitude above a
        Gaussian's."""
        return abs(self.excess_kurtosis) < 1.0


def fit_gaussian(degree_sequence: np.ndarray) -> GaussianFit:
    """Fit mean/std and report excess kurtosis as a shape diagnostic."""
    seq = np.asarray(degree_sequence, dtype=np.float64)
    if seq.size == 0:
        raise ValueError("empty degree sequence")
    mean = float(seq.mean())
    std = float(seq.std())
    if std == 0:
        return GaussianFit(mean, 0.0, 0.0)
    z = (seq - mean) / std
    return GaussianFit(mean, std, float((z ** 4).mean() - 3.0))


def oscillation_score(degree_sequence: np.ndarray, window: int = 5,
                      min_count: int = 30) -> float:
    """RMS residual of the log-log degree plot around its local trend.

    Plain SKG's degree plot oscillates (Figure 9(a)); NSKG noise smooths it
    (Figure 9(c)).  The score is the root-mean-square deviation of
    ``log2(count)`` from a centered moving average over the log-degree
    axis, restricted to degrees with at least ``min_count`` vertices —
    the head of the plot, where the oscillation lives; the sparse tail is
    excluded because its Poisson noise would swamp the signal.
    """
    hist = degree_histogram(degree_sequence)
    keep = hist.counts >= min_count
    degrees = hist.degrees[keep].astype(np.float64)
    counts = hist.counts[keep].astype(np.float64)
    if counts.size < window + 2:
        return 0.0
    y = np.log2(counts)
    kernel = np.ones(window) / window
    trend = np.convolve(y, kernel, mode="valid")
    half = window // 2
    resid = y[half:half + trend.size] - trend
    return float(np.sqrt(np.mean(resid ** 2)))
