"""Whole-graph statistics used by examples, tests, and EXPERIMENTS.md."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .degree import in_degrees, out_degrees

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a directed graph given as an edge array."""

    num_vertices: int
    num_edges: int
    is_simple: bool              # no repeated (u, v) pairs
    max_out_degree: int
    max_in_degree: int
    mean_degree: float
    zero_out_degree_vertices: int
    self_loops: int
    density: float

    def __str__(self) -> str:
        return (f"|V|={self.num_vertices} |E|={self.num_edges} "
                f"simple={self.is_simple} dmax_out={self.max_out_degree} "
                f"dmax_in={self.max_in_degree} "
                f"mean_deg={self.mean_degree:.2f}")


def graph_stats(edges: np.ndarray, num_vertices: int) -> GraphStats:
    """Compute :class:`GraphStats` for an ``(m, 2)`` edge array."""
    edges = np.asarray(edges, dtype=np.int64)
    m = edges.shape[0]
    if m:
        packed = edges[:, 0] * np.int64(num_vertices) + edges[:, 1]
        is_simple = np.unique(packed).size == m
        self_loops = int((edges[:, 0] == edges[:, 1]).sum(dtype=np.int64))
    else:
        is_simple = True
        self_loops = 0
    outs = out_degrees(edges, num_vertices) if m else np.zeros(
        num_vertices, dtype=np.int64)
    ins = in_degrees(edges, num_vertices) if m else np.zeros(
        num_vertices, dtype=np.int64)
    return GraphStats(
        num_vertices=num_vertices,
        num_edges=m,
        is_simple=is_simple,
        max_out_degree=int(outs.max()) if num_vertices else 0,
        max_in_degree=int(ins.max()) if num_vertices else 0,
        mean_degree=m / num_vertices if num_vertices else 0.0,
        zero_out_degree_vertices=int((outs == 0).sum(dtype=np.int64)),
        self_loops=self_loops,
        density=m / (num_vertices ** 2) if num_vertices else 0.0,
    )
