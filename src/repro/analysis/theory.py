"""Closed-form expected degree distribution of the Kronecker family.

Under Theorem 1, the out-degree of a vertex with popcount-``j`` ID is
Binomial(|E|, p_j) with ``p_j = (alpha+beta)^(L-j) (gamma+delta)^j``
(Lemma 1), and there are ``C(L, j)`` such vertices.  The whole graph's
degree distribution is therefore an exact binomial mixture::

    P(deg = k) = sum_j  C(L, j)/|V| * Binom(|E|, p_j)(k)

This module evaluates that mixture (stable log-space binomial PMF, no
scipy dependency), giving the *theory curve* the generated histograms can
be validated against — including the characteristic oscillation that
Figure 9's noise smooths out.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.seed import SeedMatrix

__all__ = ["binomial_pmf", "expected_degree_distribution",
           "expected_degree_ccdf"]


def binomial_pmf(n: int, p: float, ks: np.ndarray) -> np.ndarray:
    """Binomial(n, p) PMF at integer points ``ks``, evaluated in log
    space (stable for the huge ``n`` / tiny ``p`` regime of Theorem 1)."""
    ks = np.asarray(ks, dtype=np.int64)
    if not 0 <= p <= 1:
        raise ValueError("p must be in [0, 1]")
    out = np.zeros(ks.shape, dtype=np.float64)
    valid = (ks >= 0) & (ks <= n)
    if p == 0.0:
        out[valid & (ks == 0)] = 1.0
        return out
    if p == 1.0:
        out[valid & (ks == n)] = 1.0
        return out
    kv = ks[valid]
    k_max = int(kv.max()) if kv.size else 0
    # log C(n, k) accumulated as sum_{i<k} log((n - i) / (i + 1)); avoids
    # the catastrophic cancellation of lgamma(n+1) - lgamma(n-k+1) when n
    # is ~1e9+ (the Theorem 1 regime).
    if k_max >= 1:
        i = np.arange(k_max, dtype=np.float64)
        log_ratio = np.log(n - i) - np.log(i + 1.0)
        log_comb = np.concatenate([[0.0], np.cumsum(log_ratio)])
    else:
        log_comb = np.zeros(1)
    kf = kv.astype(np.float64)
    log_pmf = (log_comb[kv] + kf * math.log(p)
               + (n - kf) * math.log1p(-p))
    out[valid] = np.exp(log_pmf)
    return out


def expected_degree_distribution(seed_matrix: SeedMatrix, scale: int,
                                 num_edges: int,
                                 max_degree: int | None = None
                                 ) -> tuple[np.ndarray, np.ndarray]:
    """Exact expected out-degree distribution of the noiseless model.

    Returns ``(degrees, probabilities)`` where ``probabilities[k]`` is the
    probability a uniformly chosen vertex has out-degree ``degrees[k]``.
    ``max_degree`` truncates the support (default: mean of the heaviest
    class plus 8 standard deviations).
    """
    ab, cd = (float(x) for x in seed_matrix.row_sums())
    num_vertices = 1 << scale
    class_p = np.array([ab ** (scale - j) * cd ** j
                        for j in range(scale + 1)])
    class_weight = np.array(
        [math.comb(scale, j) for j in range(scale + 1)],
        dtype=np.float64) / num_vertices
    if max_degree is None:
        heavy = float(class_p.max())
        mean = num_edges * heavy
        max_degree = int(mean + 8 * math.sqrt(mean * (1 - heavy)) + 10)
        max_degree = min(max_degree, num_vertices)
    ks = np.arange(max_degree + 1)
    pmf = np.zeros(ks.shape, dtype=np.float64)
    for weight, p in zip(class_weight, class_p):
        pmf += weight * binomial_pmf(num_edges, float(p), ks)
    return ks, pmf


def expected_degree_ccdf(seed_matrix: SeedMatrix, scale: int,
                         num_edges: int,
                         max_degree: int | None = None
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Expected complementary CDF, ``P(deg >= d)``."""
    ks, pmf = expected_degree_distribution(seed_matrix, scale, num_edges,
                                           max_degree)
    tail = np.cumsum(pmf[::-1])[::-1]
    return ks, tail
