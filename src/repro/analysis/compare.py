"""Distribution comparison without a scipy dependency.

The correctness experiments (Figure 8: "the three stochastic generators
show the same plots") need a quantitative version of "same plot".  This
module implements the two-sample Kolmogorov-Smirnov test (with the
asymptotic Kolmogorov distribution for p-values) and a pooled two-sample
chi-square statistic on histograms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["KsResult", "ks_two_sample", "chi2_two_sample_statistic",
           "histograms_similar", "loglog_plot_distance"]


@dataclass(frozen=True)
class KsResult:
    statistic: float
    pvalue: float


def _kolmogorov_sf(x: float, terms: int = 100) -> float:
    """Survival function of the Kolmogorov distribution,
    ``Q(x) = 2 * sum_{j>=1} (-1)^(j-1) exp(-2 j^2 x^2)``."""
    if x <= 0:
        return 1.0
    total = 0.0
    for j in range(1, terms + 1):
        term = 2.0 * (-1) ** (j - 1) * math.exp(-2.0 * j * j * x * x)
        total += term
        if abs(term) < 1e-12:
            break
    return min(max(total, 0.0), 1.0)


def ks_two_sample(a: np.ndarray, b: np.ndarray) -> KsResult:
    """Two-sample KS test with the asymptotic p-value."""
    a = np.sort(np.asarray(a, dtype=np.float64))
    b = np.sort(np.asarray(b, dtype=np.float64))
    if a.size == 0 or b.size == 0:
        raise ValueError("empty sample")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    d = float(np.abs(cdf_a - cdf_b).max())
    n_eff = a.size * b.size / (a.size + b.size)
    pvalue = _kolmogorov_sf((math.sqrt(n_eff) + 0.12
                             + 0.11 / math.sqrt(n_eff)) * d)
    return KsResult(d, pvalue)


def chi2_two_sample_statistic(counts_a: np.ndarray, counts_b: np.ndarray,
                              min_expected: float = 5.0
                              ) -> tuple[float, int]:
    """Pooled two-sample chi-square statistic over matched histograms.

    Cells whose pooled expectation falls below ``min_expected`` are
    dropped (standard practice).  Returns ``(statistic, dof)``.
    """
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("histograms must have the same shape")
    na, nb = a.sum(), b.sum()
    if na == 0 or nb == 0:
        raise ValueError("empty histogram")
    pooled = (a + b) / (na + nb)
    expected_a = na * pooled
    expected_b = nb * pooled
    keep = (expected_a >= min_expected) & (expected_b >= min_expected)
    if not keep.any():
        return 0.0, 0
    stat = float((((a[keep] - expected_a[keep]) ** 2 / expected_a[keep])
                  + ((b[keep] - expected_b[keep]) ** 2
                     / expected_b[keep])).sum())
    return stat, int(keep.sum(dtype=np.int64)) - 1


def loglog_plot_distance(degrees_a: np.ndarray, degrees_b: np.ndarray,
                         min_count: int = 20) -> tuple[float, int]:
    """RMS vertical distance between two log-log degree plots.

    This quantifies the paper's Figure 8 criterion — "the three
    generators show the same plots" — the way a reader compares the
    panels: at each degree populated in both graphs (count >=
    ``min_count``), take ``|log2(count_a) - log2(count_b)|`` and return
    the RMS together with the number of comparable degrees.  Distances
    well below 1 mean the plots overlay; a collapsed support (few
    comparable degrees) is itself the TeG failure signature.
    """
    from .degree import degree_histogram

    ha = degree_histogram(np.asarray(degrees_a))
    hb = degree_histogram(np.asarray(degrees_b))
    map_a = {int(d): int(c) for d, c in zip(ha.degrees, ha.counts)
             if c >= min_count}
    map_b = {int(d): int(c) for d, c in zip(hb.degrees, hb.counts)
             if c >= min_count}
    common = sorted(set(map_a) & set(map_b))
    if not common:
        return math.inf, 0
    diffs = [abs(math.log2(map_a[d]) - math.log2(map_b[d]))
             for d in common]
    rms = math.sqrt(sum(x * x for x in diffs) / len(diffs))
    return rms, len(common)


def histograms_similar(counts_a: np.ndarray, counts_b: np.ndarray,
                       threshold: float = 3.0) -> bool:
    """True when the pooled chi-square per degree of freedom is below
    ``threshold`` (a practical similar-plot criterion; chi2/dof ~ 1 for
    identical distributions)."""
    stat, dof = chi2_two_sample_statistic(counts_a, counts_b)
    if dof <= 0:
        return True
    return stat / dof < threshold
