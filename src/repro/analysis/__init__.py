"""Graph property analysis: degree distributions, fitting, comparison."""

from .compare import (KsResult, chi2_two_sample_statistic,
                      histograms_similar, ks_two_sample,
                      loglog_plot_distance)
from .degree import (DegreeHistogram, ccdf, degree_histogram, in_degrees,
                     log_binned_histogram, out_degrees)
from .fitting import (GaussianFit, fit_gaussian, fit_kronecker_class_slope,
                      fit_zipf_slope, oscillation_score)
from .stats import GraphStats, graph_stats
from .theory import (binomial_pmf, expected_degree_ccdf,
                     expected_degree_distribution)
from .structure import (clustering_coefficient_sampled, effective_diameter,
                        pagerank, reciprocity, triangle_count)
from .traversal import (bfs_levels, bfs_parents, build_csr,
                        reachable_count, validate_bfs_parents)
from .transform import (induced_subgraph, permute_vertices, relabel,
                        remove_self_loops, sample_edges, symmetrize,
                        to_networkx)

__all__ = [
    "KsResult", "chi2_two_sample_statistic", "histograms_similar",
    "loglog_plot_distance",
    "ks_two_sample", "DegreeHistogram", "ccdf", "degree_histogram",
    "in_degrees", "log_binned_histogram", "out_degrees", "GaussianFit",
    "fit_gaussian", "fit_zipf_slope", "fit_kronecker_class_slope",
    "oscillation_score", "GraphStats",
    "graph_stats", "induced_subgraph", "permute_vertices", "relabel",
    "remove_self_loops", "sample_edges", "symmetrize", "to_networkx",
    "bfs_levels", "bfs_parents", "build_csr", "reachable_count",
    "clustering_coefficient_sampled", "effective_diameter", "pagerank",
    "reciprocity",
    "triangle_count", "binomial_pmf", "expected_degree_ccdf",
    "expected_degree_distribution",
    "validate_bfs_parents",
]
