"""Degree-distribution utilities for the property experiments (Figs 8-10).

The paper's property plots are log-log degree histograms: X = degree,
Y = number of vertices with that degree.  This module computes those
series, their CCDFs, and logarithmically binned versions (the standard way
to read power laws without tail noise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["out_degrees", "in_degrees", "DegreeHistogram",
           "degree_histogram", "log_binned_histogram", "ccdf"]


def out_degrees(edges: np.ndarray, num_vertices: int) -> np.ndarray:
    """Out-degree of every vertex (including zero-degree vertices)."""
    return np.bincount(edges[:, 0], minlength=num_vertices)


def in_degrees(edges: np.ndarray, num_vertices: int) -> np.ndarray:
    """In-degree of every vertex (including zero-degree vertices)."""
    return np.bincount(edges[:, 1], minlength=num_vertices)


@dataclass(frozen=True)
class DegreeHistogram:
    """A degree-frequency series: ``counts[i]`` vertices have degree
    ``degrees[i]`` (only degrees with nonzero counts appear)."""

    degrees: np.ndarray
    counts: np.ndarray

    @property
    def num_vertices(self) -> int:
        return int(self.counts.sum())

    @property
    def num_edges(self) -> int:
        return int((self.degrees * self.counts).sum())

    def loglog(self) -> tuple[np.ndarray, np.ndarray]:
        """(log2 degree, log2 count) for degrees >= 1."""
        keep = self.degrees >= 1
        return (np.log2(self.degrees[keep].astype(np.float64)),
                np.log2(self.counts[keep].astype(np.float64)))


def degree_histogram(degree_sequence: np.ndarray,
                     drop_zero: bool = True) -> DegreeHistogram:
    """Histogram a degree sequence into the Figure 8 series."""
    seq = np.asarray(degree_sequence, dtype=np.int64)
    if seq.size == 0:
        return DegreeHistogram(np.empty(0, np.int64), np.empty(0, np.int64))
    counts = np.bincount(seq)
    degrees = np.nonzero(counts)[0]
    if drop_zero and degrees.size and degrees[0] == 0:
        degrees = degrees[1:]
    return DegreeHistogram(degrees, counts[degrees])


def log_binned_histogram(degree_sequence: np.ndarray,
                         bins_per_decade: int = 10
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Logarithmically binned degree density.

    Returns (bin centers, vertices-per-unit-degree), the standard
    tail-noise-free way to view a power law.
    """
    seq = np.asarray(degree_sequence, dtype=np.float64)
    seq = seq[seq >= 1]
    if seq.size == 0:
        return np.empty(0), np.empty(0)
    max_degree = seq.max()
    num_bins = max(int(np.ceil(np.log10(max_degree + 1)
                               * bins_per_decade)), 1)
    edges = np.logspace(0, np.log10(max_degree + 1), num_bins + 1)
    counts, _ = np.histogram(seq, bins=edges)
    widths = np.diff(edges)
    centers = np.sqrt(edges[:-1] * edges[1:])
    keep = counts > 0
    return centers[keep], counts[keep] / widths[keep]


def ccdf(degree_sequence: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Complementary CDF: fraction of vertices with degree >= d."""
    hist = degree_histogram(degree_sequence, drop_zero=False)
    if hist.degrees.size == 0:
        return np.empty(0), np.empty(0)
    total = hist.counts.sum()
    tail = np.cumsum(hist.counts[::-1])[::-1]
    return hist.degrees, tail / total
