"""Edge-array transforms downstream consumers need.

The paper's consumers (Graph500 kernels, GraphX queries) post-process the
generated edge list: Graph500 treats the graph as undirected, most
analytics drop self-loops, and the scramble step relabels vertices.  These
are provided here as pure functions over ``(m, 2)`` edge arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["symmetrize", "remove_self_loops", "relabel", "permute_vertices",
           "induced_subgraph", "sample_edges", "to_networkx"]


def _dedup(edges: np.ndarray, num_vertices: int) -> np.ndarray:
    if edges.shape[0] == 0:
        return edges
    keys = np.unique(edges[:, 0] * np.int64(num_vertices) + edges[:, 1])
    n = np.int64(num_vertices)
    return np.column_stack([keys // n, keys % n])


def symmetrize(edges: np.ndarray, num_vertices: int) -> np.ndarray:
    """Undirected view: add the reverse of every edge and deduplicate
    (what Graph500 does before running BFS)."""
    if edges.shape[0] == 0:
        return edges.copy()
    both = np.concatenate([edges, edges[:, ::-1]])
    return _dedup(both, num_vertices)


def remove_self_loops(edges: np.ndarray) -> np.ndarray:
    """Drop ``(v, v)`` edges."""
    if edges.shape[0] == 0:
        return edges.copy()
    return edges[edges[:, 0] != edges[:, 1]]


def relabel(edges: np.ndarray, mapping: np.ndarray) -> np.ndarray:
    """Apply a vertex-ID mapping to both endpoints.

    ``mapping[old_id] = new_id``; the mapping need not be a bijection
    (e.g. coarsening), but duplicates introduced by a non-injective map
    are kept — call :func:`symmetrize`/dedup separately if needed.
    """
    mapping = np.asarray(mapping, dtype=np.int64)
    out = np.empty_like(edges)
    out[:, 0] = mapping[edges[:, 0]]
    out[:, 1] = mapping[edges[:, 1]]
    return out


def permute_vertices(edges: np.ndarray, num_vertices: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Relabel with a uniformly random permutation (a stochastic
    alternative to the Graph500 hash scramble)."""
    return relabel(edges, rng.permutation(num_vertices))


def induced_subgraph(edges: np.ndarray,
                     vertices: np.ndarray) -> np.ndarray:
    """Edges with both endpoints in ``vertices`` (original IDs kept)."""
    if edges.shape[0] == 0:
        return edges.copy()
    keep_set = np.zeros(int(edges.max()) + 1, dtype=bool)
    keep_set[np.asarray(vertices, dtype=np.int64)] = True
    mask = keep_set[edges[:, 0]] & keep_set[edges[:, 1]]
    return edges[mask]


def sample_edges(edges: np.ndarray, fraction: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Uniform edge sample (for quick property estimates on huge files)."""
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    m = edges.shape[0]
    count = max(int(round(m * fraction)), 1) if m else 0
    if count >= m:
        return edges.copy()
    idx = rng.choice(m, size=count, replace=False)
    return edges[np.sort(idx)]


def to_networkx(edges: np.ndarray, num_vertices: int | None = None,
                directed: bool = True):
    """Build a networkx graph (small scales only — networkx is O(n) per
    node in Python objects).  Imported lazily so the core library keeps
    its numpy-only dependency."""
    import networkx as nx

    graph = nx.DiGraph() if directed else nx.Graph()
    if num_vertices is not None:
        graph.add_nodes_from(range(num_vertices))
    graph.add_edges_from(map(tuple, edges.tolist()))
    return graph
