"""CSR construction and traversal kernels (the Graph500 query side).

Graph500 measures generation *and* BFS; GraphX users run queries on the
generated graph.  This module provides the minimal kernel set in
vectorized numpy: CSR construction from an edge array, level-synchronous
BFS with parent output, and the Graph500-style parent-array validation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_csr", "bfs_parents", "bfs_levels", "validate_bfs_parents",
           "reachable_count"]


def build_csr(edges: np.ndarray,
              num_vertices: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort edges by source and return ``(indptr, indices)``."""
    if edges.shape[0]:
        order = np.argsort(edges[:, 0] * np.int64(num_vertices)
                           + edges[:, 1], kind="stable")
        sorted_edges = edges[order]
        counts = np.bincount(sorted_edges[:, 0], minlength=num_vertices)
        indices = sorted_edges[:, 1].copy()
    else:
        counts = np.zeros(num_vertices, dtype=np.int64)
        indices = np.empty(0, dtype=np.int64)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices


def _expand_frontier(indptr: np.ndarray, indices: np.ndarray,
                     frontier: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
    """All (neighbour, source) pairs leaving the frontier."""
    starts = indptr[frontier]
    stops = indptr[frontier + 1]
    degs = stops - starts
    total = int(degs.sum())
    if total == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    # Gather all adjacency slices with one fancy-index expression.
    offsets = np.repeat(starts, degs)
    within = np.arange(total) - np.repeat(
        np.concatenate([[0], np.cumsum(degs)[:-1]]), degs)
    neighbours = indices[offsets + within]
    sources = np.repeat(frontier, degs)
    return neighbours, sources


def bfs_parents(indptr: np.ndarray, indices: np.ndarray, root: int,
                num_vertices: int) -> np.ndarray:
    """Level-synchronous BFS; returns the parent array (-1 = unreached,
    ``parent[root] == root``), the Graph500 output contract."""
    parent = np.full(num_vertices, -1, dtype=np.int64)
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    while frontier.size:
        neighbours, sources = _expand_frontier(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        fresh = parent[neighbours] == -1
        neighbours, sources = neighbours[fresh], sources[fresh]
        if neighbours.size == 0:
            break
        uniq, first = np.unique(neighbours, return_index=True)
        parent[uniq] = sources[first]
        frontier = uniq
    return parent


def bfs_levels(indptr: np.ndarray, indices: np.ndarray, root: int,
               num_vertices: int) -> np.ndarray:
    """BFS distance from the root (-1 = unreached)."""
    level = np.full(num_vertices, -1, dtype=np.int64)
    level[root] = 0
    frontier = np.array([root], dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        neighbours, _ = _expand_frontier(indptr, indices, frontier)
        if neighbours.size == 0:
            break
        fresh = neighbours[level[neighbours] == -1]
        if fresh.size == 0:
            break
        uniq = np.unique(fresh)
        level[uniq] = depth
        frontier = uniq
    return level


def validate_bfs_parents(parent: np.ndarray, root: int,
                         indptr: np.ndarray, indices: np.ndarray,
                         sample: int = 1000) -> bool:
    """Graph500-style spot validation: the root is its own parent and
    sampled parent edges exist in the graph."""
    if parent[root] != root:
        return False
    reached = np.nonzero(parent >= 0)[0]
    step = max(len(reached) // sample, 1)
    for v in reached[::step]:
        if v == root:
            continue
        p = parent[v]
        row = indices[indptr[p]:indptr[p + 1]]
        if v not in row:
            return False
    return True


def reachable_count(parent: np.ndarray) -> int:
    """Vertices reached by the BFS (including the root)."""
    return int((parent >= 0).sum(dtype=np.int64))
