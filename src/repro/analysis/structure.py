"""Structural graph metrics beyond degree distributions.

Realism checks in the Kronecker-graph literature (e.g. Leskovec et al.)
also look at reciprocity, clustering, and triangle counts.  These are
provided vectorized: exact where cheap, wedge-sampling estimates where the
exact computation would not scale.
"""

from __future__ import annotations

import numpy as np

from ..core.rng import stream
from .traversal import build_csr

__all__ = ["reciprocity", "triangle_count", "clustering_coefficient_sampled",
           "pagerank", "effective_diameter"]


def reciprocity(edges: np.ndarray, num_vertices: int) -> float:
    """Fraction of edges whose reverse edge also exists.

    Matches networkx's ``overall_reciprocity``: self-loops count toward
    the edge total but are never considered reciprocated.
    """
    if edges.shape[0] == 0:
        return 0.0
    n = np.int64(num_vertices)
    all_keys = np.unique(edges[:, 0] * n + edges[:, 1])
    proper = edges[edges[:, 0] != edges[:, 1]]
    if proper.shape[0] == 0:
        return 0.0
    forward = np.unique(proper[:, 0] * n + proper[:, 1])
    backward = np.unique(proper[:, 1] * n + proper[:, 0])
    mutual = np.intersect1d(forward, backward, assume_unique=True)
    return mutual.size / all_keys.size


def triangle_count(edges: np.ndarray, num_vertices: int) -> int:
    """Exact undirected triangle count via sorted-adjacency merging.

    O(sum_v d(v)^2) worst case; intended for the small scales where exact
    counts are testable.  Edges are treated as undirected and
    deduplicated first.
    """
    if edges.shape[0] == 0:
        return 0
    n = np.int64(num_vertices)
    both = np.concatenate([edges, edges[:, ::-1]])
    both = both[both[:, 0] != both[:, 1]]
    keys = np.unique(both[:, 0] * n + both[:, 1])
    und = np.column_stack([keys // n, keys % n])
    # Orient each edge from lower to higher degree (standard trick).
    deg = np.bincount(und[:, 0], minlength=num_vertices)
    u, v = und[:, 0], und[:, 1]
    forward = (deg[u] < deg[v]) | ((deg[u] == deg[v]) & (u < v))
    oriented = und[forward]
    indptr, indices = build_csr(oriented, num_vertices)
    count = 0
    for a, b in oriented:
        ra = indices[indptr[a]:indptr[a + 1]]
        rb = indices[indptr[b]:indptr[b + 1]]
        count += np.intersect1d(ra, rb, assume_unique=True).size
    return int(count)


def clustering_coefficient_sampled(edges: np.ndarray, num_vertices: int,
                                   samples: int = 2000,
                                   rng: np.random.Generator | None = None
                                   ) -> float:
    """Wedge-sampling estimate of the global clustering coefficient.

    Samples random wedges (paths a-b-c through a centre b) from the
    undirected view and reports the fraction that close into triangles —
    the unbiased estimator of 3*triangles/wedges.
    """
    if rng is None:
        rng = stream(0)
    if edges.shape[0] == 0:
        return 0.0
    n = np.int64(num_vertices)
    both = np.concatenate([edges, edges[:, ::-1]])
    both = both[both[:, 0] != both[:, 1]]
    keys = np.unique(both[:, 0] * n + both[:, 1])
    und = np.column_stack([keys // n, keys % n])
    indptr, indices = build_csr(und, num_vertices)
    deg = np.diff(indptr)
    wedge_weight = (deg * (deg - 1) // 2).astype(np.float64)
    total_wedges = wedge_weight.sum()
    if total_wedges == 0:
        return 0.0
    centres = rng.choice(num_vertices, size=samples,
                         p=wedge_weight / total_wedges)
    edge_set = set(map(int, keys.tolist()))
    closed = 0
    for b in centres:
        row = indices[indptr[b]:indptr[b + 1]]
        i, j = rng.choice(row.size, size=2, replace=False)
        a, c = int(row[i]), int(row[j])
        if a * int(n) + c in edge_set:
            closed += 1
    return closed / samples


def effective_diameter(edges: np.ndarray, num_vertices: int,
                       percentile: float = 0.9, samples: int = 32,
                       rng: np.random.Generator | None = None) -> float:
    """Sampled effective diameter: the distance within which
    ``percentile`` of reachable pairs lie (undirected view).

    The small effective diameter is one of the realism properties the
    Kronecker-graph literature checks; estimated here from BFS distances
    out of sampled roots (with interpolation between integer hops, the
    standard ANF-style definition).
    """
    from .traversal import bfs_levels
    from .transform import symmetrize

    if not 0 < percentile < 1:
        raise ValueError("percentile must be in (0, 1)")
    if rng is None:
        rng = stream(0)
    if edges.shape[0] == 0:
        return 0.0
    und = symmetrize(edges, num_vertices)
    from .traversal import build_csr
    indptr, indices = build_csr(und, num_vertices)
    candidates = np.nonzero(np.diff(indptr) > 0)[0]
    roots = rng.choice(candidates, size=min(samples, candidates.size),
                       replace=False)
    distances = []
    for root in roots:
        levels = bfs_levels(indptr, indices, int(root), num_vertices)
        reached = levels[levels > 0]
        if reached.size:
            distances.append(reached)
    if not distances:
        return 0.0
    all_d = np.concatenate(distances).astype(np.float64)
    hist = np.bincount(all_d.astype(np.int64))
    cdf = np.cumsum(hist) / all_d.size
    # Interpolate between the two hops bracketing the percentile.
    h = int(np.searchsorted(cdf, percentile))
    if h == 0:
        return float(h)
    lo_mass = cdf[h - 1]
    hi_mass = cdf[h]
    if hi_mass == lo_mass:
        return float(h)
    return float(h - 1 + (percentile - lo_mass) / (hi_mass - lo_mass))


def pagerank(edges: np.ndarray, num_vertices: int, damping: float = 0.85,
             iterations: int = 50, tol: float = 1e-10) -> np.ndarray:
    """Power-iteration PageRank over the directed edge array.

    Dangling nodes distribute their mass uniformly (the standard fix).
    Vectorized with ``np.add.at``; fine up to millions of edges.
    """
    if not 0 < damping < 1:
        raise ValueError("damping must be in (0, 1)")
    n = num_vertices
    rank = np.full(n, 1.0 / n)
    out_deg = np.bincount(edges[:, 0], minlength=n).astype(np.float64) \
        if edges.shape[0] else np.zeros(n)
    dangling = out_deg == 0
    src = edges[:, 0]
    dst = edges[:, 1]
    inv_deg = np.zeros(n)
    inv_deg[~dangling] = 1.0 / out_deg[~dangling]
    for _ in range(iterations):
        contrib = rank * inv_deg
        nxt = np.zeros(n)
        if edges.shape[0]:
            np.add.at(nxt, dst, contrib[src])
        nxt = damping * (nxt + rank[dangling].sum() / n) \
            + (1 - damping) / n
        if np.abs(nxt - rank).sum() < tol:
            rank = nxt
            break
        rank = nxt
    return rank
