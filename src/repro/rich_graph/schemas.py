"""Built-in rich-graph schemas.

gMark ships four built-in schemas (Section 8: bibliographical, WatDiv,
LDBC SNB, SP2Bench); the bibliographical one is the paper's running
example and lives in :mod:`repro.rich_graph.config`.  This module adds
configurations shaped after the other three, so the ERV generator covers
the same schema set.  The distributions are the published characterizations
of each benchmark's data (product/user skews for WatDiv, friendship power
laws for SNB, citation structure for SP2Bench), expressed in the
configuration vocabulary this library supports.
"""

from __future__ import annotations

from .config import EdgeRule, GraphConfig, NodeType, Predicate
from .distributions import Gaussian, Uniform, Zipfian

__all__ = ["watdiv_config", "snb_config", "sp2bench_config",
           "BUILTIN_SCHEMAS", "builtin_schema"]


def watdiv_config(num_vertices: int = 1 << 14,
                  num_edges: int | None = None) -> GraphConfig:
    """WatDiv-like e-commerce schema: users review and purchase
    products, products belong to retailers.

    WatDiv's stress-testing design gives products a heavy-tailed review
    distribution (popular products gather most reviews) while each user
    writes a modest, roughly normal number of reviews.
    """
    if num_edges is None:
        num_edges = num_vertices * 8
    return GraphConfig(
        num_vertices=num_vertices,
        num_edges=num_edges,
        node_types=[
            NodeType("user", 0.55),
            NodeType("product", 0.35),
            NodeType("retailer", 0.1),
        ],
        predicates=[
            Predicate("reviews", 0.45),
            Predicate("purchases", 0.35),
            Predicate("sells", 0.2),
        ],
        rules=[
            EdgeRule("user", "reviews", "product",
                     Gaussian(), Zipfian(-1.8)),
            EdgeRule("user", "purchases", "product",
                     Zipfian(-1.2), Zipfian(-1.5)),
            EdgeRule("retailer", "sells", "product",
                     Zipfian(-0.8), Uniform(1, 2)),
        ],
    )


def snb_config(num_vertices: int = 1 << 14,
               num_edges: int | None = None) -> GraphConfig:
    """LDBC SNB-like social-network schema: persons know persons, create
    posts, and like posts.

    Friendship degrees follow the social power law; posts-per-person is
    near-normal; likes concentrate on viral posts.
    """
    if num_edges is None:
        num_edges = num_vertices * 10
    return GraphConfig(
        num_vertices=num_vertices,
        num_edges=num_edges,
        node_types=[
            NodeType("person", 0.3),
            NodeType("post", 0.6),
            NodeType("forum", 0.1),
        ],
        predicates=[
            Predicate("knows", 0.3),
            Predicate("creates", 0.3),
            Predicate("likes", 0.3),
            Predicate("containerOf", 0.1),
        ],
        rules=[
            EdgeRule("person", "knows", "person",
                     Zipfian(-1.5), Zipfian(-1.5)),
            EdgeRule("person", "creates", "post",
                     Gaussian(), Uniform(1, 1)),
            EdgeRule("person", "likes", "post",
                     Gaussian(), Zipfian(-2.0)),
            EdgeRule("forum", "containerOf", "post",
                     Zipfian(-1.0), Uniform(1, 1)),
        ],
    )


def sp2bench_config(num_vertices: int = 1 << 14,
                    num_edges: int | None = None) -> GraphConfig:
    """SP2Bench-like DBLP schema: articles cite articles and appear in
    journals; authors write articles.

    Citation in-degrees are the classic heavy tail; articles-per-journal
    is moderately skewed; authorship is near-normal.
    """
    if num_edges is None:
        num_edges = num_vertices * 8
    return GraphConfig(
        num_vertices=num_vertices,
        num_edges=num_edges,
        node_types=[
            NodeType("author", 0.4),
            NodeType("article", 0.5),
            NodeType("journal", 0.1),
        ],
        predicates=[
            Predicate("creator", 0.4),
            Predicate("cites", 0.4),
            Predicate("partOf", 0.2),
        ],
        rules=[
            EdgeRule("author", "creator", "article",
                     Zipfian(-1.7), Gaussian()),
            EdgeRule("article", "cites", "article",
                     Gaussian(), Zipfian(-2.2)),
            EdgeRule("article", "partOf", "journal",
                     Uniform(1, 1), Zipfian(-1.1)),
        ],
    )


#: All built-in schemas by name (the bibliographical one included).
def _bibliographical(num_vertices: int = 1 << 14,
                     num_edges: int | None = None) -> GraphConfig:
    from .config import bibliographical_config
    return bibliographical_config(num_vertices, num_edges)


BUILTIN_SCHEMAS = {
    "bibliographical": _bibliographical,
    "watdiv": watdiv_config,
    "snb": snb_config,
    "sp2bench": sp2bench_config,
}


def builtin_schema(name: str, num_vertices: int = 1 << 14,
                   num_edges: int | None = None) -> GraphConfig:
    """Look up a built-in schema by name."""
    try:
        factory = BUILTIN_SCHEMAS[name.lower()]
    except KeyError:
        from ..errors import ConfigurationError
        raise ConfigurationError(
            f"unknown built-in schema {name!r}; available: "
            f"{sorted(BUILTIN_SCHEMAS)}") from None
    return factory(num_vertices, num_edges)
