"""Rich graph generation: the ERV model and gMark-style schemas (Sec. 6)."""

from .config import (EdgeRule, GraphConfig, NodeType, Predicate,
                     bibliographical_config)
from .distributions import (Empirical, Gaussian, Uniform, Zipfian,
                            parse_distribution,
                            seed_for_in_slope, seed_for_out_slope)
from .erv import ErvGenerator
from .generator import RichGraphGenerator, TypedEdges
from .schemas import (BUILTIN_SCHEMAS, builtin_schema, snb_config,
                      sp2bench_config, watdiv_config)
from .properties import (CategoricalProperty, ExponentialProperty,
                         NormalProperty, PropertyTable, UniformProperty,
                         attach_properties)
from .schema_io import (config_from_dict, config_to_dict, load_config,
                        save_config)

__all__ = [
    "EdgeRule", "GraphConfig", "NodeType", "Predicate",
    "bibliographical_config", "Empirical", "Gaussian", "Uniform", "Zipfian",
    "parse_distribution", "seed_for_in_slope", "seed_for_out_slope",
    "ErvGenerator", "RichGraphGenerator", "TypedEdges",
    "config_from_dict", "config_to_dict", "load_config", "save_config",
    "BUILTIN_SCHEMAS", "builtin_schema", "snb_config", "sp2bench_config",
    "watdiv_config", "CategoricalProperty", "ExponentialProperty",
    "NormalProperty", "PropertyTable", "UniformProperty",
    "attach_properties",
]
