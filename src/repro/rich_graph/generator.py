"""Schema-driven rich graph generation (Section 6.2).

Given a :class:`~repro.rich_graph.config.GraphConfig`, the generator
conceptually divides the probability matrix into the coloured rectangles of
Figure 7(b) — one per degree rule — and generates each rectangle with the
ERV model.  Edges come out typed: ``(source, predicate_id, destination)``
with global vertex IDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.rng import derive_seed
from .config import EdgeRule, GraphConfig
from .erv import ErvGenerator

__all__ = ["TypedEdges", "RichGraphGenerator"]


@dataclass
class TypedEdges:
    """Edges of one predicate rule, in global vertex IDs."""

    rule: EdgeRule
    predicate_id: int
    edges: np.ndarray          # (m, 2) global (source, destination)

    @property
    def num_edges(self) -> int:
        return self.edges.shape[0]

    def as_triples(self) -> np.ndarray:
        """(source, predicate_id, destination) rows."""
        out = np.empty((self.num_edges, 3), dtype=np.int64)
        out[:, 0] = self.edges[:, 0]
        out[:, 1] = self.predicate_id
        out[:, 2] = self.edges[:, 1]
        return out


class RichGraphGenerator:
    """Generate a complete rich graph from a configuration."""

    def __init__(self, config: GraphConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed

    def generate_rule(self, rule_index: int) -> TypedEdges:
        """Generate one rule's rectangle."""
        config = self.config
        rule = config.rules[rule_index]
        src_lo, src_hi = config.vertex_range(rule.source)
        dst_lo, dst_hi = config.vertex_range(rule.target)
        budget = config.rule_edge_budget(rule)
        erv = ErvGenerator(
            src_hi - src_lo, dst_hi - dst_lo, budget,
            rule.out_distribution, rule.in_distribution,
            seed=derive_seed(self.seed, rule_index))
        local = erv.edges()
        edges = np.empty_like(local)
        edges[:, 0] = local[:, 0] + src_lo
        edges[:, 1] = local[:, 1] + dst_lo
        return TypedEdges(rule, config.predicate_id(rule.predicate), edges)

    def generate(self) -> list[TypedEdges]:
        """Generate every rule."""
        return [self.generate_rule(i) for i in range(len(self.config.rules))]

    def all_triples(self) -> np.ndarray:
        """All edges as (source, predicate_id, destination) rows."""
        parts = [t.as_triples() for t in self.generate()]
        if not parts:
            return np.empty((0, 3), dtype=np.int64)
        return np.concatenate(parts)

    def write_ntriples(self, path, type_names: bool = True) -> int:
        """Write the graph as line-based triples
        (``<source> predicate <destination>``), the interchange format the
        semantic benchmarks consume.  Returns the number of lines."""
        config = self.config
        count = 0
        with open(path, "w", encoding="ascii") as f:
            for typed in self.generate():
                pred = typed.rule.predicate
                for u, v in typed.edges:
                    f.write(f"{u}\t{pred}\t{v}\n")
                    count += 1
        return count
