"""Load/save gMark-style graph configurations as JSON files.

gMark consumes user-defined schema files; this module provides the
equivalent for :class:`~repro.rich_graph.config.GraphConfig` so rich
graphs are reproducible from a checked-in configuration document.

Document shape::

    {
      "num_vertices": 16384,
      "num_edges": 131072,
      "node_types":  [{"name": "researcher", "ratio": 0.5}, ...],
      "predicates":  [{"name": "author", "ratio": 0.5}, ...],
      "rules": [
        {"source": "researcher", "predicate": "author",
         "target": "paper",
         "out_distribution": {"kind": "zipfian", "slope": -1.662},
         "in_distribution":  {"kind": "gaussian"}},
        ...
      ]
    }

Distribution kinds: ``zipfian`` (``slope``), ``gaussian`` (no params),
``uniform`` (``low``, ``high``), ``empirical`` (``degrees``, ``weights``).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import ConfigurationError
from .config import EdgeRule, GraphConfig, NodeType, Predicate
from .distributions import (DegreeDistribution, Empirical, Gaussian,
                            Uniform, Zipfian)

__all__ = ["load_config", "save_config", "config_to_dict",
           "config_from_dict"]


def _distribution_to_dict(dist: DegreeDistribution) -> dict:
    if isinstance(dist, Zipfian):
        return {"kind": "zipfian", "slope": dist.slope}
    if isinstance(dist, Gaussian):
        return {"kind": "gaussian"}
    if isinstance(dist, Uniform):
        return {"kind": "uniform", "low": dist.low, "high": dist.high}
    if isinstance(dist, Empirical):
        return {"kind": "empirical",
                "degrees": dist.degrees.tolist(),
                "weights": dist.weights.tolist()}
    raise ConfigurationError(f"unsupported distribution {dist!r}")


def _distribution_from_dict(doc: dict) -> DegreeDistribution:
    try:
        kind = doc["kind"]
    except (TypeError, KeyError):
        raise ConfigurationError(
            f"distribution document needs a 'kind': {doc!r}") from None
    if kind == "zipfian":
        return Zipfian(float(doc.get("slope", -1.662)))
    if kind == "gaussian":
        return Gaussian()
    if kind == "uniform":
        return Uniform(int(doc.get("low", 1)), int(doc.get("high", 4)))
    if kind == "empirical":
        return Empirical(doc["degrees"], doc["weights"])
    raise ConfigurationError(f"unknown distribution kind {kind!r}")


def config_to_dict(config: GraphConfig) -> dict:
    """Serialize a configuration to a JSON-compatible dict."""
    return {
        "num_vertices": config.num_vertices,
        "num_edges": config.num_edges,
        "node_types": [{"name": t.name, "ratio": t.ratio}
                       for t in config.node_types],
        "predicates": [{"name": p.name, "ratio": p.ratio}
                       for p in config.predicates],
        "rules": [{
            "source": r.source,
            "predicate": r.predicate,
            "target": r.target,
            "out_distribution": _distribution_to_dict(r.out_distribution),
            "in_distribution": _distribution_to_dict(r.in_distribution),
        } for r in config.rules],
    }


def config_from_dict(doc: dict) -> GraphConfig:
    """Build (and validate) a configuration from a parsed document."""
    try:
        node_types = [NodeType(t["name"], float(t["ratio"]))
                      for t in doc["node_types"]]
        predicates = [Predicate(p["name"], float(p["ratio"]))
                      for p in doc["predicates"]]
        rules = [EdgeRule(r["source"], r["predicate"], r["target"],
                          _distribution_from_dict(r["out_distribution"]),
                          _distribution_from_dict(r["in_distribution"]))
                 for r in doc["rules"]]
        return GraphConfig(int(doc["num_vertices"]),
                           int(doc["num_edges"]),
                           node_types, predicates, rules)
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(
            f"malformed graph configuration document: {exc}") from exc


def save_config(config: GraphConfig, path: Path | str) -> Path:
    """Write a configuration as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(config_to_dict(config), indent=2) + "\n",
                    encoding="ascii")
    return path


def load_config(path: Path | str) -> GraphConfig:
    """Load and validate a configuration from a JSON file."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{path}: not valid JSON ({exc})") from exc
    return config_from_dict(doc)
