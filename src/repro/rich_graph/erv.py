"""The extended recursive vector (ERV) model — Section 6.1.

The ERV model decouples the two steps of the recursive vector model:

1. **scope sizes** (out-degrees) use seed parameters ``Kout`` via
   Theorem 1 — only the *row sums* of ``Kout`` matter here (Lemma 1);
2. **edge determination** (destinations, hence in-degrees) uses seed
   parameters ``Kin`` via Theorem 2 — only the *column marginals* of
   ``Kin`` matter, because ERV edges carry no source/destination
   correlation requirement.

It also supports different source and destination vertex ranges: sampling
happens in the power-of-two space ``2^L >= span`` and is scaled to the
real range with ``round(|Vdst| / 2^L * v)``, the paper's rectangle-matrix
mapping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.recvec import build_recvec, determine_edges
from ..core.rng import stream
from ..core.scope import sample_scope_sizes
from ..core.seed import SeedMatrix
from ..errors import ConfigurationError
from .distributions import (DegreeDistribution, Empirical, Gaussian,
                            Uniform, Zipfian, seed_for_in_slope,
                            seed_for_out_slope)

__all__ = ["ErvGenerator"]

_TAG_DEGREE = 201
_TAG_EDGE = 202
_TAG_POPULARITY = 203
_MAX_TOPUP = 200


def _levels_for(count: int) -> int:
    """Smallest L with 2**L >= count."""
    return max(int(math.ceil(math.log2(max(count, 2)))), 1)


@dataclass(frozen=True)
class _InSampler:
    """Destination sampler realizing a requested in-degree distribution.

    For the Zipfian case it uses the actual recursive-vector machinery:
    the marginal destination distribution of ``Kin`` factorizes per bit
    with ``P(bit=1) = beta+delta``, which equals the Theorem 2 process of
    a seed whose every row has that ratio — so the sample is drawn by
    inverse-CDF on a RecVec, exactly as in Section 4.2.  For the
    empirical (data-dictionary) case, each destination receives a
    popularity weight drawn from the dictionary and destinations are
    sampled proportionally (inverse-CDF on the popularity prefix sums).
    """

    recvec: np.ndarray | None         # Zipfian: RecVec inverse-CDF
    popularity_cdf: np.ndarray | None  # Empirical: per-destination CDF
    levels: int
    num_destinations: int

    @classmethod
    def for_distribution(cls, dist: DegreeDistribution,
                         num_destinations: int,
                         rng: np.random.Generator | None = None
                         ) -> "_InSampler":
        levels = _levels_for(num_destinations)
        if isinstance(dist, Zipfian):
            kin = seed_for_in_slope(dist.slope)
            # Row-uniform seed with the required column marginal: the
            # destination-bit probability is (beta+delta) of Kin.
            bd = kin.beta + kin.delta
            seed = SeedMatrix.rmat(0.5 * (1 - bd), 0.5 * bd,
                                   0.5 * (1 - bd), 0.5 * bd)
            recvec = build_recvec(seed, 0, levels)
            return cls(recvec, None, levels, num_destinations)
        if isinstance(dist, Empirical):
            if rng is None:
                raise ConfigurationError(
                    "empirical in-distribution needs an rng to draw "
                    "destination popularities")
            weights = rng.choice(dist.degrees, size=num_destinations,
                                 p=dist.probabilities).astype(np.float64)
            if weights.sum() <= 0:
                weights[:] = 1.0
            cdf = np.cumsum(weights)
            return cls(None, cdf / cdf[-1], levels, num_destinations)
        # Gaussian and Uniform in-degree both arise from uniformly random
        # destinations (binomial in-degree ~ Normal).
        return cls(None, None, levels, num_destinations)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if self.popularity_cdf is not None:
            xs = rng.random(count)
            return np.searchsorted(self.popularity_cdf, xs,
                                   side="right").astype(np.int64)
        if self.recvec is None:
            return rng.integers(0, self.num_destinations, size=count,
                                dtype=np.int64)
        xs = rng.random(count) * self.recvec[-1]
        raw = determine_edges(xs, self.recvec)
        span = 1 << self.levels
        if span == self.num_destinations:
            return raw
        # Rectangle mapping (Section 6.1): scale the 2^L space onto the
        # destination range.
        return np.minimum(
            np.rint(raw * (self.num_destinations / span)).astype(np.int64),
            self.num_destinations - 1)


class ErvGenerator:
    """Generate the edges of one (source range, destination range) rule.

    Parameters
    ----------
    num_sources, num_destinations:
        Sizes of the two vertex ranges (local IDs ``0..n-1``; the caller
        offsets them into the global ID space).
    num_edges:
        Edge budget for this rule.
    out_distribution, in_distribution:
        Marginal degree distributions (see
        :mod:`repro.rich_graph.distributions`).
    dedup:
        Eliminate repeated (source, destination) pairs, the gMark defect
        the paper calls out ("TrillionG eliminates such duplicates by
        default").
    """

    def __init__(self, num_sources: int, num_destinations: int,
                 num_edges: int,
                 out_distribution: DegreeDistribution,
                 in_distribution: DegreeDistribution, *,
                 dedup: bool = True, seed: int = 0) -> None:
        if num_sources < 1 or num_destinations < 1:
            raise ConfigurationError("vertex ranges must be non-empty")
        if num_edges < 0:
            raise ConfigurationError("num_edges must be >= 0")
        if dedup and num_edges > num_sources * num_destinations:
            raise ConfigurationError(
                "edge budget exceeds the rectangle's cell count")
        self.num_sources = num_sources
        self.num_destinations = num_destinations
        self.num_edges = num_edges
        self.out_distribution = out_distribution
        self.in_distribution = in_distribution
        self.dedup = dedup
        self.seed = seed

    # -- step 1: scope sizes (Theorem 1 under Kout) -------------------------

    def out_degrees(self) -> np.ndarray:
        rng = stream(self.seed, _TAG_DEGREE)
        n = self.num_sources
        dist = self.out_distribution
        if isinstance(dist, Zipfian):
            kout = seed_for_out_slope(dist.slope)
            levels = _levels_for(n)
            ab, cd = (float(x) for x in kout.row_sums())
            # Lemma 1 row probabilities over the 2^L space, renormalized to
            # the first n sources.
            ones = np.bitwise_count(
                np.arange(n, dtype=np.uint64)).astype(np.int64)
            probs = np.power(ab, levels - ones) * np.power(cd, ones)
            probs = probs / probs.sum()
            degrees = sample_scope_sizes(probs, self.num_edges, rng,
                                         max_size=self.num_destinations)
        elif isinstance(dist, Gaussian):
            # Uniform seed: Theorem 1 gives Binomial(|E|, 1/n), i.e. the
            # Table 3 Gaussian with mean |E|/n.
            probs = np.full(n, 1.0 / n)
            degrees = sample_scope_sizes(probs, self.num_edges, rng,
                                         max_size=self.num_destinations)
        elif isinstance(dist, Uniform):
            degrees = rng.integers(dist.low, dist.high + 1, size=n)
            np.minimum(degrees, self.num_destinations, out=degrees)
        elif isinstance(dist, Empirical):
            # Data-dictionary out-degrees: draw each source's degree from
            # the frequency table verbatim (the LDBC-style workflow).
            degrees = rng.choice(dist.degrees, size=n,
                                 p=dist.probabilities)
            np.minimum(degrees, self.num_destinations, out=degrees)
        else:  # pragma: no cover - exhaustive match
            raise ConfigurationError(
                f"unsupported out distribution {dist!r}")
        return degrees.astype(np.int64)

    # -- step 2: destinations (Theorem 2 under Kin) -------------------------

    def edges(self) -> np.ndarray:
        """Generate the rule's edges as an ``(m, 2)`` local-ID array."""
        degrees = self.out_degrees()
        rng = stream(self.seed, _TAG_EDGE)
        sampler = _InSampler.for_distribution(
            self.in_distribution, self.num_destinations,
            rng=stream(self.seed, _TAG_POPULARITY))
        total = int(degrees.sum())
        sources = np.repeat(np.arange(self.num_sources, dtype=np.int64),
                            degrees)
        dests = sampler.sample(total, rng)
        if not self.dedup:
            return np.column_stack([sources, dests])
        span = np.int64(self.num_destinations)
        keys = np.sort(sources * span + dests)
        keys = _unique_sorted(keys)
        for _ in range(_MAX_TOPUP):
            have = np.bincount((keys // span).astype(np.int64),
                               minlength=self.num_sources)
            shortfall = degrees - have
            lacking = shortfall > 0
            if not lacking.any():
                break
            refill_src = np.repeat(
                np.arange(self.num_sources, dtype=np.int64)[lacking],
                shortfall[lacking])
            # Saturated scopes (degree ~ |Vdst|) cannot top up by
            # rejection; clip their demand to what remains reachable.
            new = refill_src * span + sampler.sample(refill_src.size, rng)
            merged = np.sort(np.concatenate([keys, new]))
            new_keys = _unique_sorted(merged)
            if new_keys.size == keys.size:
                # No progress: remaining shortfalls are saturated scopes.
                break
            keys = new_keys
        return np.column_stack([keys // span, keys % span])


def _unique_sorted(sorted_keys: np.ndarray) -> np.ndarray:
    if sorted_keys.size <= 1:
        return sorted_keys
    keep = np.empty(sorted_keys.size, dtype=bool)
    keep[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=keep[1:])
    return sorted_keys[keep]
