"""Degree-distribution specifications for the ERV model (Section 6.1).

Table 3 maps seed parameters to degree distributions:

- ``Kout[a, b; c, d]`` yields a Zipfian *out*-degree distribution with
  slope ``log(c+d) - log(a+b)`` (Lemma 6);
- ``Kin[a, b; c, d]`` yields a Zipfian *in*-degree distribution with slope
  ``log(b+d) - log(a+c)``;
- the uniform seed yields a Gaussian with mean ``|E|/|V|``.

This module inverts those relationships: given a requested distribution it
produces the seed matrix that realizes it, so the ERV model "can precisely
control the slope of Zipfian distribution by adjusting seed parameters,
which is not supported by gMark".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.seed import SeedMatrix
from ..errors import ConfigurationError

__all__ = ["Zipfian", "Gaussian", "Uniform", "Empirical",
           "DegreeDistribution", "seed_for_out_slope", "seed_for_in_slope",
           "parse_distribution"]


@dataclass(frozen=True)
class Zipfian:
    """Power-law degree distribution with the given (negative) log-log
    slope.  The Graph500 seed corresponds to slope ~-1.662."""

    slope: float = -1.662

    def __post_init__(self) -> None:
        if self.slope >= 0:
            raise ConfigurationError(
                f"Zipfian slope must be negative, got {self.slope}")

    kind = "zipfian"


@dataclass(frozen=True)
class Gaussian:
    """Normal degree distribution; the mean is fixed by the edge budget
    (``|E| / |V|``), matching Table 3's uniform-seed row."""

    kind = "gaussian"


@dataclass(frozen=True)
class Uniform:
    """Degrees uniform on ``[low, high]`` (gMark's third built-in; the
    paper notes it is trivially generated with a plain random function)."""

    low: int = 1
    high: int = 4

    def __post_init__(self) -> None:
        if not (0 <= self.low <= self.high):
            raise ConfigurationError(
                f"invalid uniform degree range [{self.low}, {self.high}]")

    kind = "uniform"


class Empirical:
    """Degree distribution given as a data dictionary (frequency table).

    The paper's Section 8 singles this out as the promising direction for
    matching LDBC SNB Datagen: "improve TrillionG to support frequency
    distributions, for example, by using data dictionaries".  ``degrees``
    and ``weights`` define a discrete distribution over degree values;
    out-degrees are drawn from it directly, and as an in-distribution each
    destination receives a popularity weight drawn from it (destinations
    are then sampled proportionally to popularity).

    The table can come straight from a real graph via
    :meth:`Empirical.from_degree_sequence` — the LDBC "learn the
    frequencies from data" workflow.
    """

    kind = "empirical"

    def __init__(self, degrees, weights) -> None:
        import numpy as np
        self.degrees = np.asarray(degrees, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.degrees.size == 0:
            raise ConfigurationError("empirical table cannot be empty")
        if self.degrees.size != self.weights.size:
            raise ConfigurationError(
                "degrees and weights must have the same length")
        if (self.degrees < 0).any():
            raise ConfigurationError("degrees must be non-negative")
        if (self.weights < 0).any() or self.weights.sum() <= 0:
            raise ConfigurationError(
                "weights must be non-negative with positive total")
        self.probabilities = self.weights / self.weights.sum()

    @classmethod
    def from_degree_sequence(cls, degree_sequence) -> "Empirical":
        """Build the dictionary from an observed degree sequence."""
        import numpy as np
        seq = np.asarray(degree_sequence, dtype=np.int64)
        counts = np.bincount(seq)
        degrees = np.nonzero(counts)[0]
        return cls(degrees, counts[degrees])

    @property
    def mean(self) -> float:
        return float((self.degrees * self.probabilities).sum())

    def __eq__(self, other: object) -> bool:
        import numpy as np
        if not isinstance(other, Empirical):
            return NotImplemented
        return (np.array_equal(self.degrees, other.degrees)
                and np.array_equal(self.weights, other.weights))

    def __repr__(self) -> str:
        return (f"Empirical({self.degrees.size} degree values, "
                f"mean {self.mean:.2f})")


DegreeDistribution = Zipfian | Gaussian | Uniform | Empirical


def _split_rows(total_low_half: float) -> tuple[float, float]:
    """Split a row/column mass into two entries with the Graph500-like
    3:1 internal ratio (the internal split does not affect the controlled
    marginal; any split works, this one keeps seeds familiar)."""
    return 0.75 * total_low_half, 0.25 * total_low_half


def seed_for_out_slope(slope: float) -> SeedMatrix:
    """Invert Lemma 6 for the out-degree side.

    ``slope = log2(c+d) - log2(a+b)`` and ``(a+b) + (c+d) = 1`` give
    ``a+b = 1 / (1 + 2**slope)``.
    """
    if slope >= 0:
        raise ConfigurationError("Zipfian slope must be negative")
    ratio = 2.0 ** slope
    top = 1.0 / (1.0 + ratio)       # a + b
    bottom = 1.0 - top              # c + d
    a, b = _split_rows(top)
    c, d = _split_rows(bottom)
    return SeedMatrix.rmat(a, b, c, d)


def seed_for_in_slope(slope: float) -> SeedMatrix:
    """Invert Lemma 6 for the in-degree side:
    ``slope = log2(b+d) - log2(a+c)``."""
    if slope >= 0:
        raise ConfigurationError("Zipfian slope must be negative")
    ratio = 2.0 ** slope
    left = 1.0 / (1.0 + ratio)      # a + c
    right = 1.0 - left              # b + d
    a, c = _split_rows(left)
    b, d = _split_rows(right)
    return SeedMatrix.rmat(a, b, c, d)


def parse_distribution(spec: str) -> DegreeDistribution:
    """Parse ``"zipfian:-1.662"``, ``"gaussian"``, or ``"uniform:1:4"``
    (the CLI / config-file syntax)."""
    parts = spec.lower().split(":")
    kind = parts[0]
    if kind == "zipfian":
        slope = float(parts[1]) if len(parts) > 1 else -1.662
        return Zipfian(slope)
    if kind == "gaussian":
        return Gaussian()
    if kind == "uniform":
        low = int(parts[1]) if len(parts) > 1 else 1
        high = int(parts[2]) if len(parts) > 2 else 4
        return Uniform(low, high)
    raise ConfigurationError(f"unknown degree distribution {spec!r}")
