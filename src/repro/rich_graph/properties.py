"""Per-edge property generation for rich graphs.

The paper's second motivation is a "semantically richer graph database";
node types and predicates (Section 6) cover the structure, and this module
covers edge *properties* — the weights/timestamps a benchmark database
carries.  Properties are derived deterministically from the edge itself
(``hash(edge, property, seed)`` seeds the draw), so they are stable across
runs, workers, and regeneration — the same property of the same edge never
changes, matching how LDBC-style generators keep attributes reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.shuffle import mix64
from ..errors import ConfigurationError

__all__ = ["UniformProperty", "NormalProperty", "ExponentialProperty",
           "CategoricalProperty", "PropertyTable", "attach_properties"]


def _edge_uniforms(edges: np.ndarray, salt: int) -> np.ndarray:
    """One deterministic U(0,1) per edge, keyed by (edge, salt)."""
    key = (edges[:, 0].astype(np.uint64) << np.uint64(20)) \
        ^ edges[:, 1].astype(np.uint64) ^ np.uint64(salt * 0x9E37)
    mixed = mix64(key)
    return (mixed >> np.uint64(11)).astype(np.float64) / float(1 << 53)


@dataclass(frozen=True)
class UniformProperty:
    """Real-valued property uniform on ``[low, high)``."""

    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ConfigurationError("high must exceed low")

    def sample(self, edges: np.ndarray, salt: int) -> np.ndarray:
        u = _edge_uniforms(edges, salt)
        return self.low + u * (self.high - self.low)


@dataclass(frozen=True)
class NormalProperty:
    """Gaussian property (inverse-CDF via the rational approximation)."""

    mean: float = 0.0
    std: float = 1.0

    def __post_init__(self) -> None:
        if self.std <= 0:
            raise ConfigurationError("std must be positive")

    def sample(self, edges: np.ndarray, salt: int) -> np.ndarray:
        # Two independent uniforms -> Box-Muller (deterministic per edge).
        u1 = np.clip(_edge_uniforms(edges, salt), 1e-12, 1.0)
        u2 = _edge_uniforms(edges, salt + 1)
        z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2 * np.pi * u2)
        return self.mean + self.std * z


@dataclass(frozen=True)
class ExponentialProperty:
    """Exponential property (e.g. inter-event times) with the given rate."""

    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("rate must be positive")

    def sample(self, edges: np.ndarray, salt: int) -> np.ndarray:
        u = np.clip(_edge_uniforms(edges, salt), 1e-12, 1.0)
        return -np.log(u) / self.rate


@dataclass(frozen=True)
class CategoricalProperty:
    """Integer category drawn with the given weights."""

    weights: tuple

    def __post_init__(self) -> None:
        if not self.weights or any(w < 0 for w in self.weights) \
                or sum(self.weights) <= 0:
            raise ConfigurationError(
                "weights must be non-empty and non-negative with "
                "positive total")

    def sample(self, edges: np.ndarray, salt: int) -> np.ndarray:
        u = _edge_uniforms(edges, salt)
        cdf = np.cumsum(np.asarray(self.weights, dtype=np.float64))
        cdf /= cdf[-1]
        return np.searchsorted(cdf, u, side="right").astype(np.int64)


@dataclass
class PropertyTable:
    """Named property columns for one edge set."""

    names: list[str]
    columns: dict[str, np.ndarray]

    def as_records(self, edges: np.ndarray) -> list[dict]:
        """Materialize per-edge dicts (small graphs / debugging)."""
        out = []
        for i, (u, v) in enumerate(edges):
            record = {"source": int(u), "destination": int(v)}
            for name in self.names:
                record[name] = self.columns[name][i].item()
            out.append(record)
        return out


def attach_properties(edges: np.ndarray,
                      specs: dict[str, object],
                      seed: int = 0) -> PropertyTable:
    """Generate property columns for an edge array.

    ``specs`` maps property names to property spec objects.  The result
    is deterministic in ``(edges, specs, seed)`` and independent of edge
    order: the same edge always receives the same property values.
    """
    if not specs:
        raise ConfigurationError("attach_properties needs at least one "
                                 "property spec")
    columns = {}
    for index, (name, spec) in enumerate(sorted(specs.items())):
        salt = seed * 1000 + index * 7
        columns[name] = spec.sample(edges, salt)
    return PropertyTable(sorted(specs), columns)
