"""gMark-style graph configuration (Section 6.2, Figure 7).

A configuration consists of three tables:

- **node types** with vertex-ratio shares of ``|V|``,
- **edge predicates** with edge-ratio shares of ``|E|``,
- **degree rules** binding (source type, predicate, target type) to an
  out-degree and an in-degree distribution.

The built-in :func:`bibliographical_config` mirrors the paper's running
example: ``researcher --author--> paper`` with Zipfian out-degree and
Gaussian in-degree, etc.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .distributions import (DegreeDistribution, Gaussian, Uniform, Zipfian)

__all__ = ["NodeType", "Predicate", "EdgeRule", "GraphConfig",
           "bibliographical_config"]


@dataclass(frozen=True)
class NodeType:
    """A vertex class occupying ``ratio`` of the vertex space."""

    name: str
    ratio: float

    def __post_init__(self) -> None:
        if not 0 < self.ratio <= 1:
            raise ConfigurationError(
                f"node type {self.name!r} ratio must be in (0, 1]")


@dataclass(frozen=True)
class Predicate:
    """An edge label owning ``ratio`` of the edge budget."""

    name: str
    ratio: float

    def __post_init__(self) -> None:
        if not 0 < self.ratio <= 1:
            raise ConfigurationError(
                f"predicate {self.name!r} ratio must be in (0, 1]")


@dataclass(frozen=True)
class EdgeRule:
    """One row of the degree-distribution table: all ``predicate`` edges
    from ``source`` nodes to ``target`` nodes, with the given marginal
    degree distributions."""

    source: str
    predicate: str
    target: str
    out_distribution: DegreeDistribution
    in_distribution: DegreeDistribution


@dataclass
class GraphConfig:
    """A complete rich-graph description."""

    num_vertices: int
    num_edges: int
    node_types: list[NodeType]
    predicates: list[Predicate]
    rules: list[EdgeRule]

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_vertices < len(self.node_types):
            raise ConfigurationError("fewer vertices than node types")
        if self.num_edges < 1:
            raise ConfigurationError("num_edges must be positive")
        names = [t.name for t in self.node_types]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate node type names")
        pred_names = [p.name for p in self.predicates]
        if len(set(pred_names)) != len(pred_names):
            raise ConfigurationError("duplicate predicate names")
        type_ratio = sum(t.ratio for t in self.node_types)
        if abs(type_ratio - 1.0) > 1e-9:
            raise ConfigurationError(
                f"node type ratios must sum to 1, got {type_ratio}")
        pred_ratio = sum(p.ratio for p in self.predicates)
        if abs(pred_ratio - 1.0) > 1e-9:
            raise ConfigurationError(
                f"predicate ratios must sum to 1, got {pred_ratio}")
        known_types = set(names)
        known_preds = set(pred_names)
        used_preds = set()
        for rule in self.rules:
            if rule.source not in known_types:
                raise ConfigurationError(
                    f"rule references unknown source type {rule.source!r}")
            if rule.target not in known_types:
                raise ConfigurationError(
                    f"rule references unknown target type {rule.target!r}")
            if rule.predicate not in known_preds:
                raise ConfigurationError(
                    f"rule references unknown predicate {rule.predicate!r}")
            used_preds.add(rule.predicate)
        missing = known_preds - used_preds
        if missing:
            raise ConfigurationError(
                f"predicates without any rule: {sorted(missing)}")

    # -- derived lookups ----------------------------------------------------

    def vertex_range(self, type_name: str) -> tuple[int, int]:
        """Global vertex ID range ``[start, stop)`` of a node type.

        Types are laid out contiguously in declaration order; the last
        type absorbs the rounding remainder.
        """
        start = 0
        for i, t in enumerate(self.node_types):
            count = (self.num_vertices - start
                     if i == len(self.node_types) - 1
                     else int(self.num_vertices * t.ratio))
            if t.name == type_name:
                return start, start + count
            start += count
        raise ConfigurationError(f"unknown node type {type_name!r}")

    def type_of_vertex(self, vertex: int) -> str:
        """Node type owning a global vertex ID."""
        for t in self.node_types:
            lo, hi = self.vertex_range(t.name)
            if lo <= vertex < hi:
                return t.name
        raise ConfigurationError(f"vertex {vertex} out of range")

    def predicate_ratio(self, name: str) -> float:
        for p in self.predicates:
            if p.name == name:
                return p.ratio
        raise ConfigurationError(f"unknown predicate {name!r}")

    def rule_edge_budget(self, rule: EdgeRule) -> int:
        """Edge budget of one rule: the predicate's share of ``|E|``
        split evenly among rules carrying the same predicate."""
        sharing = sum(1 for r in self.rules
                      if r.predicate == rule.predicate)
        return int(self.num_edges * self.predicate_ratio(rule.predicate)
                   / sharing)

    def predicate_id(self, name: str) -> int:
        for i, p in enumerate(self.predicates):
            if p.name == name:
                return i
        raise ConfigurationError(f"unknown predicate {name!r}")


def bibliographical_config(num_vertices: int = 1 << 14,
                           num_edges: int | None = None) -> GraphConfig:
    """The paper's bibliographical example (Figure 7).

    Node types: researcher (50%), paper (30%), journal (10%), conference
    (10%).  Edges: ``author`` (researcher->paper, Zipfian out / Gaussian
    in, 50% of |E|), ``publishedIn`` (paper->journal, Gaussian out /
    Zipfian in, 30%), ``presentedIn`` (paper->conference, Uniform out /
    Zipfian in, 20%).
    """
    if num_edges is None:
        num_edges = num_vertices * 8
    return GraphConfig(
        num_vertices=num_vertices,
        num_edges=num_edges,
        node_types=[
            NodeType("researcher", 0.5),
            NodeType("paper", 0.3),
            NodeType("journal", 0.1),
            NodeType("conference", 0.1),
        ],
        predicates=[
            Predicate("author", 0.5),
            Predicate("publishedIn", 0.3),
            Predicate("presentedIn", 0.2),
        ],
        rules=[
            EdgeRule("researcher", "author", "paper",
                     Zipfian(-1.662), Gaussian()),
            EdgeRule("paper", "publishedIn", "journal",
                     Gaussian(), Zipfian(-1.4)),
            EdgeRule("paper", "presentedIn", "conference",
                     Uniform(1, 3), Zipfian(-2.0)),
        ],
    )
