"""The ten project-specific ``reprolint`` checkers.

Each checker guards one invariant the paper's correctness argument relies
on; ``docs/static_analysis.md`` documents the catalogue in prose.

==================  =======  ==================================================
checker             codes    invariant
==================  =======  ==================================================
rng-determinism     RPL101+  all entropy flows through ``repro.core.rng``
layering            RPL201   ``core``/``models`` stay importable bottom-up
numerical-safety    RPL301+  no float ``==`` on probabilities, no
                             Decimal->float round-trips on precision paths
exception-hygiene   RPL401+  no bare/broad ``except`` outside the allowlist
api-completeness    RPL501+  every module declares a consistent ``__all__``
block-streaming     RPL505+  producers feed writers whole blocks, never
                             per-vertex ``writer.add`` loops
kernel-vectorization RPL510  sampling kernels stay whole-batch numpy:
                             no per-edge Python loops outside the
                             reference engine
merge-streaming     RPL520   external-merge streams stay streamed in
                             the producer layers: no whole-set
                             collection of ``iter_unique_keys`` & co
telemetry           RPL507+  pipeline timing goes through
                             ``repro.telemetry``; only the CLI prints
read-only-introspection RPL509  flight/server/traceview stay read-only:
                             no RNG draws, no registry mutation, no
                             generator imports
mutable-defaults    RPL601   no mutable default arguments
==================  =======  ==================================================
"""

from __future__ import annotations

import ast

from .framework import Checker, register_checker

__all__ = [
    "RngDeterminismChecker",
    "LayeringChecker",
    "NumericalSafetyChecker",
    "ExceptionHygieneChecker",
    "ApiCompletenessChecker",
    "BlockStreamingChecker",
    "MergeStreamingChecker",
    "KernelVectorizationChecker",
    "TelemetryChecker",
    "IntrospectionChecker",
    "MutableDefaultsChecker",
]

_NUMPY_ALIASES = {"numpy", "np"}


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``np.random.default_rng`` -> ``["np", "random", "default_rng"]``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


@register_checker
class RngDeterminismChecker(Checker):
    """All randomness must come from :mod:`repro.core.rng`.

    ``import random``, calls through ``numpy.random``, and
    ``default_rng(...)`` / ``SeedSequence(...)`` constructed outside the
    RNG module each break the seed -> stream -> graph determinism chain
    (Section 5 of the paper: streams are keyed by scope id, not worker
    id, so the partitioning cannot change the graph).
    """

    name = "rng-determinism"
    codes = {
        "RPL101": "stdlib `random` imported",
        "RPL102": "numpy.random called outside the RNG module",
        "RPL103": "generator/seed constructed outside the RNG module",
    }

    def _in_rng_module(self) -> bool:
        allowed = {self.config.rng_module} | set(
            self.config.rng_allowed_modules)
        return self.source.module in allowed

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                self.flag(node, "RPL101",
                          "stdlib `random` is unseeded per-process state; "
                          "use repro.core.rng.stream instead")
            elif alias.name == "numpy.random" and not self._in_rng_module():
                self.flag(node, "RPL102",
                          "import numpy.random only inside "
                          f"{self.config.rng_module}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module:
            root = node.module.split(".")[0]
            if root == "random":
                self.flag(node, "RPL101",
                          "stdlib `random` is unseeded per-process state; "
                          "use repro.core.rng.stream instead")
            elif root == "numpy" and not self._in_rng_module():
                if node.module == "numpy.random":
                    bad = [alias.name for alias in node.names
                           if alias.name not in self.config.rng_type_names]
                    if bad:
                        self.flag(node, "RPL103",
                                  f"importing {', '.join(bad)} from "
                                  "numpy.random outside the RNG module; "
                                  "route entropy through "
                                  f"{self.config.rng_module}")
                elif node.module == "numpy" and any(
                        alias.name == "random" for alias in node.names):
                    self.flag(node, "RPL102",
                              "import numpy.random only inside "
                              f"{self.config.rng_module}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._in_rng_module():
            chain = _attr_chain(node.func)
            if (chain and chain[0] in _NUMPY_ALIASES and len(chain) >= 3
                    and chain[1] == "random"
                    and chain[2] not in self.config.rng_type_names):
                self.flag(node, "RPL102",
                          f"call to {'.'.join(chain)} outside "
                          f"{self.config.rng_module} bypasses the "
                          "SeedSequence-keyed streams")
            elif isinstance(node.func, ast.Name) and node.func.id in (
                    "default_rng", "SeedSequence"):
                self.flag(node, "RPL103",
                          f"{node.func.id}() constructed outside "
                          f"{self.config.rng_module}; use stream()/"
                          "spawn_streams()/derive_seed()")
        self.generic_visit(node)


@register_checker
class LayeringChecker(Checker):
    """Package layering: lower layers must not import higher ones.

    ``core`` (the RecVec math) must stay importable without the
    distribution, format, CLI, or cluster layers; ``models`` must not
    reach into ``dist`` (generators are orchestrated *by* the
    distribution layer, never the reverse).
    """

    name = "layering"
    codes = {"RPL201": "forbidden cross-layer import"}

    def _forbidden(self) -> tuple[str, ...]:
        for prefix, banned in self.config.layering_rules.items():
            if (self.source.module == prefix
                    or self.source.module.startswith(prefix + ".")):
                return banned
        return ()

    def _check(self, node: ast.AST, target: str) -> bool:
        for banned in self._forbidden():
            if target == banned or target.startswith(banned + "."):
                layer = self.source.module.rsplit(".", 1)[0]
                self.flag(node, "RPL201",
                          f"{layer} must not import {banned} "
                          f"(imported {target})")
                return True
        return False

    def _resolve_relative(self, node: ast.ImportFrom) -> str:
        parts = self.source.module.split(".")
        base = parts[:-node.level] if node.level <= len(parts) else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = self._resolve_relative(node) if node.level else node.module
        if target and not self._check(node, target):
            # `from pkg import name` may pull a submodule, not an attr.
            for alias in node.names:
                if self._check(node, f"{target}.{alias.name}"):
                    break
        self.generic_visit(node)


def _contains_float_literal(node: ast.AST, sentinels: frozenset[float]
                            ) -> ast.Constant | None:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Constant) and isinstance(sub.value, float)
                and sub.value not in sentinels):
            return sub
    return None


@register_checker
class NumericalSafetyChecker(Checker):
    """Probability arithmetic must not rely on exact float equality, and
    the Decimal precision path must not round-trip through ``float``.

    Seshadhri et al. show SKG degree distributions shift invisibly under
    tiny parameter perturbations; an ``==`` against a probability hides
    exactly that class of bug.  Comparisons against the exact binary
    sentinels 0.0 / 1.0 / -1.0 are allowed.
    """

    name = "numerical-safety"
    codes = {
        "RPL301": "float equality on a probability expression",
        "RPL302": "Decimal value round-tripped through float()",
    }

    def _is_probability_expr(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            ident = None
            if isinstance(sub, ast.Name):
                ident = sub.id
            elif isinstance(sub, ast.Attribute):
                ident = sub.attr
            elif isinstance(sub, ast.Call):
                chain = _attr_chain(sub.func)
                ident = chain[-1] if chain else None
            if ident and any(pat in ident.lower() for pat in
                             self.config.probability_name_patterns):
                return True
        return False

    def _is_exact_sentinel(self, node: ast.AST) -> bool:
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, (int, float))
                and float(node.value) in self.config.exact_float_sentinels)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if self._is_exact_sentinel(left) or self._is_exact_sentinel(right):
                continue
            for side in (left, right):
                literal = _contains_float_literal(
                    side, self.config.exact_float_sentinels)
                if literal is not None:
                    self.flag(node, "RPL301",
                              f"`==`/`!=` against float literal "
                              f"{literal.value!r}; compare with a tolerance "
                              "(math.isclose / np.isclose)")
                    break
                if self._is_probability_expr(side):
                    self.flag(node, "RPL301",
                              "`==`/`!=` on a probability/CDF expression; "
                              "compare with a tolerance "
                              "(math.isclose / np.isclose)")
                    break
        self.generic_visit(node)

    def _is_decimal_expr(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            ident = None
            if isinstance(sub, ast.Call):
                chain = _attr_chain(sub.func)
                ident = chain[-1] if chain else None
            elif isinstance(sub, (ast.Name, ast.Attribute)):
                ident = (sub.id if isinstance(sub, ast.Name) else sub.attr)
            if ident is None:
                continue
            lowered = ident.lower()
            if (ident == "Decimal" or lowered.endswith("decimal")
                    or lowered.endswith("_dec") or lowered.startswith("dec_")):
                return True
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if (self.source.module in self.config.precision_modules
                and isinstance(node.func, ast.Name)
                and node.func.id == "float" and node.args
                and self._is_decimal_expr(node.args[0])):
            self.flag(node, "RPL302",
                      "float(<Decimal>) inside a high-precision module "
                      "defeats the Decimal path; keep the value in Decimal "
                      "or convert at the API boundary")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        sides = (node.left, node.right)
        has_decimal = any(
            isinstance(s, ast.Call) and isinstance(s.func, ast.Name)
            and s.func.id == "Decimal" for s in sides)
        has_float = any(
            isinstance(s, ast.Constant) and isinstance(s.value, float)
            for s in sides)
        if has_decimal and has_float:
            self.flag(node, "RPL302",
                      "arithmetic mixes Decimal(...) with a float literal; "
                      "Decimal('...') the literal instead")
        self.generic_visit(node)


@register_checker
class ExceptionHygieneChecker(Checker):
    """No bare or broad ``except`` clauses outside the allowlist, and no
    unbounded blocking pool calls in the distribution layer.

    Broad handlers swallow :class:`~repro.errors.TrillionGError` subtypes
    (including the *simulated* OutOfMemoryError the experiments rely on)
    and hide real I/O failures; catch the specific errors and route them
    through :mod:`repro.errors`.  In ``dist/`` modules, a bare
    ``pool.map`` (or a timeout-less ``AsyncResult.get()``) turns one hung
    worker into a hung run — the fault-tolerant scheduler
    (:func:`repro.dist.faults.run_tasks`) exists so nothing in the
    distribution layer blocks forever.
    """

    name = "exception-hygiene"
    codes = {
        "RPL401": "bare `except:`",
        "RPL402": "broad `except Exception`/`except BaseException`",
        "RPL403": "blocking pool.map in a distribution module",
        "RPL404": "AsyncResult.get() without a timeout in a "
                  "distribution module",
    }

    _BROAD = {"Exception", "BaseException"}
    _POOL_BLOCKING = {"map", "imap", "imap_unordered", "starmap",
                      "map_async", "starmap_async"}
    _RESULT_NAMES = ("result", "future", "async", "task")

    def _exception_names(self, node: ast.expr | None) -> list[str]:
        if node is None:
            return []
        items = node.elts if isinstance(node, ast.Tuple) else [node]
        out = []
        for item in items:
            chain = _attr_chain(item)
            if chain:
                out.append(chain[-1])
        return out

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.source.module not in self.config.broad_except_allowed:
            if node.type is None:
                self.flag(node, "RPL401",
                          "bare `except:` swallows KeyboardInterrupt and "
                          "every library error; name the exceptions")
            else:
                broad = self._BROAD.intersection(
                    self._exception_names(node.type))
                if broad:
                    self.flag(node, "RPL402",
                              f"`except {sorted(broad)[0]}` is too broad; "
                              "catch the specific errors (see repro.errors)")
        self.generic_visit(node)

    def _in_pool_timeout_module(self) -> bool:
        return any(self.source.module == prefix
                   or self.source.module.startswith(prefix + ".")
                   for prefix in self.config.pool_timeout_module_prefixes)

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_pool_timeout_module():
            chain = _attr_chain(node.func)
            if chain is not None and len(chain) >= 2:
                receiver = chain[-2].lower()
                method = chain[-1]
                has_timeout = (bool(node.args) or any(
                    kw.arg == "timeout" for kw in node.keywords))
                if method in self._POOL_BLOCKING and "pool" in receiver:
                    self.flag(node, "RPL403",
                              f"`{receiver}.{method}(...)` blocks forever "
                              "if one worker hangs; use "
                              "repro.dist.faults.run_tasks (timeouts, "
                              "retries, fault injection)")
                elif (method == "get" and not has_timeout
                      and any(tag in receiver
                              for tag in self._RESULT_NAMES)):
                    self.flag(node, "RPL404",
                              f"`{receiver}.get()` without a timeout "
                              "blocks forever if the worker hangs; pass "
                              "get(timeout=...) or use "
                              "repro.dist.faults.run_tasks")
        self.generic_visit(node)


@register_checker
class ApiCompletenessChecker(Checker):
    """Every module declares ``__all__``, and it is complete + consistent.

    ``__all__`` is the contract the docs, the star-import surface, and
    this linter's own registry discovery all read; a public def missing
    from it is an API change nobody reviewed.
    """

    name = "api-completeness"
    codes = {
        "RPL501": "module missing __all__",
        "RPL502": "__all__ names an undefined symbol",
        "RPL503": "public definition missing from __all__",
        "RPL504": "__all__ is not a static list/tuple of strings",
    }

    def run(self) -> list[Violation]:
        if self.source.path.name in self.config.all_exempt_basenames:
            return []
        tree = self.source.tree
        declared, all_node = self._declared_all(tree)
        top_level = self._top_level_names(tree)
        public_defs = self._public_defs(tree)
        if all_node is None:
            if public_defs:  # pure-constant or empty modules are exempt
                self.flag(None, "RPL501",
                          "module defines a public API "
                          f"({', '.join(sorted(public_defs)[:4])}...) "
                          "but no __all__")
            return self.violations
        if declared is None:
            self.flag(all_node, "RPL504",
                      "__all__ must be a static list/tuple of string "
                      "literals so tooling can read it")
            return self.violations
        for name in declared:
            if name not in top_level:
                self.flag(all_node, "RPL502",
                          f"__all__ lists {name!r} which is not defined or "
                          "imported at module top level")
        for name in sorted(set(public_defs) - set(declared)):
            self.flag(public_defs[name], "RPL503",
                      f"public {type(public_defs[name]).__name__.lower()} "
                      f"{name!r} is not exported in __all__ (prefix it with "
                      "'_' or add it)")
        return self.violations

    def _declared_all(self, tree: ast.Module
                      ) -> tuple[list[str] | None, ast.AST | None]:
        for node in tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets
                           if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name):
                targets = [node.target]
            if not any(t.id == "__all__" for t in targets):
                continue
            value = node.value
            if not isinstance(value, (ast.List, ast.Tuple)):
                return None, node
            names = []
            for elt in value.elts:
                if not (isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)):
                    return None, node
                names.append(elt.value)
            return names, node
        return None, None

    def _top_level_names(self, tree: ast.Module) -> set[str]:
        names: set[str] = {"__version__", "__doc__"}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            names.add(sub.id)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    names.add(node.target.id)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    names.add(alias.asname
                              or alias.name.split(".")[0])
            elif isinstance(node, (ast.If, ast.Try)):
                # TYPE_CHECKING / fallback-import blocks: one level deep.
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, (ast.FunctionDef, ast.ClassDef)):
                        names.add(sub.name)
                    elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                        for alias in sub.names:
                            if alias.name != "*":
                                names.add(alias.asname
                                          or alias.name.split(".")[0])
        return names

    def _public_defs(self, tree: ast.Module) -> dict[str, ast.AST]:
        defs: dict[str, ast.AST] = {}
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                if not node.name.startswith("_"):
                    defs[node.name] = node
        return defs


@register_checker
class BlockStreamingChecker(Checker):
    """Producers must feed writers whole ``AdjacencyBlock``s.

    The output path's throughput comes from the vectorized block
    encoders (``StreamWriter.add_block`` / ``GraphFormat.write_blocks``);
    a per-vertex ``writer.add(...)`` loop — or handing ``write(...)`` an
    ``iter_adjacency()`` pair stream — reinserts the 2^scale-call Python
    loop between the engines and the disk that this layer exists to
    remove.  Enforced in the producer layers
    (``block_streaming_module_prefixes``); the formats package itself may
    use ``add`` as the compatibility fallback.
    """

    name = "block-streaming"
    codes = {
        "RPL505": "per-vertex writer.add(...) loop in a producer module",
        "RPL506": "write(...) fed an iter_adjacency() pair stream",
    }

    def __init__(self, source, config) -> None:
        super().__init__(source, config)
        self._loop_depth = 0

    def _in_producer_module(self) -> bool:
        return any(self.source.module == prefix
                   or self.source.module.startswith(prefix + ".")
                   for prefix in self.config.block_streaming_module_prefixes)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    def _visit_loop(self, node: ast.For | ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_producer_module():
            chain = _attr_chain(node.func)
            if chain is not None and len(chain) >= 2:
                receiver = chain[-2].lower()
                method = chain[-1]
                if (method == "add" and self._loop_depth > 0
                        and "writer" in receiver):
                    self.flag(node, "RPL505",
                              f"per-vertex `{receiver}.add(...)` loop; "
                              "feed whole blocks via add_block/"
                              "write_blocks (iter_blocks) instead")
                elif method == "write" and self._feeds_pair_stream(node):
                    self.flag(node, "RPL506",
                              f"`{receiver}.write(iter_adjacency(...))` "
                              "re-batches pairs the generator already "
                              "produced as blocks; use "
                              "write_blocks(iter_blocks(...))")
        self.generic_visit(node)

    @staticmethod
    def _feeds_pair_stream(node: ast.Call) -> bool:
        for arg in node.args:
            if isinstance(arg, ast.Call):
                chain = _attr_chain(arg.func)
                if chain and chain[-1] == "iter_adjacency":
                    return True
        return False


@register_checker
class MergeStreamingChecker(Checker):
    """External-merge streams must stay streamed in the producer layers.

    The bounded-RAM engine (:mod:`repro.util.external_sort`) yields the
    deduplicated key set as ascending chunks precisely so consumers
    never hold it whole; ``np.concatenate(list(merge_sorted_runs(...)))``
    — the pattern the engine replaced — silently reinstates O(|E|)
    memory and defeats the disk-based models' reason to exist.  Flagged
    in ``merge_stream_module_prefixes`` (``repro.models``,
    ``repro.dist``); the sanctioned terminal for APIs that genuinely
    need the whole array is
    :func:`repro.util.external_sort.collect_chunks`, and
    ``external_sort_unique`` (which collects by construction) is
    off-limits in those layers too.
    """

    name = "merge-streaming"
    codes = {
        "RPL520": "unbounded merge materialization",
    }

    _COLLECTORS = {"list", "tuple", "sorted"}
    _NUMPY_CONCATS = {"concatenate", "hstack", "vstack", "array"}

    def _in_scope(self) -> bool:
        return any(self.source.module == prefix
                   or self.source.module.startswith(prefix + ".")
                   for prefix in self.config.merge_stream_module_prefixes)

    def _is_stream_call(self, node: ast.AST) -> bool:
        """``merge_sorted_runs(...)`` / ``store.iter_unique(...)`` etc."""
        if not isinstance(node, ast.Call):
            return False
        chain = _attr_chain(node.func)
        return (chain is not None
                and chain[-1] in self.config.merge_stream_producer_names)

    def _materializes_stream(self, node: ast.AST) -> bool:
        """Does this expression hand a merge stream over whole?

        Covers the stream call itself, one ``list()``/``tuple()``
        wrapper, starred unpacking, and list/generator displays whose
        iterable is a stream call — the shapes
        ``np.concatenate(list(...))`` appears in.
        """
        if self._is_stream_call(node):
            return True
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain and chain[-1] in self._COLLECTORS:
                return any(self._materializes_stream(arg)
                           for arg in node.args)
        if isinstance(node, ast.Starred):
            return self._materializes_stream(node.value)
        if isinstance(node, (ast.List, ast.Tuple)):
            return any(self._materializes_stream(el) for el in node.elts)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return any(self._materializes_stream(gen.iter)
                       for gen in node.generators)
        return False

    def visit_Call(self, node: ast.Call) -> None:
        if self._in_scope():
            chain = _attr_chain(node.func)
            name = chain[-1] if chain else None
            if name == "external_sort_unique":
                self.flag(node, "RPL520",
                          "external_sort_unique() materializes the whole "
                          "merged edge set; stream iter_unique_keys() "
                          "(or route an unavoidable whole-array need "
                          "through collect_chunks)")
            elif (name in self._COLLECTORS
                    and any(self._is_stream_call(arg)
                            for arg in node.args)):
                self.flag(node, "RPL520",
                          f"`{name}(...)` collects a streaming merge "
                          "whole; consume the chunks incrementally or "
                          "use collect_chunks")
            elif (chain and chain[0] in _NUMPY_ALIASES
                    and name in self._NUMPY_CONCATS
                    and any(self._materializes_stream(arg)
                            for arg in node.args)):
                self.flag(node, "RPL520",
                          f"`{'.'.join(chain)}(...)` over a streaming "
                          "merge holds the whole deduplicated set in "
                          "memory; stream the chunks or use "
                          "collect_chunks")
        self.generic_visit(node)


@register_checker
class KernelVectorizationChecker(Checker):
    """The batched sampling kernel stays vectorized.

    RPL510 — a Python ``for`` loop iterating a per-edge array (directly
    or via ``enumerate``/``zip``) inside a kernel module
    (``kernel_module_prefixes``).  The destination samplers owe their
    throughput to whole-batch numpy work — one gather/compare per batch,
    never one interpreter iteration per edge; a loop over ``rows`` /
    ``dests`` / friends reinserts the O(|E|) Python loop the alias and
    bitwise backends exist to remove.  Functions whose name mentions
    ``reference`` are exempt: the paper-faithful engine is a per-edge
    loop by design (that is the ablation baseline).  Loops over
    per-block or per-table structures (``sources``, ``patterns``,
    ``range(levels)``) are fine — they are O(block) or O(2^b), not
    O(|E|).
    """

    name = "kernel-vectorization"
    codes = {
        "RPL510": "per-edge Python loop in a sampling-kernel module",
    }

    def __init__(self, source, config) -> None:
        super().__init__(source, config)
        self._function_stack: list[str] = []

    def _in_kernel_module(self) -> bool:
        return any(self.source.module == prefix
                   or self.source.module.startswith(prefix + ".")
                   for prefix in self.config.kernel_module_prefixes)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self,
                        node: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> None:
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    def _in_reference_path(self) -> bool:
        return any("reference" in name for name in self._function_stack)

    def visit_For(self, node: ast.For) -> None:
        if self._in_kernel_module() and not self._in_reference_path():
            name = self._edge_array_name(node.iter)
            if name is not None:
                self.flag(node, "RPL510",
                          f"Python loop over per-edge array `{name}`; "
                          "sampling paths must stay whole-batch numpy "
                          "(vectorize, or move the loop into a "
                          "*_reference function)")
        self.generic_visit(node)

    def _edge_array_name(self, expr: ast.expr) -> str | None:
        names = self.config.kernel_edge_array_names
        candidates = [expr]
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in {"enumerate", "zip"}):
            candidates = list(expr.args)
        for cand in candidates:
            if isinstance(cand, ast.Name) and cand.id in names:
                return cand.id
            if isinstance(cand, ast.Attribute) and cand.attr in names:
                return cand.attr
        return None


@register_checker
class TelemetryChecker(Checker):
    """Timing and reporting route through :mod:`repro.telemetry`.

    RPL507 — a raw ``time.perf_counter()`` call in an instrumented layer
    (``telemetry_span_module_prefixes``: the system facade, the
    distributed runtime, and the formats package).  Ad-hoc
    ``t0 = perf_counter(); ...; elapsed = perf_counter() - t0`` pairs
    produce timing no exporter can see and that cross-process
    aggregation cannot merge; use ``span(...)`` (hierarchical, appears
    in the trace tree) or ``Stopwatch`` (hot-path accumulator) instead.
    ``time.monotonic``/``time.sleep`` are fine — the rule is about
    *measurement*, not scheduling.

    RPL508 — a bare ``print(...)`` outside the allowed prefixes
    (``print_allowed_module_prefixes``: the CLI owns stdout, devtools
    write their own reports).  Library layers report through the
    ``repro.*`` logger hierarchy so verbosity follows
    ``TRILLIONG_LOG_LEVEL`` and output never corrupts piped graph data.
    """

    name = "telemetry"
    codes = {
        "RPL507": "raw time.perf_counter() in an instrumented layer",
        "RPL508": "bare print() in a library module",
    }

    def _module_under(self, prefixes: tuple[str, ...]) -> bool:
        return any(self.source.module == prefix
                   or self.source.module.startswith(prefix + ".")
                   for prefix in prefixes)

    def _in_span_module(self) -> bool:
        if self._module_under(("repro.telemetry",)):
            return False     # the implementation must call the real clock
        return self._module_under(self.config.telemetry_span_module_prefixes)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        is_perf = ((chain is not None and chain[-1] == "perf_counter")
                   or (isinstance(node.func, ast.Name)
                       and node.func.id == "perf_counter"))
        if is_perf and self._in_span_module():
            self.flag(node, "RPL507",
                      "raw time.perf_counter(); use repro.telemetry's "
                      "span(...) or Stopwatch so the timing lands in "
                      "the unified report")
        if (isinstance(node.func, ast.Name) and node.func.id == "print"
                and not self._module_under(
                    self.config.print_allowed_module_prefixes)):
            self.flag(node, "RPL508",
                      "bare print() in a library module; use "
                      "repro.telemetry.get_logger(...) so output "
                      "respects TRILLIONG_LOG_LEVEL")
        self.generic_visit(node)


@register_checker
class IntrospectionChecker(Checker):
    """Live introspection stays read-only (RPL509).

    Modules under ``introspection_module_prefixes`` (the flight
    recorder, the telemetry HTTP server, the trace exporter) observe a
    *running* generation.  The whole design contract is that turning
    them on cannot change the output bytes, so inside them:

    - no RNG stream construction or draws (``stream()`` /
      ``default_rng()`` / ``.random()`` & co) — an introspection-path
      draw would shift every subsequent generator draw;
    - no metrics-registry mutation — neither instrument updates
      (``.inc()`` / ``.observe()`` / ``.merge()`` / ``.reset()``) nor
      the accessor methods ``counter()``/``gauge()``/``histogram()``,
      which *create* instruments as a side effect (read via
      ``registry.snapshot()`` instead);
    - no imports of generator machinery
      (``introspection_forbidden_imports``: ``repro.core`` /
      ``repro.models``).

    ``.set(...)`` is deliberately *not* in the mutator set: it is far
    more often ``threading.Event.set()`` (lifecycle, fine) than
    ``Gauge.set()``, and gauge writes from introspection code are
    already unreachable without first calling the flagged ``gauge()``
    accessor.
    """

    name = "read-only-introspection"
    codes = {"RPL509": "non-read-only action in an introspection module"}

    _MUTATORS = frozenset({"inc", "observe", "observe_bulk", "merge",
                           "reset", "counter", "gauge", "histogram"})

    def _active(self) -> bool:
        return any(self.source.module == prefix
                   or self.source.module.startswith(prefix + ".")
                   for prefix in self.config.introspection_module_prefixes)

    def _check_import(self, node: ast.AST, target: str) -> None:
        for banned in self.config.introspection_forbidden_imports:
            if target == banned or target.startswith(banned + "."):
                self.flag(node, "RPL509",
                          f"introspection module imports {target}; "
                          "read-only observers must not reach into "
                          "generator machinery")
                return

    def _resolve_relative(self, node: ast.ImportFrom) -> str:
        parts = self.source.module.split(".")
        base = parts[:-node.level] if node.level <= len(parts) else []
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base)

    def visit_Import(self, node: ast.Import) -> None:
        if self._active():
            for alias in node.names:
                self._check_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._active():
            target = self._resolve_relative(node) if node.level \
                else node.module
            if target:
                self._check_import(node, target)
                for alias in node.names:
                    self._check_import(node, f"{target}.{alias.name}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._active():
            self.generic_visit(node)
            return
        if (isinstance(node.func, ast.Name)
                and node.func.id in self.config.rng_stream_constructors):
            self.flag(node, "RPL509",
                      f"{node.func.id}() constructs an RNG stream in an "
                      "introspection module; read-only observers must "
                      "not draw entropy")
        elif isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in self.config.rng_draw_methods:
                self.flag(node, "RPL509",
                          f".{attr}() draws from an RNG stream in an "
                          "introspection module; a single draw here "
                          "shifts every subsequent generator draw")
            elif attr in self._MUTATORS:
                self.flag(node, "RPL509",
                          f".{attr}() mutates the metrics registry in an "
                          "introspection module; read the state via "
                          "registry.snapshot() instead")
        self.generic_visit(node)


@register_checker
class MutableDefaultsChecker(Checker):
    """No mutable default arguments.

    A ``def f(x, acc=[])`` shares one list across every call — in a
    generator library that means state leaking between supposedly
    independent runs, i.e. seed-dependent results that are not functions
    of the seed.
    """

    name = "mutable-defaults"
    codes = {"RPL601": "mutable default argument"}

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                      "Counter", "OrderedDict", "deque"}

    def _check_args(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                    | ast.Lambda) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                kind = type(default).__name__.lower()
                self.flag(default, "RPL601",
                          f"mutable default ({kind} literal) is shared "
                          "across calls; default to None and create it "
                          "inside the function")
            elif (isinstance(default, ast.Call)
                  and isinstance(default.func, ast.Name)
                  and default.func.id in self._MUTABLE_CALLS):
                self.flag(default, "RPL601",
                          f"mutable default ({default.func.id}()) is "
                          "shared across calls; default to None and create "
                          "it inside the function")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_args(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_args(node)
        self.generic_visit(node)
