"""Checker framework for ``reprolint``.

Two kinds of rules plug into the framework:

- A :class:`Checker` is an :class:`ast.NodeVisitor` subclass registered
  via :func:`register_checker`.  The runner parses each file once into a
  :class:`SourceFile` (source text, AST, dotted module name, pragma
  table) and hands it to every enabled checker; checkers call
  :meth:`Checker.flag` to report :class:`Violation` records.  File
  checkers see one file at a time, so their results are cacheable per
  file (see :mod:`repro.devtools.engine.cache`).
- A :class:`ProjectChecker` (registered via
  :func:`register_project_checker`) runs once over the whole-program
  :class:`~repro.devtools.engine.project.ProjectModel` — the symbol
  table, import graph, and call graph built from every file — and flags
  cross-file properties no single-file pass can see.

Suppressions use pragma comments (scanned from real COMMENT tokens, so
pragma-shaped *strings* in fixture code do not suppress anything):

- ``# reprolint: disable=<name-or-code>[,<name-or-code>...]`` on the
  offending line (or ``disable=all``),
- ``# reprolint: disable-file=<name-or-code>[,...]`` anywhere in the file
  to silence a checker for the whole file,
- ``# reprolint: skip-file`` to skip the file entirely.

Every pragma's *use* is recorded; the ``dead-pragma`` project checker
(RPL701) reports pragmas that suppressed nothing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine.project import ModuleSummary, ProjectModel

__all__ = ["Violation", "LintConfig", "SourceFile", "Checker",
           "ProjectChecker", "Pragma", "PragmaTable",
           "register_checker", "all_checkers",
           "register_project_checker", "all_project_checkers",
           "lint_file", "lint_paths", "module_name", "iter_python_files",
           "config_with", "relaxed_profile", "ALL", "RELAXED_CODES"]

_PRAGMA = re.compile(r"#\s*reprolint:\s*(skip-file|disable(?:-file)?=([\w\-, ]+))")

#: Sentinel meaning "every checker" in a pragma's disable set.
ALL = "all"

#: Codes the relaxed (tests / benchmarks) profile switches off: fixtures
#: may seed ad-hoc RNGs, assert exact float values, print tables, and
#: skip ``__all__`` declarations.
RELAXED_CODES = frozenset({
    "RPL101", "RPL102", "RPL103",            # ad-hoc RNGs in fixtures
    "RPL111",                                # determinism tests *assert*
                                             # same-seed streams match
    "RPL301",                                # exact-value asserts
    "RPL501", "RPL502", "RPL503", "RPL504",  # no __all__ contract
    "RPL508",                                # print() in harness output
    "RPL520",                                # tests/benches materialize
                                             # merge streams to compare
    "RPL811", "RPL812",                      # fixtures build tiny arrays
                                             # where default dtypes and
                                             # narrow accumulators are fine
})


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    code: str      #: stable machine code, e.g. ``RPL101``
    name: str      #: checker name, e.g. ``rng-determinism``
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.name}] {self.message}")

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "name": self.name,
                "message": self.message}

    @classmethod
    def from_dict(cls, doc: dict[str, object]) -> "Violation":
        return cls(path=str(doc["path"]), line=int(doc["line"]),  # type: ignore[call-overload]
                   col=int(doc["col"]), code=str(doc["code"]),  # type: ignore[call-overload]
                   name=str(doc["name"]), message=str(doc["message"]))


@dataclass(frozen=True)
class Pragma:
    """One ``# reprolint:`` suppression comment, located and parsed."""

    line: int
    kind: str                  #: ``disable`` | ``disable-file`` | ``skip-file``
    targets: frozenset[str]    #: lower-cased checker names / codes / ``all``

    def to_json(self) -> dict[str, object]:
        return {"line": self.line, "kind": self.kind,
                "targets": sorted(self.targets)}

    @classmethod
    def from_json(cls, doc: dict[str, object]) -> "Pragma":
        return cls(line=int(doc["line"]), kind=str(doc["kind"]),  # type: ignore[call-overload]
                   targets=frozenset(doc["targets"]))  # type: ignore[arg-type]


@dataclass
class PragmaTable:
    """The suppression pragmas of one file, plus which of them fired.

    ``used`` holds ``(pragma_line, matched_target)`` pairs; RPL701
    reports any non-``skip-file`` pragma none of whose targets ever
    matched a would-be violation.
    """

    skip: bool = False
    pragmas: list[Pragma] = field(default_factory=list)
    used: set[tuple[int, str]] = field(default_factory=set)

    @classmethod
    def scan(cls, text: str) -> "PragmaTable":
        """Parse pragmas from ``text``'s comment tokens.

        Tokenizing (rather than regexing whole lines) keeps pragma-shaped
        string literals — lint-fixture code embedded in tests — from
        registering as real suppressions.  Unreadable sources fall back
        to the line scan.
        """
        table = cls()
        try:
            comments = [(tok.start[0], tok.string) for tok in
                        tokenize.generate_tokens(io.StringIO(text).readline)
                        if tok.type == tokenize.COMMENT]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            comments = [(lineno, line) for lineno, line
                        in enumerate(text.splitlines(), start=1)
                        if "#" in line]
        for lineno, comment in comments:
            match = _PRAGMA.search(comment)
            if not match:
                continue
            if match.group(1) == "skip-file":
                table.skip = True
                continue
            kind = ("disable-file" if match.group(1).startswith("disable-file")
                    else "disable")
            targets = frozenset(t.strip().lower() for t in
                                (match.group(2) or "").split(",") if t.strip())
            if targets:
                table.pragmas.append(Pragma(lineno, kind, targets))
        return table

    def is_disabled(self, keys: set[str], line: int) -> bool:
        """True if a pragma suppresses a violation with ``keys`` at
        ``line``; the match is recorded for dead-pragma detection."""
        hit = False
        for pragma in self.pragmas:
            if pragma.kind == "disable" and pragma.line != line:
                continue
            matched = keys & pragma.targets
            if matched:
                for target in matched:
                    self.used.add((pragma.line, target))
                hit = True
        return hit

    def unused_pragmas(self) -> list[Pragma]:
        """Pragmas (excluding ``skip-file``) that never suppressed."""
        return [p for p in self.pragmas
                if not any((p.line, t) in self.used for t in p.targets)]

    def to_json(self) -> dict[str, object]:
        return {"skip": self.skip,
                "pragmas": [p.to_json() for p in self.pragmas]}

    @classmethod
    def from_json(cls, doc: dict[str, object]) -> "PragmaTable":
        return cls(skip=bool(doc["skip"]),
                   pragmas=[Pragma.from_json(p)
                            for p in doc["pragmas"]])  # type: ignore[union-attr]


#: Default interval seeds for the numeric analysis (RPL8xx): the
#: paper's value ranges, keyed by exact parameter name.  2^48 - 1 is
#: the ADJ6 ID ceiling; scale tops out at 62 (edges fit int64).
_INTERVAL_SEEDS: dict[str, tuple[float, float]] = {
    "scale": (0, 62),
    "log_n": (0, 62),
    "block_size": (1, 2 ** 31),
    "edge_factor": (0, 2 ** 20),
    "degree": (0, 2 ** 32 - 1),
    "degrees": (0, 2 ** 32 - 1),
    "max_degree": (0, 2 ** 32 - 1),
    "max_id": (0, 2 ** 48 - 1),
    "num_vertices": (1, 2 ** 48),
    "n_vertices": (1, 2 ** 48),
    "num_edges": (0, 2 ** 62),
    "n_edges": (0, 2 ** 62),
    "p": (0.0, 1.0),
    "prob": (0.0, 1.0),
    "probability": (0.0, 1.0),
}


@dataclass(frozen=True)
class LintConfig:
    """Project policy consumed by the checkers.

    The defaults encode the TrillionG repo's rules; tests override
    individual fields to exercise checkers against fixture trees, and
    :func:`relaxed_profile` is the stock policy for test/benchmark
    directories.
    """

    #: Module allowed to construct numpy generators / SeedSequences.
    rng_module: str = "repro.core.rng"
    #: Extra modules allowed to *call into* numpy's random module
    #: (none by default — everything routes through ``rng_module``).
    rng_allowed_modules: frozenset[str] = frozenset()
    #: ``numpy.random`` attributes that may be referenced anywhere because
    #: they are types used in annotations, not entropy sources.
    rng_type_names: frozenset[str] = frozenset(
        {"Generator", "BitGenerator", "RandomState"})
    #: Layering rules: modules under <key> must not import <values>.
    layering_rules: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "repro.core": ("repro.dist", "repro.formats", "repro.cli",
                       "repro.cluster"),
        "repro.models": ("repro.dist",),
        "repro.util": ("repro.core", "repro.models", "repro.dist",
                       "repro.formats", "repro.cluster", "repro.cli"),
        # telemetry is the bottom layer: every other layer may import it,
        # so it must import none of them (or instrumentation would cycle).
        "repro.telemetry": ("repro.core", "repro.models", "repro.dist",
                            "repro.formats", "repro.cluster", "repro.cli",
                            "repro.system", "repro.util",
                            "repro.sanitize"),
        # the sanitizer sits beside telemetry at the bottom: rng and the
        # format pipeline call into it, so it may import nothing above.
        "repro.sanitize": ("repro.core", "repro.models", "repro.dist",
                           "repro.formats", "repro.cluster", "repro.cli",
                           "repro.system", "repro.util", "repro.telemetry"),
    })
    #: Modules whose Decimal high-precision paths must not round-trip
    #: through ``float()``.
    precision_modules: frozenset[str] = frozenset(
        {"repro.core.recvec", "repro.core.probability"})
    #: Modules where broad ``except`` clauses are tolerated (none today).
    broad_except_allowed: frozenset[str] = frozenset()
    #: Module prefixes where unbounded blocking pool calls are forbidden:
    #: ``pool.map`` and timeout-less ``AsyncResult.get()`` hang the whole
    #: run when one worker hangs; use the fault-tolerant scheduler.
    pool_timeout_module_prefixes: tuple[str, ...] = ("repro.dist",)
    #: Module basenames exempt from the ``__all__`` requirement.
    all_exempt_basenames: frozenset[str] = frozenset({"__main__.py"})
    #: Float literals that are exact in binary and legitimate sentinels,
    #: so ``x == 0.0`` style guards are not flagged.
    exact_float_sentinels: frozenset[float] = frozenset({0.0, 1.0, -1.0})
    #: Identifier substrings marking an expression as a probability /
    #: CDF value for the float-equality rule.
    probability_name_patterns: tuple[str, ...] = (
        "prob", "cdf", "recvec", "pvec")
    #: Module prefixes where producers must feed writers whole
    #: ``AdjacencyBlock``s (``add_block``/``write_blocks``), never
    #: per-vertex ``writer.add(...)`` loops or pair-stream ``write``.
    block_streaming_module_prefixes: tuple[str, ...] = (
        "repro.system", "repro.dist")
    #: Module prefixes where a streaming merge must stay streamed:
    #: collecting the whole deduplicated key stream into one list/array
    #: re-creates the unbounded ``np.concatenate(list(...))`` pattern
    #: the external-memory engine removed (RPL520).
    merge_stream_module_prefixes: tuple[str, ...] = (
        "repro.models", "repro.dist")
    #: Call names that produce a bounded streaming merge (chunk
    #: iterators); feeding one to ``list``/``tuple``/``sorted`` or a
    #: numpy concatenation materializes the whole merged set.
    merge_stream_producer_names: frozenset[str] = frozenset(
        {"merge_sorted_runs", "iter_unique_keys", "iter_unique",
         "iter_unique_key_chunks"})
    #: Module prefixes holding the batched sampling kernel, where a
    #: Python ``for`` loop over a per-edge array would reinsert the
    #: O(|E|) interpreter loop the vectorized backends exist to remove.
    #: Functions whose name mentions ``reference`` are exempt (the
    #: paper-faithful per-edge engine is a loop by design).
    kernel_module_prefixes: tuple[str, ...] = (
        "repro.core.generator", "repro.core.alias")
    #: Names of per-edge arrays in the kernel: looping over one of
    #: these (directly, or via ``enumerate``/``zip``) is RPL510.
    kernel_edge_array_names: frozenset[str] = frozenset(
        {"rows", "dests", "destinations", "xs", "refill_rows",
         "new_dests"})
    #: Module prefixes where raw ``time.perf_counter()`` pairs are
    #: forbidden: pipeline timing must flow through
    #: ``repro.telemetry`` (``span()`` / ``Stopwatch``) so it lands in
    #: the unified report instead of ad-hoc fields.
    telemetry_span_module_prefixes: tuple[str, ...] = (
        "repro.system", "repro.dist", "repro.formats")
    #: Module prefixes allowed to call bare ``print()`` — the CLI owns
    #: stdout; everything else reports through the ``repro.*`` loggers.
    #: ``repro.sanitize.diff`` is the trace-diff command-line entry
    #: (``python -m repro.sanitize.diff``), so it owns its stdout too.
    print_allowed_module_prefixes: tuple[str, ...] = (
        "repro.cli", "repro.devtools", "repro.sanitize.diff")
    #: Module prefixes that must follow the atomic-write protocol
    #: (write temp -> flush -> fsync -> close -> rename): the checkpoint
    #: and spill-file layers, where a torn write corrupts a resumable run.
    atomic_write_module_prefixes: tuple[str, ...] = (
        "repro.dist", "repro.util")
    #: Call names whose result is a deterministic RNG stream for the
    #: flow-sensitive rng-stream-flow analysis.
    rng_stream_constructors: frozenset[str] = frozenset(
        {"stream", "default_rng"})
    #: Generator methods that *draw* from a stream (advance its state).
    rng_draw_methods: frozenset[str] = frozenset(
        {"random", "integers", "normal", "standard_normal", "uniform",
         "choice", "shuffle", "permutation", "permuted", "exponential",
         "poisson", "binomial", "geometric", "bytes"})
    #: Callable names that ship their arguments to another process /
    #: pickle them into a task (worker boundary for rng-stream-flow).
    worker_submit_calls: frozenset[str] = frozenset(
        {"Process", "apply_async", "submit", "run_tasks",
         "map_async", "starmap_async", "dumps"})
    #: Module prefixes where the spawn-hygiene project rules (RPL620/621)
    #: apply: worker callables crossing a spawn boundary must be
    #: picklable top-level functions, and worker code must take its
    #: configuration from the task tuple, not the environment.
    spawn_module_prefixes: tuple[str, ...] = ("repro.dist",)
    #: Module prefixes holding *read-only live introspection* (RPL509):
    #: the flight recorder, the telemetry HTTP server, and the trace
    #: exporter observe a running generation, so any write they perform
    #: — an RNG draw, a registry mutation, importing generator code —
    #: could perturb the run they are watching.
    introspection_module_prefixes: tuple[str, ...] = (
        "repro.telemetry.flight", "repro.telemetry.server",
        "repro.telemetry.traceview")
    #: Import prefixes forbidden inside introspection modules: pulling
    #: in generator machinery gives read-only code a path to the hot
    #: loop (and its RNG streams).
    introspection_forbidden_imports: tuple[str, ...] = (
        "repro.core", "repro.models")
    #: Module prefixes the numeric abstract interpretation (RPL810 /
    #: RPL812 / RPL813 / RPL814 + summary return facts) runs over.
    numeric_module_prefixes: tuple[str, ...] = ("repro",)
    #: Module prefixes where numpy constructors must name a dtype
    #: (RPL811) — the ID-carrying packages where a platform-default
    #: ``np.arange`` silently wraps past 2^31 on 32-bit builds.
    default_dtype_module_prefixes: tuple[str, ...] = (
        "repro.core", "repro.formats", "repro.models", "repro.dist")
    #: Parameter-name -> (lo, hi) interval seeds for the numeric
    #: analysis: the paper's known value ranges (48-bit IDs, scale
    #: ≤ 62, probabilities in [0, 1]).  Names are matched exactly;
    #: anything not listed falls back to the probability-name
    #: patterns above, then to unknown.
    interval_seeds: dict[str, tuple[float, float]] = field(
        default_factory=lambda: dict(_INTERVAL_SEEDS))
    #: Element count the accumulation-overflow rule (RPL812) assumes:
    #: 2^33 ≈ one scale-33 vertex partition, the smallest scale where
    #: IDs straddle 2^32.
    accumulation_element_count: int = 2 ** 33
    #: Violation codes switched off wholesale (per-directory profiles).
    disabled_codes: frozenset[str] = frozenset()


def relaxed_profile(config: LintConfig | None = None) -> LintConfig:
    """The tests/benchmarks policy: ``config`` with :data:`RELAXED_CODES`
    disabled (fixtures may use stdlib ``random``/ad-hoc RNGs, assert
    exact floats, print, and skip ``__all__``)."""
    base = config or LintConfig()
    return replace(base, disabled_codes=base.disabled_codes | RELAXED_CODES)


@dataclass
class SourceFile:
    """A parsed source file plus the metadata checkers need."""

    path: Path
    text: str
    tree: ast.Module
    module: str                        #: dotted name, e.g. ``repro.core.rng``
    pragma_table: PragmaTable = field(default_factory=PragmaTable)

    @classmethod
    def parse(cls, path: Path | str) -> "SourceFile":
        path = Path(path)
        with tokenize.open(path) as handle:
            text = handle.read()
        tree = ast.parse(text, filename=str(path))
        return cls(path=path, text=text, tree=tree,
                   module=module_name(path),
                   pragma_table=PragmaTable.scan(text))

    @property
    def skip(self) -> bool:
        return self.pragma_table.skip

    def is_disabled(self, checker: "Checker | str", line: int,
                    code: str) -> bool:
        name = checker if isinstance(checker, str) else checker.name
        keys = {name.lower(), code.lower(), ALL}
        return self.pragma_table.is_disabled(keys, line)


def module_name(path: Path) -> str:
    """Dotted module name, found by walking up through ``__init__.py``s.

    ``src/repro/core/rng.py`` maps to ``repro.core.rng``; a loose file
    outside any package maps to its own stem.
    """
    path = Path(path).resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


class Checker(ast.NodeVisitor):
    """Base class for one single-file lint rule family.

    Subclasses set :attr:`name` and :attr:`codes`, implement visitor
    methods, and call :meth:`flag`.  One instance is created per file.
    """

    #: Kebab-case rule name used in pragmas and reports.
    name: str = "abstract"
    #: Mapping of machine code -> human description of the rule.
    codes: dict[str, str] = {}

    def __init__(self, source: SourceFile, config: LintConfig) -> None:
        self.source = source
        self.config = config
        self.violations: list[Violation] = []

    def run(self) -> list[Violation]:
        """Collect this checker's violations for :attr:`source`."""
        self.visit(self.source.tree)
        self.finish()
        return self.violations

    def finish(self) -> None:
        """Hook for whole-module rules that report after traversal."""

    def flag(self, node: ast.AST | None, code: str, message: str) -> None:
        if code in self.config.disabled_codes:
            return
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        if self.source.is_disabled(self, line, code):
            return
        self.violations.append(Violation(
            path=str(self.source.path), line=line, col=col, code=code,
            name=self.name, message=message))


class ProjectChecker:
    """Base class for one whole-program lint rule family.

    Instantiated once per run with the project-wide config;
    :meth:`check` inspects the :class:`ProjectModel` and calls
    :meth:`flag` with the target module's summary.  Per-module profile
    configs and pragma suppression are applied by :meth:`flag`.
    """

    name: str = "abstract-project"
    codes: dict[str, str] = {}
    #: Checkers run in ascending priority; dead-pragma runs last so it
    #: sees every suppression the other rules recorded.
    priority: int = 0

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.violations: list[Violation] = []

    def run(self, project: "ProjectModel") -> list[Violation]:
        self.project = project
        self.check(project)
        self.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
        return self.violations

    def check(self, project: "ProjectModel") -> None:
        raise NotImplementedError

    def flag(self, summary: "ModuleSummary", line: int, col: int,
             code: str, message: str) -> None:
        config = self.project.config_for_path(summary.path)
        if code in config.disabled_codes:
            return
        keys = {self.name.lower(), code.lower(), ALL}
        if summary.pragma_table.is_disabled(keys, line):
            return
        self.violations.append(Violation(
            path=summary.path, line=line, col=col, code=code,
            name=self.name, message=message))


_CHECKERS: dict[str, Type[Checker]] = {}
_PROJECT_CHECKERS: dict[str, Type[ProjectChecker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a file checker to the global registry."""
    if cls.name in _CHECKERS or cls.name in _PROJECT_CHECKERS:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _CHECKERS[cls.name] = cls
    return cls


def register_project_checker(cls: Type[ProjectChecker]
                             ) -> Type[ProjectChecker]:
    """Class decorator adding a project checker to the global registry."""
    if cls.name in _CHECKERS or cls.name in _PROJECT_CHECKERS:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _PROJECT_CHECKERS[cls.name] = cls
    return cls


def _import_bundled() -> None:
    from . import checkers as _file_rules            # noqa: F401
    from .engine import concurrency_checkers as _conc_rules  # noqa: F401
    from .engine import flow_checkers as _flow_rules  # noqa: F401
    from .engine import numeric_checkers as _numeric_rules  # noqa: F401
    from .engine import project_checkers as _project_rules  # noqa: F401


def all_checkers() -> dict[str, Type[Checker]]:
    """Registered file checkers by name (importing the bundled set)."""
    _import_bundled()
    return dict(_CHECKERS)


def all_project_checkers() -> dict[str, Type[ProjectChecker]]:
    """Registered project checkers by name (importing the bundled set)."""
    _import_bundled()
    return dict(_PROJECT_CHECKERS)


def _validate_names(enabled: Iterable[str] | None,
                    disabled: Iterable[str] | None) -> None:
    known = set(all_checkers()) | set(all_project_checkers())
    for group in (enabled, disabled):
        if group is not None:
            unknown = set(group) - known
            if unknown:
                raise KeyError(f"unknown checkers: {sorted(unknown)}")


def _select(enabled: Iterable[str] | None,
            disabled: Iterable[str] | None) -> list[Type[Checker]]:
    _validate_names(enabled, disabled)
    registry = all_checkers()
    names = set(registry)
    if enabled is not None:
        names &= set(enabled)
    if disabled is not None:
        names -= set(disabled)
    return [registry[name] for name in sorted(names)]


def _select_project(enabled: Iterable[str] | None,
                    disabled: Iterable[str] | None
                    ) -> list[Type[ProjectChecker]]:
    _validate_names(enabled, disabled)
    registry = all_project_checkers()
    names = set(registry)
    if enabled is not None:
        names &= set(enabled)
    if disabled is not None:
        names -= set(disabled)
    return [registry[name] for name
            in sorted(names, key=lambda n: (registry[n].priority, n))]


def lint_file(path: Path | str, config: LintConfig | None = None, *,
              enabled: Iterable[str] | None = None,
              disabled: Iterable[str] | None = None) -> list[Violation]:
    """Run the (selected) file checkers over one file.

    Project checkers need the whole tree and do not run here; use
    :func:`lint_paths` for the full analysis.
    """
    config = config or LintConfig()
    source = SourceFile.parse(path)
    if source.skip:
        return []
    out: list[Violation] = []
    for cls in _select(enabled, disabled):
        out.extend(cls(source, config).run())
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(paths: Iterable[Path | str],
               config: LintConfig | None = None, *,
               enabled: Iterable[str] | None = None,
               disabled: Iterable[str] | None = None,
               cache_dir: Path | str | None = None
               ) -> tuple[list[Violation], int]:
    """Lint every ``.py`` file under ``paths`` — file checkers *and* the
    whole-program project checkers.

    Returns ``(violations, files_checked)``.  Unparseable files raise
    :class:`SyntaxError` to the caller (the CLI maps that to exit 2).
    ``cache_dir`` enables the incremental cache (the CLI passes it; the
    API default stays uncached so tests see cold behaviour).
    """
    from .engine.runner import run_paths
    result = run_paths(paths, config=config, enabled=enabled,
                       disabled=disabled, cache_dir=cache_dir)
    return result.violations, result.files_checked


def config_with(config: LintConfig | None = None, **overrides) -> LintConfig:
    """Convenience for tests: a config with selected fields replaced."""
    return replace(config or LintConfig(), **overrides)
