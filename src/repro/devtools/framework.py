"""Checker framework for ``reprolint``.

A :class:`Checker` is an :class:`ast.NodeVisitor` subclass registered via
:func:`register_checker`.  The runner parses each file once into a
:class:`SourceFile` (source text, AST, dotted module name, pragma table)
and hands it to every enabled checker; checkers call :meth:`Checker.flag`
to report :class:`Violation` records.  Suppressions use pragma comments:

- ``# reprolint: disable=<name-or-code>[,<name-or-code>...]`` on the
  offending line (or ``disable=all``),
- ``# reprolint: disable-file=<name-or-code>[,...]`` anywhere in the file
  to silence a checker for the whole file,
- ``# reprolint: skip-file`` to skip the file entirely.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Type

__all__ = ["Violation", "LintConfig", "SourceFile", "Checker",
           "register_checker", "all_checkers", "lint_file", "lint_paths",
           "module_name", "iter_python_files", "config_with", "ALL"]

_PRAGMA = re.compile(r"#\s*reprolint:\s*(skip-file|disable(?:-file)?=([\w\-, ]+))")

#: Sentinel meaning "every checker" in a pragma's disable set.
ALL = "all"


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    code: str      #: stable machine code, e.g. ``RPL101``
    name: str      #: checker name, e.g. ``rng-determinism``
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.name}] {self.message}")

    def to_dict(self) -> dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "name": self.name,
                "message": self.message}


@dataclass(frozen=True)
class LintConfig:
    """Project policy consumed by the checkers.

    The defaults encode the TrillionG repo's rules; tests override
    individual fields to exercise checkers against fixture trees.
    """

    #: Module allowed to construct numpy generators / SeedSequences.
    rng_module: str = "repro.core.rng"
    #: Extra modules allowed to *call into* numpy's random module
    #: (none by default — everything routes through ``rng_module``).
    rng_allowed_modules: frozenset[str] = frozenset()
    #: ``numpy.random`` attributes that may be referenced anywhere because
    #: they are types used in annotations, not entropy sources.
    rng_type_names: frozenset[str] = frozenset(
        {"Generator", "BitGenerator", "RandomState"})
    #: Layering rules: modules under <key> must not import <values>.
    layering_rules: dict[str, tuple[str, ...]] = field(default_factory=lambda: {
        "repro.core": ("repro.dist", "repro.formats", "repro.cli",
                       "repro.cluster"),
        "repro.models": ("repro.dist",),
        "repro.util": ("repro.core", "repro.models", "repro.dist",
                       "repro.formats", "repro.cluster", "repro.cli"),
        # telemetry is the bottom layer: every other layer may import it,
        # so it must import none of them (or instrumentation would cycle).
        "repro.telemetry": ("repro.core", "repro.models", "repro.dist",
                            "repro.formats", "repro.cluster", "repro.cli",
                            "repro.system", "repro.util"),
    })
    #: Modules whose Decimal high-precision paths must not round-trip
    #: through ``float()``.
    precision_modules: frozenset[str] = frozenset(
        {"repro.core.recvec", "repro.core.probability"})
    #: Modules where broad ``except`` clauses are tolerated (none today).
    broad_except_allowed: frozenset[str] = frozenset()
    #: Module prefixes where unbounded blocking pool calls are forbidden:
    #: ``pool.map`` and timeout-less ``AsyncResult.get()`` hang the whole
    #: run when one worker hangs; use the fault-tolerant scheduler.
    pool_timeout_module_prefixes: tuple[str, ...] = ("repro.dist",)
    #: Module basenames exempt from the ``__all__`` requirement.
    all_exempt_basenames: frozenset[str] = frozenset({"__main__.py"})
    #: Float literals that are exact in binary and legitimate sentinels,
    #: so ``x == 0.0`` style guards are not flagged.
    exact_float_sentinels: frozenset[float] = frozenset({0.0, 1.0, -1.0})
    #: Identifier substrings marking an expression as a probability /
    #: CDF value for the float-equality rule.
    probability_name_patterns: tuple[str, ...] = (
        "prob", "cdf", "recvec", "pvec")
    #: Module prefixes where producers must feed writers whole
    #: ``AdjacencyBlock``s (``add_block``/``write_blocks``), never
    #: per-vertex ``writer.add(...)`` loops or pair-stream ``write``.
    block_streaming_module_prefixes: tuple[str, ...] = (
        "repro.system", "repro.dist")
    #: Module prefixes where raw ``time.perf_counter()`` pairs are
    #: forbidden: pipeline timing must flow through
    #: ``repro.telemetry`` (``span()`` / ``Stopwatch``) so it lands in
    #: the unified report instead of ad-hoc fields.
    telemetry_span_module_prefixes: tuple[str, ...] = (
        "repro.system", "repro.dist", "repro.formats")
    #: Module prefixes allowed to call bare ``print()`` — the CLI owns
    #: stdout; everything else reports through the ``repro.*`` loggers.
    print_allowed_module_prefixes: tuple[str, ...] = (
        "repro.cli", "repro.devtools")


@dataclass
class SourceFile:
    """A parsed source file plus the metadata checkers need."""

    path: Path
    text: str
    tree: ast.Module
    module: str                        #: dotted name, e.g. ``repro.core.rng``
    skip: bool = False
    file_disabled: set[str] = field(default_factory=set)
    line_disabled: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path | str) -> "SourceFile":
        path = Path(path)
        with tokenize.open(path) as handle:
            text = handle.read()
        tree = ast.parse(text, filename=str(path))
        src = cls(path=path, text=text, tree=tree,
                  module=module_name(path))
        src._scan_pragmas()
        return src

    def _scan_pragmas(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if not match:
                continue
            if match.group(1) == "skip-file":
                self.skip = True
                continue
            targets = {t.strip().lower()
                       for t in (match.group(2) or "").split(",") if t.strip()}
            if match.group(1).startswith("disable-file"):
                self.file_disabled |= targets
            else:
                self.line_disabled.setdefault(lineno, set()).update(targets)

    def is_disabled(self, checker: "Checker", line: int, code: str) -> bool:
        keys = {checker.name.lower(), code.lower(), ALL}
        if keys & self.file_disabled:
            return True
        return bool(keys & self.line_disabled.get(line, set()))


def module_name(path: Path) -> str:
    """Dotted module name, found by walking up through ``__init__.py``s.

    ``src/repro/core/rng.py`` maps to ``repro.core.rng``; a loose file
    outside any package maps to its own stem.
    """
    path = Path(path).resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


class Checker(ast.NodeVisitor):
    """Base class for one lint rule family.

    Subclasses set :attr:`name` and :attr:`codes`, implement visitor
    methods, and call :meth:`flag`.  One instance is created per file.
    """

    #: Kebab-case rule name used in pragmas and reports.
    name: str = "abstract"
    #: Mapping of machine code -> human description of the rule.
    codes: dict[str, str] = {}

    def __init__(self, source: SourceFile, config: LintConfig) -> None:
        self.source = source
        self.config = config
        self.violations: list[Violation] = []

    def run(self) -> list[Violation]:
        """Collect this checker's violations for :attr:`source`."""
        self.visit(self.source.tree)
        self.finish()
        return self.violations

    def finish(self) -> None:
        """Hook for whole-module rules that report after traversal."""

    def flag(self, node: ast.AST | None, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1) if node is not None else 1
        col = getattr(node, "col_offset", 0) if node is not None else 0
        if self.source.is_disabled(self, line, code):
            return
        self.violations.append(Violation(
            path=str(self.source.path), line=line, col=col, code=code,
            name=self.name, message=message))


_CHECKERS: dict[str, Type[Checker]] = {}


def register_checker(cls: Type[Checker]) -> Type[Checker]:
    """Class decorator adding a checker to the global registry."""
    if cls.name in _CHECKERS:
        raise ValueError(f"duplicate checker name {cls.name!r}")
    _CHECKERS[cls.name] = cls
    return cls


def all_checkers() -> dict[str, Type[Checker]]:
    """Registered checkers by name (importing the bundled set first)."""
    from . import checkers as _bundled  # noqa: F401  (import registers)
    return dict(_CHECKERS)


def _select(enabled: Iterable[str] | None,
            disabled: Iterable[str] | None) -> list[Type[Checker]]:
    registry = all_checkers()
    names = set(registry)
    if enabled is not None:
        unknown = set(enabled) - names
        if unknown:
            raise KeyError(f"unknown checkers: {sorted(unknown)}")
        names &= set(enabled)
    if disabled is not None:
        names -= set(disabled)
    return [registry[name] for name in sorted(names)]


def lint_file(path: Path | str, config: LintConfig | None = None, *,
              enabled: Iterable[str] | None = None,
              disabled: Iterable[str] | None = None) -> list[Violation]:
    """Run the (selected) checkers over one file."""
    config = config or LintConfig()
    source = SourceFile.parse(path)
    if source.skip:
        return []
    out: list[Violation] = []
    for cls in _select(enabled, disabled):
        out.extend(cls(source, config).run())
    out.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return out


def iter_python_files(paths: Iterable[Path | str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(paths: Iterable[Path | str],
               config: LintConfig | None = None, *,
               enabled: Iterable[str] | None = None,
               disabled: Iterable[str] | None = None
               ) -> tuple[list[Violation], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(violations, files_checked)``.  Unparseable files raise
    :class:`SyntaxError` to the caller (the CLI maps that to exit 2).
    """
    out: list[Violation] = []
    count = 0
    for path in iter_python_files(paths):
        out.extend(lint_file(path, config, enabled=enabled,
                             disabled=disabled))
        count += 1
    return out, count


def config_with(config: LintConfig | None = None, **overrides) -> LintConfig:
    """Convenience for tests: a config with selected fields replaced."""
    return replace(config or LintConfig(), **overrides)
