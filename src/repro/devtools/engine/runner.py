"""Orchestration: the file pass, the project pass, and the cache.

:func:`run_paths` is what :func:`repro.devtools.framework.lint_paths`
and the CLI call.  Per file it either replays a cached result (skipping
the parse entirely) or parses, runs the file checkers, and summarizes;
then it assembles the :class:`ProjectModel` from the summaries and runs
the project checkers — themselves cached under a whole-tree signature.

Per-directory profiles apply automatically: any file whose path has a
``tests`` or ``benchmarks`` component is linted under
:func:`~repro.devtools.framework.relaxed_profile` (fixtures may print,
seed ad-hoc RNGs, and re-derive streams to *assert* determinism).
Pass ``profiles={}`` to disable, or a custom mapping of path component
-> config to override.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..framework import (LintConfig, SourceFile, Violation, _select,
                         _select_project, iter_python_files,
                         relaxed_profile)
from .cache import LintCache, config_fingerprint, file_key
from .project import ModuleSummary, ProjectModel, summarize_source

__all__ = ["LintRun", "run_paths", "default_profiles"]


@dataclass
class LintRun:
    """Everything one lint invocation produced."""

    violations: list[Violation] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    project_cache_hit: bool = False


def default_profiles(config: LintConfig) -> dict[str, LintConfig]:
    relaxed = relaxed_profile(config)
    return {"tests": relaxed, "benchmarks": relaxed, "examples": relaxed}


def _config_for(path: Path, config: LintConfig,
                profiles: dict[str, LintConfig]) -> LintConfig:
    for part in path.parts:
        if part in profiles:
            return profiles[part]
    return config


def _project_signature(selection: str,
                       records: list[tuple[str, str, dict, list]]) -> str:
    import hashlib

    digest = hashlib.sha256()
    digest.update(selection.encode("utf-8"))
    for path, config_fp, summary_doc, suppressed in sorted(records):
        blob = json.dumps([path, config_fp, summary_doc, suppressed],
                          sort_keys=True, separators=(",", ":"))
        digest.update(blob.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def run_paths(paths: Iterable[Path | str],
              config: LintConfig | None = None, *,
              enabled: Iterable[str] | None = None,
              disabled: Iterable[str] | None = None,
              cache_dir: Path | str | None = None,
              profiles: dict[str, LintConfig] | None = None) -> LintRun:
    """Run the full v2 analysis over every ``.py`` file under ``paths``."""
    config = config or LintConfig()
    file_classes = _select(enabled, disabled)
    project_classes = _select_project(enabled, disabled)
    if profiles is None:
        profiles = default_profiles(config)

    selection = json.dumps(
        sorted(c.name for c in file_classes)
        + sorted(c.name for c in project_classes))
    cache = LintCache(cache_dir) if cache_dir is not None else None
    fingerprints: dict[int, str] = {}

    run = LintRun()
    summaries: list[ModuleSummary] = []
    configs_by_path: dict[str, LintConfig] = {}
    signature_records: list[tuple[str, str, dict, list]] = []

    for path in iter_python_files(paths):
        file_config = _config_for(path, config, profiles)
        configs_by_path[str(path)] = file_config
        config_fp = fingerprints.get(id(file_config))
        if config_fp is None:
            config_fp = config_fingerprint(file_config)
            fingerprints[id(file_config)] = config_fp

        key = ""
        if cache is not None:
            key = file_key(path, path.read_bytes(), config_fp, selection)
            entry = cache.get(key)
            if entry is not None:
                run.files_checked += 1
                if entry.get("skip"):
                    continue
                run.violations.extend(
                    Violation.from_dict(v) for v in entry["violations"])
                summary = ModuleSummary.from_json(entry["summary"])
                suppressed = [[int(line), str(t)]
                              for line, t in entry["suppressed"]]
                summary.pragma_table.used.update(
                    (line, t) for line, t in suppressed)
                summaries.append(summary)
                signature_records.append(
                    (str(path), config_fp, entry["summary"], suppressed))
                continue

        source = SourceFile.parse(path)
        run.files_checked += 1
        if source.skip:
            if cache is not None:
                cache.put(key, {"skip": True})
            continue
        file_violations: list[Violation] = []
        for cls in file_classes:
            file_violations.extend(cls(source, file_config).run())
        summary = summarize_source(source, file_config)
        summary_doc = summary.to_json()
        suppressed = [[line, t]
                      for line, t in sorted(source.pragma_table.used)]
        if cache is not None:
            cache.put(key, {
                "skip": False,
                "violations": [v.to_dict() for v in file_violations],
                "suppressed": suppressed,
                "summary": summary_doc,
            })
        run.violations.extend(file_violations)
        summaries.append(summary)
        signature_records.append(
            (str(path), config_fp, summary_doc, suppressed))

    # -- project pass --------------------------------------------------
    if project_classes:
        signature = _project_signature(selection, signature_records)
        cached = cache.get_project(signature) if cache is not None else None
        if cached is not None:
            run.violations.extend(Violation.from_dict(v) for v in cached)
        else:
            project = ProjectModel(summaries, config, configs_by_path)
            project.ran_names = ({c.name for c in file_classes}
                                 | {c.name for c in project_classes})
            project.ran_codes = {code for c in file_classes
                                 for code in c.codes}
            project.ran_codes |= {code for c in project_classes
                                  for code in c.codes}
            project_violations: list[Violation] = []
            for cls in project_classes:
                project_violations.extend(cls(config).run(project))
            run.violations.extend(project_violations)
            if cache is not None:
                cache.put_project(
                    signature,
                    [v.to_dict() for v in project_violations])

    if cache is not None:
        run.cache_hits = cache.hits
        run.cache_misses = cache.misses
        run.project_cache_hit = cache.project_hit
        cache.save()

    run.violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return run
