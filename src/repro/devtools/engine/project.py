"""Whole-program model for the reprolint v2 engine.

A :class:`ModuleSummary` is the JSON-serializable *interface* of one
source file: its imports (module- and function-scope), top-level
definitions, classes/methods, approximate call sites, ``__all__``, and
pragma table.  Summaries are what the incremental cache stores, so a
warm run can rebuild the whole-program model without re-parsing
unchanged files.

A :class:`ProjectModel` is the set of summaries plus derived structure:

- a **symbol table** — which module defines which name, with
  ``from``-import bindings resolved through re-export chains;
- an **import graph** over in-project modules, distinguishing
  module-scope from function-local (lazy) imports;
- an approximate **call graph**: *resolved* edges where the callee's
  defining module is provable through the binding chain, plus
  *name-based* method edges (every method with a matching basename —
  CHA without type inference).  Layering rules use only resolved edges
  to stay false-positive-free; reachability queries may use both.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from ..framework import LintConfig, PragmaTable, SourceFile

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["ImportRecord", "FunctionInfo", "ClassInfo", "ModuleSummary",
           "ProjectModel", "summarize_source"]

#: Resolution chains longer than this are cyclic re-exports; stop.
_MAX_RESOLVE_DEPTH = 32


@dataclass(frozen=True)
class ImportRecord:
    """One import binding: ``import m [as a]`` or ``from m import s [as a]``."""

    module: str          #: absolute dotted module imported from
    symbol: str | None   #: ``None`` for plain ``import m``
    alias: str           #: the local name bound
    line: int
    scope: str           #: ``"module"`` or ``"function"``
    function: str = ""   #: enclosing function qualname for lazy imports

    def to_json(self) -> dict[str, object]:
        return {"module": self.module, "symbol": self.symbol,
                "alias": self.alias, "line": self.line,
                "scope": self.scope, "function": self.function}

    @classmethod
    def from_json(cls, doc: dict[str, object]) -> "ImportRecord":
        return cls(module=str(doc["module"]),
                   symbol=None if doc["symbol"] is None else str(doc["symbol"]),
                   alias=str(doc["alias"]), line=int(doc["line"]),  # type: ignore[call-overload]
                   scope=str(doc["scope"]), function=str(doc["function"]))


@dataclass
class FunctionInfo:
    """One function or method: where it is and what it calls."""

    qualname: str        #: ``f``, ``Class.method``, ``outer.inner``
    line: int
    calls: list[tuple[str, int]] = field(default_factory=list)
    #: dotted call chains as written (``fmt.write_blocks``) with lines

    def to_json(self) -> dict[str, object]:
        return {"qualname": self.qualname, "line": self.line,
                "calls": [[chain, line] for chain, line in self.calls]}

    @classmethod
    def from_json(cls, doc: dict[str, object]) -> "FunctionInfo":
        return cls(qualname=str(doc["qualname"]), line=int(doc["line"]),  # type: ignore[call-overload]
                   calls=[(str(c), int(l)) for c, l in doc["calls"]])  # type: ignore[union-attr]


@dataclass
class ClassInfo:
    """One class: its methods (basenames) and base-class chains."""

    name: str
    line: int
    methods: list[str] = field(default_factory=list)
    bases: list[str] = field(default_factory=list)

    def to_json(self) -> dict[str, object]:
        return {"name": self.name, "line": self.line,
                "methods": self.methods, "bases": self.bases}

    @classmethod
    def from_json(cls, doc: dict[str, object]) -> "ClassInfo":
        return cls(name=str(doc["name"]), line=int(doc["line"]),  # type: ignore[call-overload]
                   methods=list(doc["methods"]),  # type: ignore[call-overload]
                   bases=list(doc["bases"]))  # type: ignore[call-overload]


#: Call basenames recorded as spawn sites (a config-independent
#: superset; the spawn-hygiene checker filters by the active config's
#: ``worker_submit_calls``).
_SPAWN_CANDIDATES = frozenset(
    {"Process", "Thread", "submit", "apply_async", "run_tasks",
     "map_async", "starmap_async", "dumps"})


@dataclass
class ModuleSummary:
    """The cacheable whole-program interface of one source file."""

    module: str
    path: str
    imports: list[ImportRecord] = field(default_factory=list)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: every name bound at module level (defs, classes, assignments,
    #: import aliases) — the module's attribute surface
    defs: set[str] = field(default_factory=set)
    #: statically-extracted ``__all__`` (None when absent or dynamic)
    exports: list[str] | None = None
    #: ``importlib.import_module("x")`` / ``__import__("x")`` calls with
    #: a string-literal target — imports no import statement ever shows
    dynamic_imports: list[tuple[str, int]] = field(default_factory=list)
    #: environment reads (``os.environ.get`` / ``os.getenv`` /
    #: ``environ[...]``): ``(enclosing qualname, line, var-or-"")``
    env_reads: list[tuple[str, int, str]] = field(default_factory=list)
    #: worker-spawn call sites: ``{"line", "function", "callee",
    #: "workers"}`` where ``workers`` are the candidate worker-callable
    #: expressions (dotted chains or ``"<lambda>"``)
    spawn_sites: list[dict] = field(default_factory=list)
    #: numeric-analysis facts (RPL8xx): ``{"functions": {qualname:
    #: [dtype, lo, hi]}, "deferred": [...], "assumes": [...]}`` — empty
    #: for modules outside the numeric scope
    numeric: dict = field(default_factory=dict)
    pragma_table: PragmaTable = field(default_factory=PragmaTable)

    def bindings(self) -> dict[str, ImportRecord]:
        """Module-scope import bindings by local alias."""
        return {rec.alias: rec for rec in self.imports
                if rec.scope == "module"}

    def to_json(self) -> dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": [rec.to_json() for rec in self.imports],
            "functions": {q: fn.to_json()
                          for q, fn in sorted(self.functions.items())},
            "classes": {n: c.to_json()
                        for n, c in sorted(self.classes.items())},
            "defs": sorted(self.defs),
            "exports": self.exports,
            "dynamic_imports": [[m, line] for m, line in self.dynamic_imports],
            "env_reads": [[q, line, var]
                          for q, line, var in self.env_reads],
            "spawn_sites": self.spawn_sites,
            "numeric": self.numeric,
            "pragmas": self.pragma_table.to_json(),
        }

    @classmethod
    def from_json(cls, doc: dict[str, object]) -> "ModuleSummary":
        return cls(
            module=str(doc["module"]), path=str(doc["path"]),
            imports=[ImportRecord.from_json(r) for r in doc["imports"]],  # type: ignore[union-attr]
            functions={str(q): FunctionInfo.from_json(f)
                       for q, f in doc["functions"].items()},  # type: ignore[union-attr]
            classes={str(n): ClassInfo.from_json(c)
                     for n, c in doc["classes"].items()},  # type: ignore[union-attr]
            defs=set(doc["defs"]),  # type: ignore[call-overload]
            exports=(None if doc["exports"] is None
                     else [str(e) for e in doc["exports"]]),  # type: ignore[union-attr]
            dynamic_imports=[(str(m), int(line))
                             for m, line in doc["dynamic_imports"]],  # type: ignore[union-attr]
            # .get defaults keep pre-2.1 cached summaries loadable (the
            # cache also versions on ENGINE_VERSION, so this is belt and
            # braces for hand-rolled docs in tests).
            env_reads=[(str(q), int(line), str(var))
                       for q, line, var in doc.get("env_reads", [])],  # type: ignore[union-attr]
            spawn_sites=list(doc.get("spawn_sites", [])),  # type: ignore[call-overload]
            numeric=dict(doc.get("numeric", {})),  # type: ignore[call-overload]
            pragma_table=PragmaTable.from_json(doc["pragmas"]),  # type: ignore[arg-type]
        )


# -- summarization -----------------------------------------------------


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: str | None) -> str:
    """Absolute module for a (possibly relative) import in ``module``."""
    if level == 0:
        return target or ""
    parts = module.split(".")
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[: len(parts) - (level - 1)]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def _call_chain(func: ast.expr) -> str | None:
    """``a.b.c`` for an attribute/name chain, else ``None``."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Call):
        # ``get_format(name).write_blocks`` — keep the method tail so
        # name-based edges still see ``.write_blocks``.
        return ".".join(["<call>"] + list(reversed(parts)))
    return None


class _Summarizer(ast.NodeVisitor):
    def __init__(self, summary: ModuleSummary, is_package: bool) -> None:
        self.summary = summary
        self.is_package = is_package
        self.func_stack: list[str] = []
        self.class_stack: list[str] = []

    # imports ----------------------------------------------------------

    def _scope(self) -> tuple[str, str]:
        if self.func_stack:
            return "function", ".".join(self.func_stack)
        return "module", ""

    def visit_Import(self, node: ast.Import) -> None:
        scope, function = self._scope()
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.summary.imports.append(ImportRecord(
                module=alias.name, symbol=None, alias=local,
                line=node.lineno, scope=scope, function=function))
            if scope == "module" and not self.class_stack:
                self.summary.defs.add(local)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        scope, function = self._scope()
        base = _resolve_relative(self.summary.module, self.is_package,
                                 node.level, node.module)
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.summary.imports.append(ImportRecord(
                module=base, symbol=alias.name, alias=local,
                line=node.lineno, scope=scope, function=function))
            if scope == "module" and not self.class_stack:
                self.summary.defs.add(local)

    # definitions ------------------------------------------------------

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if not self.func_stack and not self.class_stack:
            self.summary.defs.add(node.name)
        if self.class_stack and not self.func_stack:
            self.summary.classes[self.class_stack[-1]].methods.append(
                node.name)
        qual = ".".join(self.class_stack + self.func_stack + [node.name])
        self.summary.functions[qual] = FunctionInfo(qual, node.lineno)
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_FunctionDef = _function
    visit_AsyncFunctionDef = _function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self.func_stack and not self.class_stack:
            self.summary.defs.add(node.name)
        bases = [chain for base in node.bases
                 if (chain := _call_chain(base)) is not None]
        self.summary.classes[node.name] = ClassInfo(
            node.name, node.lineno, bases=bases)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.func_stack and not self.class_stack:
            for target in node.targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        self.summary.defs.add(sub.id)
            self._maybe_all(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (not self.func_stack and not self.class_stack
                and isinstance(node.target, ast.Name)):
            self.summary.defs.add(node.target.id)
        self.generic_visit(node)

    def _maybe_all(self, targets: list[ast.expr], value: ast.expr) -> None:
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [el.value for el in value.elts
                             if isinstance(el, ast.Constant)
                             and isinstance(el.value, str)]
                    self.summary.exports = names

    # calls ------------------------------------------------------------

    def _qual(self) -> str:
        return ".".join(self.class_stack + self.func_stack) or "<module>"

    @staticmethod
    def _worker_expr(node: ast.expr) -> str | None:
        """Render a candidate worker callable: a dotted chain, the
        ``"<lambda>"`` marker, or ``None`` for anything opaque."""
        if isinstance(node, ast.Lambda):
            return "<lambda>"
        return _call_chain(node)

    def _record_spawn(self, node: ast.Call, chain: str, qual: str) -> None:
        workers: list[str] = []
        for kw in node.keywords:
            if kw.arg == "target":
                expr = self._worker_expr(kw.value)
                if expr is not None:
                    workers.append(expr)
        for arg in node.args:
            expr = self._worker_expr(arg)
            if expr is not None:
                workers.append(expr)
        self.summary.spawn_sites.append({
            "line": node.lineno, "function": qual,
            "callee": chain, "workers": workers})

    def _record_env_read(self, node: ast.Call, chain: str,
                         qual: str) -> None:
        var = ""
        if (node.args and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            var = node.args[0].value
        self.summary.env_reads.append((qual, node.lineno, var))

    def visit_Call(self, node: ast.Call) -> None:
        chain = _call_chain(node.func)
        if chain is not None:
            qual = self._qual()
            info = self.summary.functions.get(qual)
            if info is None:
                info = self.summary.functions.setdefault(
                    "<module>", FunctionInfo("<module>", node.lineno))
            info.calls.append((chain, node.lineno))
            tail = chain.split(".")[-1]
            if (tail in ("import_module", "__import__") and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)):
                self.summary.dynamic_imports.append(
                    (node.args[0].value, node.lineno))
            if tail in _SPAWN_CANDIDATES:
                self._record_spawn(node, chain, qual)
            if tail == "getenv" or chain.endswith("environ.get"):
                self._record_env_read(node, chain, qual)
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        chain = _call_chain(node.value)
        if chain is not None and (chain == "environ"
                                  or chain.endswith(".environ")):
            var = ""
            if (isinstance(node.slice, ast.Constant)
                    and isinstance(node.slice.value, str)):
                var = node.slice.value
            self.summary.env_reads.append(
                (self._qual(), node.lineno, var))
        self.generic_visit(node)


def summarize_source(source: SourceFile,
                     config: LintConfig | None = None) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for a parsed file in one pass.

    With a ``config``, the numeric analysis also runs (memoized on the
    source, so the file checker reuses the same result) and its facts —
    summarized return intervals, deferred cross-module checks, assume
    pragmas — travel in ``summary.numeric``.
    """
    summary = ModuleSummary(module=source.module, path=str(source.path),
                            pragma_table=source.pragma_table)
    is_package = source.path.name == "__init__.py"
    _Summarizer(summary, is_package).visit(source.tree)
    if config is not None:
        from .numeric_checkers import analyze_module
        numerics = analyze_module(source, config)
        doc = numerics.summary_doc()
        if doc["functions"] or doc["deferred"] or doc["assumes"]:
            summary.numeric = doc
    return summary


# -- the project model -------------------------------------------------


class ProjectModel:
    """Summaries of every linted file plus derived graphs."""

    def __init__(self, summaries: Iterable[ModuleSummary],
                 config: LintConfig,
                 configs_by_path: dict[str, LintConfig] | None = None
                 ) -> None:
        self.config = config
        #: every linted file's summary (distinct even when loose files
        #: share a module name)
        self.summaries: list[ModuleSummary] = list(summaries)
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in self.summaries}
        self._configs_by_path = configs_by_path or {}
        #: names/codes of the checkers that ran this pass — dead-pragma
        #: only declares a pragma dead when its target provably ran.
        #: Empty means "everything ran".
        self.ran_names: set[str] = set()
        self.ran_codes: set[str] = set()
        self._call_graph: dict[str, set[str]] | None = None
        self._name_edges: dict[str, set[str]] | None = None
        self._method_index: dict[str, set[str]] | None = None

    # configs ----------------------------------------------------------

    def config_for(self, module: str) -> LintConfig:
        """The (possibly per-directory-profiled) config for a module."""
        summary = self.modules.get(module)
        if summary is not None:
            return self._configs_by_path.get(summary.path, self.config)
        return self.config

    def config_for_path(self, path: str) -> LintConfig:
        return self._configs_by_path.get(path, self.config)

    # symbol resolution ------------------------------------------------

    def defines(self, module: str, name: str) -> bool:
        summary = self.modules.get(module)
        if summary is None:
            return False
        head = name.split(".")[0]
        return (head in summary.defs or head in summary.classes
                or name in summary.functions)

    def resolve(self, module: str, name: str) -> tuple[str, str | None]:
        """Follow ``name``'s binding chain from ``module``.

        Returns ``(defining_module, symbol)``; ``symbol`` is ``None``
        when the name resolves to a module object.  Re-export chains
        (``from x import y`` then ``from here import y`` elsewhere) are
        walked to the original definition; external modules end the walk.
        """
        current, symbol = module, name
        for _ in range(_MAX_RESOLVE_DEPTH):
            summary = self.modules.get(current)
            if summary is None or symbol is None:
                return current, symbol
            binding = summary.bindings().get(symbol)
            if binding is None:
                if f"{current}.{symbol}" in self.modules:
                    # subpackage attribute, e.g. ``repro.formats.pipeline``
                    return f"{current}.{symbol}", None
                return current, symbol
            if binding.symbol is None:
                return binding.module, None
            current, symbol = binding.module, binding.symbol
        return current, symbol

    def resolve_chain(self, module: str, chain: str
                      ) -> tuple[str, str | None]:
        """Resolve a dotted chain like ``pkg.mod.func`` from ``module``.

        Walks module-object segments (aliases and subpackages) as far as
        they resolve, then returns the first non-module attribute as the
        symbol.  ``("", None)`` means unresolvable.
        """
        parts = chain.split(".")
        owner, symbol = self.resolve(module, parts[0])
        for part in parts[1:]:
            if symbol is not None:
                # attribute of a non-module value: not statically resolvable
                return "", None
            owner, symbol = self.resolve(owner, part)
            if owner not in self.modules and symbol is not None:
                return "", None
        return owner, symbol

    # import graph -----------------------------------------------------

    def import_edges(self, module: str, *, scope: str | None = None
                     ) -> list[ImportRecord]:
        summary = self.modules.get(module)
        if summary is None:
            return []
        return [rec for rec in summary.imports
                if scope is None or rec.scope == scope]

    def imported_modules(self, module: str) -> set[str]:
        """In-project modules ``module`` imports (any scope), with
        ``from pkg import symbol`` resolved to the defining module."""
        out: set[str] = set()
        for rec in self.import_edges(module):
            target = rec.module
            if rec.symbol is not None and f"{target}.{rec.symbol}" in self.modules:
                target = f"{target}.{rec.symbol}"
            if target in self.modules:
                out.add(target)
        return out

    # call graph -------------------------------------------------------

    def _method_defs(self) -> dict[str, set[str]]:
        """method basename -> {``module:Class.method`` qualified defs}."""
        if self._method_index is None:
            index: dict[str, set[str]] = {}
            for module, summary in self.modules.items():
                for cls in summary.classes.values():
                    for method in cls.methods:
                        index.setdefault(method, set()).add(
                            f"{module}:{cls.name}.{method}")
            self._method_index = index
        return self._method_index

    def _build_call_graph(self) -> None:
        resolved: dict[str, set[str]] = {}
        by_name: dict[str, set[str]] = {}
        methods = self._method_defs()
        for module, summary in self.modules.items():
            for qual, info in summary.functions.items():
                src = f"{module}:{qual}"
                res = resolved.setdefault(src, set())
                nam = by_name.setdefault(src, set())
                for chain, _line in info.calls:
                    if chain.startswith("<call>"):
                        tail = chain.split(".")[-1]
                        nam.update(methods.get(tail, ()))
                        continue
                    owner, symbol = self.resolve_chain(module, chain)
                    if owner in self.modules and symbol is not None:
                        target_summary = self.modules[owner]
                        if (symbol in target_summary.functions
                                or symbol in target_summary.classes):
                            res.add(f"{owner}:{symbol}")
                            continue
                    # fall back to method-name matching for the tail
                    if "." in chain:
                        nam.update(methods.get(chain.split(".")[-1], ()))
        self._call_graph = resolved
        self._name_edges = by_name

    def call_edges(self, qualified: str, *, name_based: bool = False
                   ) -> set[str]:
        """Outgoing call edges of ``module:qualname``."""
        if self._call_graph is None:
            self._build_call_graph()
        assert self._call_graph is not None and self._name_edges is not None
        edges = set(self._call_graph.get(qualified, ()))
        if name_based:
            edges.update(self._name_edges.get(qualified, ()))
        return edges

    def reaches(self, start: str, module_prefix: str, *,
                name_based: bool = True, max_nodes: int = 10_000
                ) -> list[str]:
        """BFS from ``module:qualname``; returns the first call path
        (list of qualified names) into a module matching ``module_prefix``,
        or ``[]``.  Class constructions expand into the class's methods
        (calling ``Cls(...)`` may invoke any of its methods later)."""
        from collections import deque

        queue = deque([(start, [start])])
        seen = {start}
        while queue and len(seen) < max_nodes:
            current, path = queue.popleft()
            module = current.split(":")[0]
            if (module == module_prefix
                    or module.startswith(module_prefix + ".")) and current != start:
                return path
            for succ in sorted(self.call_edges(current,
                                               name_based=name_based)):
                targets = [succ]
                mod, _, sym = succ.partition(":")
                summary = self.modules.get(mod)
                if summary and sym in summary.classes:
                    targets += [f"{mod}:{sym}.{m}"
                                for m in summary.classes[sym].methods]
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        queue.append((target, path + [target]))
        return []
