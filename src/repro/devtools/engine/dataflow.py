"""Forward dataflow over :class:`~repro.devtools.engine.cfg.CFG`.

A *may* analysis on a set lattice: facts are hashable values, the join
is set union, and a worklist iterates transfer functions to fixpoint.
Checkers subclass :class:`ForwardAnalysis` and implement ``transfer``.

Edge semantics match the CFG builder:

- a **normal** edge propagates the source node's *out* facts (the
  statement completed);
- an **exceptional** edge propagates the source node's *in* facts (the
  statement may have been interrupted before its effect took hold) —
  so e.g. an ``open()`` that raises does not leak a handle fact into
  its handler, while an ``fsync`` inside ``try`` does not count as
  having happened on the except path.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from .cfg import CFG, CFGNode

__all__ = ["ForwardAnalysis", "run_forward"]

Facts = frozenset


class ForwardAnalysis:
    """Base class for forward may-analyses.  Subclass and override
    :meth:`transfer`; override :meth:`boundary` for non-empty entry
    facts."""

    def boundary(self) -> Facts:
        """Facts holding at function entry."""
        return frozenset()

    def transfer(self, node: CFGNode, facts: Facts) -> Facts:
        """Out-facts of ``node`` given its in-facts.  Pure: must not
        mutate ``facts``."""
        raise NotImplementedError

    @staticmethod
    def join(sets: Iterable[Facts]) -> Facts:
        merged: set[Hashable] = set()
        for facts in sets:
            merged |= facts
        return frozenset(merged)


def run_forward(cfg: CFG, analysis: ForwardAnalysis, *,
                max_steps: int | None = None
                ) -> dict[int, tuple[Facts, Facts]]:
    """Run ``analysis`` over ``cfg`` to fixpoint.

    Returns ``{node_index: (in_facts, out_facts)}`` for every node.

    ``max_steps`` caps worklist iterations for analyses whose lattices
    are large (the numeric interval domain widens onto a finite grid,
    but the cap is a belt-and-braces bound): on hitting it the current
    — necessarily under-approximated — state is returned, which for
    positively-derived checks means staying quiet, never a false flag.
    """
    normal_preds, exc_preds = cfg.preds()
    in_facts: dict[int, Facts] = {n.index: frozenset() for n in cfg.nodes}
    out_facts: dict[int, Facts] = {n.index: frozenset() for n in cfg.nodes}
    in_facts[cfg.entry.index] = analysis.boundary()

    worklist = [node.index for node in cfg.nodes]
    queued = set(worklist)
    by_index = {node.index: node for node in cfg.nodes}

    steps = 0
    while worklist:
        steps += 1
        if max_steps is not None and steps > max_steps:
            break
        index = worklist.pop(0)
        queued.discard(index)
        node = by_index[index]

        incoming = [out_facts[p.index] for p in normal_preds[index]]
        incoming += [in_facts[p.index] for p in exc_preds[index]]
        if index == cfg.entry.index:
            incoming.append(analysis.boundary())
        new_in = analysis.join(incoming)

        if node.stmt is None:
            new_out = new_in
        else:
            new_out = analysis.transfer(node, new_in)

        if new_in == in_facts[index] and new_out == out_facts[index]:
            continue
        in_facts[index] = new_in
        out_facts[index] = new_out
        for succ in node.succs + node.exc_succs:
            if succ.index not in queued:
                worklist.append(succ.index)
                queued.add(succ.index)

    return {i: (in_facts[i], out_facts[i]) for i in in_facts}
