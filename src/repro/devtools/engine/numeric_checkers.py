"""The RPL8xx scale-soundness family: dtype & value-range analysis.

An abstract interpretation over the numeric domains of
:mod:`~repro.devtools.engine.domains`, run function-by-function on the
existing CFG/dataflow worklist.  Facts bind a local variable to an
:class:`~repro.devtools.engine.domains.AbsVal` — a numpy dtype, an
interval, and a provenance tag — propagated through assignments, numpy
constructors, ufunc arithmetic, ``astype`` casts, and (within a module)
function return values.  Intervals are seeded from module-level
constants (``MAX_ID = (1 << 48) - 1`` evaluates exactly), from the
config's interval-seed table (``scale``, ``block_size``, degree caps,
probabilities), and from ``# reprolint: assume(x, lo, hi)`` pragmas.

The rules, all **provability-gated** — a value with no positively
derived finite bound never flags:

- **RPL810** — a narrowing cast (``astype``/``np.asarray(dtype=...)``/
  ``np.int32(x)``) whose operand interval provably exceeds the target
  dtype's range.  At trillion scale that is an ID truncation no
  affordable test reproduces.
- **RPL811** — a default-dtype numpy constructor (``np.arange`` /
  ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full``) in the ID
  path packages: ``np.arange`` defaults to the *platform* integer
  (``int32`` on Windows), so scale > 31 silently wraps.
- **RPL812** — accumulation (``.sum()``/``np.cumsum``/``+=`` in a
  loop) on a ≤ 32-bit integer dtype where the value bound times the
  assumed element count overflows the accumulator.
- **RPL813** — a value flowing into a Bernoulli site (compared against
  a uniform [0, 1) draw, or passed as ``p`` to ``binomial`` /
  ``geometric``) whose interval is provably not within [0, 1].
- **RPL814** — a dead ``assume`` pragma: one that never landed on an
  analyzed statement, so it constrains nothing (the assume analogue of
  the RPL701 dead-pragma rule).

Casts and probability sites whose operand came from an *unresolved
call* are recorded as deferred checks in the module summary; the
``numeric-interface`` project checker resolves them through the
project call graph against the callee's summarized return facts, so a
function in ``repro.core`` returning 48-bit IDs flags an ``int32``
cast in ``repro.formats`` without either file seeing the other.
"""

from __future__ import annotations

import ast
import math
from typing import Iterable, Iterator, Optional

from ..framework import (Checker, LintConfig, ProjectChecker, SourceFile,
                         register_checker, register_project_checker)
from .cfg import CFGNode, FunctionLike, build_cfg, node_fragments
from .dataflow import ForwardAnalysis, run_forward
from .domains import (DTYPES, AbsVal, AssumeRecord, Interval, Number,
                      UNKNOWN, dtype_range, module_constants, parse_dtype,
                      promote, scan_assumes)
from .flow_checkers import (_assign_value, _chain, _kills,
                            _simple_assign_target)

__all__ = ["NumericSoundnessChecker", "NumericInterfaceChecker",
           "ModuleNumerics", "analyze_module"]

#: Per-variable fact cap before the join collapses to a widened hull.
#: Any *distinct* facts for one name mean control flow disagrees about
#: its value — at a loop header that disagreement recurs every
#: iteration (seed fact vs. back-edge fact), so the join must widen
#: immediately or a growing bound climbs forever and the step cap
#: leaves a non-converged finite interval behind.  The grid contains
#: every dtype boundary, so widening never pushes a hull across a
#: range limit the exact hull did not already cross.
_FACTS_PER_NAME = 1

#: Worklist budget per CFG: generous for real code, final for
#: adversarial fixtures (partial results only under-approximate).
_STEPS_PER_NODE = 48

#: Constructors RPL811 requires an explicit dtype for.  ``*_like``
#: variants inherit their dtype and are exempt; ``np.array`` infers
#: from data by design.
_DEFAULT_DTYPE_CTORS = {"arange": 3, "zeros": 1, "empty": 1, "ones": 1,
                        "full": 2}   # name -> dtype positional index

#: Methods whose result carries the receiver's value facts through.
_PASSTHROUGH_METHODS = frozenset(
    {"copy", "reshape", "ravel", "flatten", "repeat", "take", "compress",
     "squeeze", "transpose", "item"})

#: numpy functions whose result carries the first argument through.
_PASSTHROUGH_FUNCS = frozenset(
    {"ascontiguousarray", "unique", "sort", "ravel", "repeat", "tile",
     "flip", "atleast_1d", "broadcast_to"})

_UNIFORM_TAILS = frozenset({"random"})

_FLOAT_DRAWS = frozenset({"normal", "standard_normal", "exponential",
                          "lognormal", "gumbel", "laplace", "logistic",
                          "standard_exponential", "beta", "gamma",
                          "dirichlet", "triangular", "vonmises", "wald"})

_ORDERED_CMP = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _pos_node(line: int, col: int) -> ast.AST:
    node = ast.Pass()
    node.lineno = line
    node.col_offset = col
    return node


def _in_scope(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _walk_exprs(root: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but does not descend into nested function
    or class bodies — those are analyzed with their own CFG and env."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (*FunctionLike, ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


def _stmt_span(node: CFGNode) -> tuple[int, int]:
    """Line span an assume pragma matches for this node: the full span
    for simple statements, the header line only for compound headers
    (so an assume deep inside a loop body does not hit the ``for``)."""
    stmt = node.stmt
    assert stmt is not None
    line = getattr(stmt, "lineno", 0)
    if node.kind in ("stmt", "return", "raise"):
        return line, getattr(stmt, "end_lineno", line) or line
    return line, line


def _loop_stmt_ids(func: ast.AST) -> set[int]:
    """ids of statements that execute under a loop within ``func``."""
    ids: set[int] = set()
    for node in _walk_exprs(func):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for stmt in list(node.body) + list(node.orelse):
                for sub in _walk_exprs(stmt):
                    ids.add(id(sub))
    return ids


# -- evaluation context -------------------------------------------------


class _Ctx:
    """Read-only environment shared by every evaluation in one module."""

    def __init__(self, config: LintConfig,
                 consts: dict[str, Number],
                 local_funcs: dict[str, AbsVal]) -> None:
        self.config = config
        self.consts = consts
        self.local_funcs = local_funcs


def _seed_params(func: ast.AST, ctx: _Ctx) -> dict[str, AbsVal]:
    """Parameter seeds from the interval-seed table and the probability
    name patterns (both from config)."""
    assert isinstance(func, FunctionLike)
    seeds: dict[str, AbsVal] = {}
    args = func.args
    names = [a.arg for a in
             args.posonlyargs + args.args + args.kwonlyargs]
    for index, name in enumerate(names):
        if index == 0 and name in ("self", "cls"):
            continue
        bounds = ctx.config.interval_seeds.get(name)
        if bounds is not None:
            seeds[name] = AbsVal(None, Interval(bounds[0], bounds[1]))
        elif any(pat in name for pat
                 in ctx.config.probability_name_patterns):
            seeds[name] = AbsVal(None, Interval(0.0, 1.0))
    return seeds


# -- the abstract evaluator ---------------------------------------------


def _eval(expr: ast.expr, env: dict[str, AbsVal], ctx: _Ctx) -> AbsVal:
    if isinstance(expr, ast.Constant):
        value = expr.value
        if isinstance(value, bool):
            return AbsVal("bool", Interval.exact(int(value)))
        if isinstance(value, (int, float)):
            return AbsVal(None, Interval.exact(value))
        return UNKNOWN
    if isinstance(expr, ast.Name):
        val = env.get(expr.id)
        if val is not None:
            return val
        const = ctx.consts.get(expr.id)
        if const is not None:
            return AbsVal(None, Interval.exact(const))
        return UNKNOWN
    if isinstance(expr, ast.BinOp):
        return _eval_binop(expr, env, ctx)
    if isinstance(expr, ast.UnaryOp):
        operand = _eval(expr.operand, env, ctx)
        if isinstance(expr.op, ast.USub) and operand.known:
            assert operand.interval is not None
            return AbsVal(operand.dtype, -operand.interval)
        if isinstance(expr.op, ast.Not):
            return AbsVal("bool", Interval(0, 1))
        return UNKNOWN
    if isinstance(expr, ast.Compare):
        return AbsVal("bool", Interval(0, 1))
    if isinstance(expr, ast.Call):
        return _eval_call(expr, env, ctx)
    if isinstance(expr, ast.Subscript):
        # indexing/masking an array keeps element dtype, bounds, and
        # provenance (``r[:, None]`` is still the uniform draw)
        return _eval(expr.value, env, ctx)
    if isinstance(expr, ast.Attribute):
        if expr.attr == "size":
            return AbsVal("int64", Interval(0, math.inf))
        if expr.attr == "T":
            return _eval(expr.value, env, ctx)
        return UNKNOWN
    if isinstance(expr, ast.IfExp):
        return _eval(expr.body, env, ctx).hull(
            _eval(expr.orelse, env, ctx))
    if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
        vals = [_eval(el, env, ctx) for el in expr.elts]
        if vals and all(v.known for v in vals):
            out = vals[0]
            for v in vals[1:]:
                out = out.hull(v)
            return out
        return UNKNOWN
    return UNKNOWN


def _eval_binop(expr: ast.BinOp, env: dict[str, AbsVal],
                ctx: _Ctx) -> AbsVal:
    left = _eval(expr.left, env, ctx)
    right = _eval(expr.right, env, ctx)
    dtype = promote(left.dtype, right.dtype)
    if isinstance(expr.op, ast.Div):
        dtype = "float64" if dtype is not None else None
    if not left.known or not right.known:
        return AbsVal(dtype, None)
    a, b = left.interval, right.interval
    assert a is not None and b is not None
    interval: Optional[Interval]
    if isinstance(expr.op, ast.Add):
        interval = a + b
    elif isinstance(expr.op, ast.Sub):
        interval = a - b
    elif isinstance(expr.op, ast.Mult):
        interval = a * b
    elif isinstance(expr.op, ast.FloorDiv):
        interval = a.floordiv(b)
    elif isinstance(expr.op, ast.Div):
        interval = a.truediv(b)
    elif isinstance(expr.op, ast.Mod):
        interval = a.mod(b)
    elif isinstance(expr.op, ast.LShift):
        interval = a.lshift(b)
    elif isinstance(expr.op, ast.RShift):
        interval = a.rshift(b)
    elif isinstance(expr.op, ast.BitAnd):
        interval = a.bitand(b)
    elif isinstance(expr.op, ast.BitOr):
        interval = a.bitor(b)
    elif isinstance(expr.op, ast.BitXor):
        interval = a.bitor(b)   # same conservative bit-length bound
    elif isinstance(expr.op, ast.Pow):
        interval = a.power(b)
    else:
        interval = None
    return AbsVal(dtype, interval)


def _axis_arg(call: ast.Call, positional: int) -> Optional[ast.expr]:
    """The ``axis`` argument of a reduction, if any.

    An axis-reduction accumulates over one dimension whose length the
    analysis cannot bound, so RPL812 stays quiet on it — the rule
    targets full reductions whose element count scales with the graph.
    """
    for kw in call.keywords:
        if kw.arg == "axis":
            if (isinstance(kw.value, ast.Constant)
                    and kw.value.value is None):
                return None
            return kw.value
    if len(call.args) > positional:
        return call.args[positional]
    return None


def _dtype_kwarg(call: ast.Call,
                 positional: Optional[int] = None) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    if positional is not None and len(call.args) > positional:
        return call.args[positional]
    return None


def _cast_result(operand: AbsVal, target: str) -> AbsVal:
    """Post-cast value: the interval survives only when it provably
    fits (an overflowing cast wraps, so nothing is known after it)."""
    lo, hi = dtype_range(target)
    if (operand.interval is not None and operand.interval.finite_lo
            and operand.interval.finite_hi
            and operand.interval.within(lo, hi)):
        return AbsVal(target, operand.interval)
    return AbsVal(target, None)


def _eval_rng_draw(call: ast.Call, tail: str, env: dict[str, AbsVal],
                   ctx: _Ctx) -> AbsVal:
    if tail in _UNIFORM_TAILS:
        return AbsVal("float64", Interval(0.0, 1.0), "uniform")
    if tail == "uniform":
        if not call.args:
            return AbsVal("float64", Interval(0.0, 1.0), "uniform")
        if len(call.args) >= 2:
            a = _eval(call.args[0], env, ctx)
            b = _eval(call.args[1], env, ctx)
            if a.known and b.known:
                assert a.interval is not None and b.interval is not None
                hull = a.interval.hull(b.interval)
                origin = ("uniform" if hull.lo == 0 and hull.hi == 1
                          else "")
                return AbsVal("float64", hull, origin)
        return AbsVal("float64", None)
    if tail == "integers":
        if len(call.args) == 1:
            stop = _eval(call.args[0], env, ctx)
            if stop.known:
                assert stop.interval is not None
                return AbsVal("int64", Interval(0, stop.interval.hi - 1))
        elif len(call.args) >= 2:
            lo = _eval(call.args[0], env, ctx)
            hi = _eval(call.args[1], env, ctx)
            endpoint = any(kw.arg == "endpoint" and
                           isinstance(kw.value, ast.Constant) and
                           kw.value.value is True
                           for kw in call.keywords)
            if lo.known and hi.known:
                assert lo.interval is not None and hi.interval is not None
                upper = hi.interval.hi if endpoint else hi.interval.hi - 1
                return AbsVal("int64", Interval(lo.interval.lo, upper))
        return AbsVal("int64", None)
    if tail == "binomial" and call.args:
        n = _eval(call.args[0], env, ctx)
        if n.known:
            assert n.interval is not None
            return AbsVal("int64", Interval(0, n.interval.hi))
        return AbsVal("int64", None)
    if tail == "geometric":
        return AbsVal("int64", Interval(1, math.inf))
    if tail == "poisson":
        return AbsVal("int64", Interval(0, math.inf))
    if tail == "permutation" and call.args:
        n = _eval(call.args[0], env, ctx)
        if n.known:
            assert n.interval is not None
            return AbsVal("int64", Interval(0, n.interval.hi - 1))
        return AbsVal("int64", None)
    if tail in ("choice", "permuted"):
        if call.args:
            source = _eval(call.args[0], env, ctx)
            return AbsVal(source.dtype, source.interval)
        return UNKNOWN
    if tail in _FLOAT_DRAWS:
        return AbsVal("float64", None)
    return UNKNOWN


def _eval_np_func(call: ast.Call, tail: str, env: dict[str, AbsVal],
                  ctx: _Ctx) -> AbsVal:
    def arg(i: int) -> Optional[AbsVal]:
        return _eval(call.args[i], env, ctx) if len(call.args) > i else None

    if tail in _DEFAULT_DTYPE_CTORS:
        dtype_expr = _dtype_kwarg(call, _DEFAULT_DTYPE_CTORS[tail])
        dtype = parse_dtype(dtype_expr) if dtype_expr is not None else None
        if tail == "zeros":
            return AbsVal(dtype or "float64", Interval.exact(0))
        if tail == "ones":
            return AbsVal(dtype or "float64", Interval.exact(1))
        if tail == "empty":
            return AbsVal(dtype or "float64", None)
        if tail == "full":
            fill = arg(1)
            interval = fill.interval if fill is not None else None
            return AbsVal(dtype, interval)
        # arange: element range from the numeric arguments
        first, second = arg(0), arg(1)
        if second is not None and first is not None:
            if first.known and second.known:
                assert first.interval is not None
                assert second.interval is not None
                return AbsVal(dtype, Interval(
                    min(first.interval.lo, second.interval.lo),
                    max(second.interval.hi - 1, first.interval.lo)))
        elif first is not None and first.known:
            assert first.interval is not None
            return AbsVal(dtype, Interval(0, first.interval.hi - 1))
        return AbsVal(dtype, None)
    if tail.endswith("_like") and tail[:-5] in _DEFAULT_DTYPE_CTORS:
        base = arg(0)
        dtype_expr = _dtype_kwarg(call)
        dtype = (parse_dtype(dtype_expr) if dtype_expr is not None
                 else (base.dtype if base is not None else None))
        if tail == "zeros_like":
            return AbsVal(dtype, Interval.exact(0))
        if tail == "ones_like":
            return AbsVal(dtype, Interval.exact(1))
        if tail == "full_like":
            fill = arg(1)
            return AbsVal(dtype, fill.interval if fill else None)
        return AbsVal(dtype, None)
    if tail in ("array", "asarray"):
        base = arg(0) or UNKNOWN
        dtype_expr = _dtype_kwarg(call, 1)
        if dtype_expr is not None:
            target = parse_dtype(dtype_expr)
            if target is not None:
                return _cast_result(base, target)
            return UNKNOWN
        return base
    if tail in _PASSTHROUGH_FUNCS:
        return arg(0) or UNKNOWN
    if tail in ("minimum", "maximum", "fmin", "fmax"):
        vals = [v for v in (arg(0), arg(1)) if v is not None]
        return _eval_minmax(tail in ("minimum", "fmin"), vals)
    if tail == "clip":
        return _eval_clip(arg(0), arg(1), arg(2))
    if tail in ("abs", "absolute", "fabs"):
        return _eval_abs(arg(0))
    if tail in ("rint", "floor", "ceil", "round", "trunc", "around"):
        base = arg(0)
        if base is not None and base.known:
            assert base.interval is not None
            return AbsVal(base.dtype, _outward_int(base.interval))
        return AbsVal(base.dtype if base else None, None)
    if tail == "sqrt":
        base = arg(0)
        if (base is not None and base.known
                and base.interval is not None and base.interval.lo >= 0):
            return AbsVal("float64", Interval(
                math.sqrt(base.interval.lo),
                math.sqrt(base.interval.hi)
                if base.interval.finite_hi else math.inf))
        return AbsVal("float64", None)
    if tail == "where":
        a, b = arg(1), arg(2)
        if a is not None and b is not None:
            return a.hull(b)
        return UNKNOWN
    if tail in ("concatenate", "hstack", "vstack", "stack"):
        return arg(0) or UNKNOWN
    if tail == "bitwise_count":
        return AbsVal("uint8", Interval(0, 64))
    if tail in DTYPES:
        # ``np.int32(x)`` — a scalar cast; the site check lives in
        # ``_check_call``, this is just the result value
        base = arg(0)
        return _cast_result(base or UNKNOWN, tail)
    if tail in ("sum", "cumsum"):
        base = arg(0)
        dtype_expr = _dtype_kwarg(call)
        acc = parse_dtype(dtype_expr) if dtype_expr is not None else None
        if acc is None and base is not None and base.dtype is not None:
            info = DTYPES[base.dtype]
            acc = ("int64" if info.kind in "bui" and info.bits <= 64
                   else base.dtype)
        return AbsVal(acc, None)
    return UNKNOWN


def _outward_int(interval: Interval) -> Interval:
    lo = (math.floor(interval.lo) if interval.finite_lo else -math.inf)
    hi = (math.ceil(interval.hi) if interval.finite_hi else math.inf)
    return Interval(lo, hi)


def _eval_minmax(is_min: bool, vals: list[AbsVal]) -> AbsVal:
    known = [v.interval for v in vals if v.interval is not None]
    if not known:
        return UNKNOWN
    dtype = vals[0].dtype
    for v in vals[1:]:
        dtype = promote(dtype, v.dtype)
    if is_min:
        hi: Number = min(iv.hi for iv in known)
        lo: Number = (min(iv.lo for iv in known)
                      if len(known) == len(vals) else -math.inf)
    else:
        lo = max(iv.lo for iv in known)
        hi = (max(iv.hi for iv in known)
              if len(known) == len(vals) else math.inf)
    return AbsVal(dtype, Interval(lo, hi))


def _eval_clip(base: Optional[AbsVal], lo_val: Optional[AbsVal],
               hi_val: Optional[AbsVal]) -> AbsVal:
    if (lo_val is None or hi_val is None
            or lo_val.interval is None or hi_val.interval is None):
        return base or UNKNOWN
    lower = lo_val.interval.lo
    upper = hi_val.interval.hi
    if base is not None and base.interval is not None:
        return AbsVal(base.dtype, base.interval.clamp(lower, upper))
    return AbsVal(base.dtype if base else None, Interval(lower, upper))


def _eval_abs(base: Optional[AbsVal]) -> AbsVal:
    if base is None or base.interval is None:
        return AbsVal(base.dtype if base else None, None)
    iv = base.interval
    if iv.lo >= 0:
        return base
    hi = max(abs(iv.lo), abs(iv.hi)) if iv.finite_lo and iv.finite_hi \
        else math.inf
    return AbsVal(base.dtype, Interval(0, hi))


def _eval_call(call: ast.Call, env: dict[str, AbsVal],
               ctx: _Ctx) -> AbsVal:
    chain = _chain(call.func)
    tail = chain.split(".")[-1] if chain else None
    head = chain.split(".")[0] if chain else None

    if isinstance(call.func, ast.Attribute):
        method = call.func.attr
        if method == "astype":
            dtype_expr = call.args[0] if call.args else _dtype_kwarg(call)
            target = (parse_dtype(dtype_expr)
                      if dtype_expr is not None else None)
            operand = _eval(call.func.value, env, ctx)
            if target is not None:
                return _cast_result(operand, target)
            return UNKNOWN
        if method in _PASSTHROUGH_METHODS:
            return _eval(call.func.value, env, ctx)
        if method == "clip":
            base = _eval(call.func.value, env, ctx)
            lo = _eval(call.args[0], env, ctx) if call.args else None
            hi = (_eval(call.args[1], env, ctx)
                  if len(call.args) > 1 else None)
            return _eval_clip(base, lo, hi)
        if method in ("sum", "cumsum"):
            fake = ast.Call(func=ast.Name(id="sum", ctx=ast.Load()),
                            args=[call.func.value], keywords=call.keywords)
            return _eval_np_func(fake, method, env, ctx)
        if method in ("max", "min"):
            return _eval(call.func.value, env, ctx)
        if method in ctx.config.rng_draw_methods:
            return _eval_rng_draw(call, method, env, ctx)

    if head in ("np", "numpy") and tail is not None and chain is not None:
        if chain.count(".") <= 2:
            return _eval_np_func(call, tail, env, ctx)

    if chain is not None and "." not in chain:
        if chain in ("min", "max") and len(call.args) >= 2:
            vals = [_eval(a, env, ctx) for a in call.args]
            return _eval_minmax(chain == "min", vals)
        if chain == "abs" and call.args:
            return _eval_abs(_eval(call.args[0], env, ctx))
        if chain == "len":
            return AbsVal("int64", Interval(0, math.inf))
        if chain in ("int", "round") and call.args:
            base = _eval(call.args[0], env, ctx)
            if base.known:
                assert base.interval is not None
                return AbsVal(None, _outward_int(base.interval))
            return UNKNOWN
        if chain == "float" and call.args:
            base = _eval(call.args[0], env, ctx)
            return AbsVal(None, base.interval)
        if chain == "bool":
            return AbsVal("bool", Interval(0, 1))
        local = ctx.local_funcs.get(chain)
        if local is not None:
            return local

    if chain is not None and "." in chain:
        first, rest = chain.split(".", 1)
        if first in ("self", "cls") and "." not in rest:
            local = ctx.local_funcs.get(f"<method>{rest}")
            if local is not None:
                return local

    if chain is not None and not chain.startswith("<call>"):
        return AbsVal(None, None, f"call:{chain}")
    return UNKNOWN


# -- the dataflow analysis ---------------------------------------------

# fact shape: ("v", name, dtype, lo, hi, origin); lo is None when the
# interval is unknown.


def _fact(name: str, val: AbsVal) -> Optional[tuple]:
    if val.dtype is None and val.interval is None and not val.origin:
        return None
    if val.interval is None:
        return ("v", name, val.dtype, None, None, val.origin)
    return ("v", name, val.dtype, val.interval.lo, val.interval.hi,
            val.origin)


def _val_of(fact: tuple) -> AbsVal:
    _, _name, dtype, lo, hi, origin = fact
    interval = None if lo is None else Interval(lo, hi)
    return AbsVal(dtype, interval, origin)


def _env_of(facts: Iterable[tuple]) -> dict[str, AbsVal]:
    env: dict[str, AbsVal] = {}
    for fact in facts:
        val = _val_of(fact)
        prev = env.get(fact[1])
        env[fact[1]] = val if prev is None else prev.hull(val)
    return env


class _NumericAnalysis(ForwardAnalysis):
    """Gen/kill over numeric facts; checks run in a post-pass."""

    def __init__(self, ctx: _Ctx, seeds: dict[str, AbsVal],
                 assumes: list[AssumeRecord],
                 used_assumes: set[int],
                 skip_defs: bool = False) -> None:
        self.ctx = ctx
        self.seeds = seeds
        self.assumes = assumes
        self.used_assumes = used_assumes
        self.skip_defs = skip_defs

    def boundary(self):  # type: ignore[override]
        facts = []
        for name, val in self.seeds.items():
            fact = _fact(name, val)
            if fact is not None:
                facts.append(fact)
        return frozenset(facts)

    def join(self, sets):  # type: ignore[override]
        merged: set[tuple] = set()
        for facts in sets:
            merged |= facts
        by_name: dict[str, list[tuple]] = {}
        for fact in merged:
            by_name.setdefault(fact[1], []).append(fact)
        out: set[tuple] = set()
        for name, facts in by_name.items():
            if len(facts) <= _FACTS_PER_NAME:
                out.update(facts)
                continue
            val = _val_of(facts[0])
            for fact in facts[1:]:
                val = val.hull(_val_of(fact))
            if val.interval is not None:
                val = AbsVal(val.dtype, val.interval.widened(), val.origin)
            collapsed = _fact(name, val)
            if collapsed is not None:
                out.add(collapsed)
        return frozenset(out)

    def transfer(self, node, facts):  # type: ignore[override]
        stmt = node.stmt
        if self.skip_defs and isinstance(stmt, (*FunctionLike,
                                                ast.ClassDef)):
            return facts
        out = set(facts)
        for name in _kills(node):
            out -= {f for f in out if f[1] == name}

        env = _env_of(facts)
        if node.kind == "stmt" and isinstance(stmt, ast.AugAssign):
            self._transfer_aug(stmt, env, out)
        elif node.kind == "stmt" and isinstance(stmt,
                                                (ast.Assign, ast.AnnAssign)):
            target = _simple_assign_target(node)
            value = _assign_value(node)
            if target is not None and value is not None:
                self._gen(out, target, _eval(value, env, self.ctx))
        elif (node.kind == "loop"
                and isinstance(stmt, (ast.For, ast.AsyncFor))
                and isinstance(stmt.target, ast.Name)):
            self._gen(out, stmt.target.id,
                      self._loop_element(stmt.iter, env))

        if stmt is not None and self.assumes:
            lo_line, hi_line = _stmt_span(node)
            if node.kind != "with_end":
                for rec in self.assumes:
                    if lo_line <= rec.line <= hi_line:
                        self._apply_assume(out, rec)
        return frozenset(out)

    @staticmethod
    def _gen(out: set, name: str, val: AbsVal) -> None:
        fact = _fact(name, val)
        if fact is not None:
            out.add(fact)

    def _transfer_aug(self, stmt: ast.AugAssign,
                      env: dict[str, AbsVal], out: set) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        name = stmt.target.id
        old = env.get(name)
        out -= {f for f in out if f[1] == name}
        if old is None:
            return
        fake = ast.BinOp(left=ast.Name(id=name, ctx=ast.Load()),
                         op=stmt.op, right=stmt.value)
        ast.copy_location(fake, stmt)
        ast.copy_location(fake.left, stmt)
        self._gen(out, name, _eval_binop(fake, env, self.ctx))

    def _loop_element(self, iter_expr: ast.expr,
                      env: dict[str, AbsVal]) -> AbsVal:
        if isinstance(iter_expr, ast.Call):
            chain = _chain(iter_expr.func)
            if chain == "range" and iter_expr.args:
                vals = [_eval(a, env, self.ctx) for a in iter_expr.args]
                if all(v.known for v in vals):
                    ivs = [v.interval for v in vals]
                    assert all(iv is not None for iv in ivs)
                    if len(ivs) == 1:
                        return AbsVal(None, Interval(0, ivs[0].hi - 1))  # type: ignore[union-attr]
                    return AbsVal(None, Interval(
                        ivs[0].lo, ivs[1].hi - 1))  # type: ignore[union-attr]
                return UNKNOWN
        return _eval(iter_expr, env, self.ctx)

    def _apply_assume(self, out: set, rec: AssumeRecord) -> None:
        dtype: Optional[str] = None
        for fact in list(out):
            if fact[1] == rec.name:
                dtype = promote(dtype, fact[2]) if dtype else fact[2]
                out.discard(fact)
        out.add(("v", rec.name, dtype, rec.lo, rec.hi, ""))
        self.used_assumes.add(rec.line)


# -- per-module analysis ------------------------------------------------


class ModuleNumerics:
    """Everything the numeric analysis derives for one module."""

    def __init__(self) -> None:
        #: function qualname -> summarized return value
        self.functions: dict[str, AbsVal] = {}
        #: (line, col, code, message) candidate flags, pragma-unfiltered
        self.flags: list[tuple[int, int, str, str]] = []
        #: deferred cross-module checks for the project pass
        self.deferred: list[dict] = []
        self.assumes: list[AssumeRecord] = []
        self.dead_assumes: list[AssumeRecord] = []

    def summary_doc(self) -> dict:
        """The JSON-stable slice embedded in the ModuleSummary."""
        functions: dict[str, list] = {}
        for qual, val in sorted(self.functions.items()):
            if val.dtype is None and val.interval is None:
                continue
            lo = val.interval.lo if val.interval is not None else None
            hi = val.interval.hi if val.interval is not None else None
            functions[qual] = [val.dtype, lo, hi]
        return {"functions": functions,
                "deferred": self.deferred,
                "assumes": [rec.to_json() for rec in self.assumes]}


class _ModuleAnalyzer:
    """Runs the whole-module numeric analysis: constants, per-function
    fixpoints (two passes so same-module call facts propagate), checks,
    and the deferred-record sweep."""

    def __init__(self, source: SourceFile, config: LintConfig) -> None:
        self.source = source
        self.config = config
        self.result = ModuleNumerics()
        self.flow_scope = _in_scope(source.module,
                                    config.numeric_module_prefixes)
        self.ctor_scope = _in_scope(source.module,
                                    config.default_dtype_module_prefixes)
        self.consts = module_constants(source.tree)
        self.ctx = _Ctx(config, self.consts, {})
        self.used_assumes: set[int] = set()
        self._seen_flags: set[tuple[int, int, str]] = set()

    def run(self) -> ModuleNumerics:
        if self.ctor_scope:
            self._check_default_dtypes()
        if not self.flow_scope:
            return self.result
        self.result.assumes = scan_assumes(self.source.text, self.consts)

        functions = self._collect_functions()
        # pass 1: return facts with an empty local table; pass 2 rests
        # on those facts, so helper() -> caller chains resolve.
        for check in (False, True):
            table: dict[str, AbsVal] = {}
            basenames: dict[str, list[AbsVal]] = {}
            for qual, val in self.result.functions.items():
                table[qual] = val
                basenames.setdefault(qual.rsplit(".", 1)[-1],
                                     []).append(val)
            for base, vals in basenames.items():
                if len(vals) == 1:
                    table.setdefault(base, vals[0])
                    table.setdefault(f"<method>{base}", vals[0])
            self.ctx = _Ctx(self.config, self.consts, table)
            for qual, func in functions:
                self._analyze_function(qual, func, check=check)
            self._analyze_module_body(check=check)

        self.result.dead_assumes = [
            rec for rec in self.result.assumes
            if rec.line not in self.used_assumes]
        return self.result

    # collection -------------------------------------------------------

    def _collect_functions(self) -> list[tuple[str, ast.AST]]:
        out: list[tuple[str, ast.AST]] = []

        def walk(node: ast.AST, stack: list[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, FunctionLike):
                    qual = ".".join(stack + [child.name])
                    out.append((qual, child))
                    walk(child, stack + [child.name])
                elif isinstance(child, ast.ClassDef):
                    walk(child, stack + [child.name])
                else:
                    walk(child, stack)

        walk(self.source.tree, [])
        return out

    # the fixpoint + post-pass -----------------------------------------

    def _analyze_function(self, qual: str, func: ast.AST,
                          check: bool) -> None:
        cfg = build_cfg(func)
        analysis = _NumericAnalysis(self.ctx, _seed_params(func, self.ctx),
                                    self.result.assumes, self.used_assumes)
        results = run_forward(
            cfg, analysis,
            max_steps=_STEPS_PER_NODE * len(cfg.nodes) + 256)
        return_val: Optional[AbsVal] = None
        loop_ids = _loop_stmt_ids(func) if check else set()
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            env = _env_of(results[node.index][0])
            if (node.kind == "return" and isinstance(node.stmt, ast.Return)
                    and node.stmt.value is not None):
                val = _eval(node.stmt.value, env, self.ctx)
                return_val = val if return_val is None \
                    else return_val.hull(val)
            if check:
                self._check_node(node, env, loop_ids)
        self.result.functions[qual] = return_val or UNKNOWN

    def _analyze_module_body(self, check: bool) -> None:
        body = [s for s in self.source.tree.body]
        if not body:
            return
        cfg = build_cfg(body)
        analysis = _NumericAnalysis(self.ctx, {}, self.result.assumes,
                                    self.used_assumes, skip_defs=True)
        results = run_forward(
            cfg, analysis,
            max_steps=_STEPS_PER_NODE * len(cfg.nodes) + 256)
        if not check:
            return
        for node in cfg.nodes:
            if node.stmt is None or isinstance(node.stmt, (*FunctionLike,
                                                           ast.ClassDef)):
                continue
            env = _env_of(results[node.index][0])
            self._check_node(node, env, set())

    # checks -----------------------------------------------------------

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        key = (line, col, code)
        if key in self._seen_flags:
            return
        self._seen_flags.add(key)
        self.result.flags.append((line, col, code, message))

    def _defer(self, node: ast.AST, kind: str, chain: str,
               dtype: Optional[str] = None) -> None:
        if len(self.result.deferred) >= 200:
            return
        rec: dict = {"kind": kind, "line": getattr(node, "lineno", 1),
                     "col": getattr(node, "col_offset", 0),
                     "chain": chain}
        if dtype is not None:
            rec["dtype"] = dtype
        self.result.deferred.append(rec)

    def _check_node(self, node: CFGNode, env: dict[str, AbsVal],
                    loop_ids: set[int]) -> None:
        for frag in node_fragments(node):
            for sub in _walk_exprs(frag):
                if isinstance(sub, ast.Call):
                    self._check_call(sub, env)
                elif isinstance(sub, ast.Compare):
                    self._check_compare(sub, env)
                elif isinstance(sub, ast.AugAssign):
                    self._check_aug(sub, env, loop_ids)

    def _check_call(self, call: ast.Call, env: dict[str, AbsVal]) -> None:
        chain = _chain(call.func)
        tail = chain.split(".")[-1] if chain else None
        head = chain.split(".")[0] if chain else None

        if isinstance(call.func, ast.Attribute):
            method = call.func.attr
            if method == "astype":
                dtype_expr = (call.args[0] if call.args
                              else _dtype_kwarg(call))
                target = (parse_dtype(dtype_expr)
                          if dtype_expr is not None else None)
                if target is not None:
                    operand = _eval(call.func.value, env, self.ctx)
                    self._check_cast(call, operand, target)
                return
            if method in ("sum", "cumsum"):
                if _axis_arg(call, 0) is None:
                    operand = _eval(call.func.value, env, self.ctx)
                    self._check_accumulation(call, method, operand)
                return
            if method in ("binomial", "geometric", "negative_binomial"):
                self._check_prob_args(call, method, env)
                return

        if head in ("np", "numpy") and tail is not None:
            if tail in ("array", "asarray"):
                dtype_expr = _dtype_kwarg(call, 1)
                target = (parse_dtype(dtype_expr)
                          if dtype_expr is not None else None)
                if target is not None and call.args:
                    operand = _eval(call.args[0], env, self.ctx)
                    self._check_cast(call, operand, target)
            elif tail in DTYPES and call.args:
                operand = _eval(call.args[0], env, self.ctx)
                self._check_cast(call, operand, tail)
            elif tail in ("sum", "cumsum") and call.args:
                if _axis_arg(call, 1) is None:
                    operand = _eval(call.args[0], env, self.ctx)
                    self._check_accumulation(call, tail, operand)

    def _check_cast(self, call: ast.Call, operand: AbsVal,
                    target: str) -> None:
        lo, hi = dtype_range(target)
        iv = operand.interval
        if iv is None:
            if operand.origin.startswith("call:") and self.flow_scope:
                self._defer(call, "cast",
                            operand.origin[len("call:"):], dtype=target)
            return
        below = iv.finite_lo and iv.lo < lo
        above = iv.finite_hi and iv.hi > hi
        if below or above:
            self._flag(
                call, "RPL810",
                f"narrowing cast to {target}: operand interval "
                f"[{_fmt(iv.lo)}, {_fmt(iv.hi)}] exceeds {target}'s "
                f"range [{_fmt(lo)}, {_fmt(hi)}] — at trillion scale "
                f"this truncates IDs; cast to a dtype that holds the "
                f"proven bound (or tighten it with "
                f"`# reprolint: assume(...)`)")

    def _check_accumulation(self, call: ast.Call, kind: str,
                            operand: AbsVal) -> None:
        dtype_expr = _dtype_kwarg(call)
        acc = parse_dtype(dtype_expr) if dtype_expr is not None else None
        explicit = acc is not None
        if acc is None:
            # numpy promotes sub-platform-int operands to the platform
            # integer (same signedness): int32/uint32 is the worst case
            # the paper's 32-bit targets see.
            if operand.dtype is None or DTYPES[operand.dtype].kind \
                    not in "bui":
                return
            if DTYPES[operand.dtype].bits > 32:
                return
            acc = ("uint32" if DTYPES[operand.dtype].kind == "u"
                   else "int32")
        if DTYPES[acc].kind not in "ui":
            return
        info = DTYPES[acc]
        if info.bits > 32:
            return
        if (operand.interval is not None and operand.interval.finite_lo
                and operand.interval.finite_hi):
            iv = operand.interval
            bound: Number = max(abs(iv.lo), abs(iv.hi))
        else:
            bound = DTYPES[operand.dtype or acc].hi
        if bound == 0:
            return
        count = self.config.accumulation_element_count
        if bound * count <= info.hi:
            return
        where = (f"accumulates in {acc} (explicit dtype, ≤ 32 bits)"
                 if explicit else
                 f"accumulates in the platform integer — {acc} on "
                 f"32-bit builds")
        self._flag(
            call, "RPL812",
            f"np.{kind} {where}: element bound {_fmt(bound)} × "
            f"{_fmt(count)} elements overflows {acc}'s max "
            f"{_fmt(info.hi)} — pass dtype=np.int64 (or np.uint64)")

    def _check_prob_args(self, call: ast.Call, method: str,
                         env: dict[str, AbsVal]) -> None:
        p_expr: Optional[ast.expr] = None
        if method == "geometric":
            p_expr = call.args[0] if call.args else None
        else:
            p_expr = call.args[1] if len(call.args) > 1 else None
        for kw in call.keywords:
            if kw.arg == "p":
                p_expr = kw.value
        if p_expr is None:
            return
        val = _eval(p_expr, env, self.ctx)
        self._check_prob_value(call, val,
                               f"probability argument of {method}()")

    def _check_prob_value(self, site: ast.AST, val: AbsVal,
                          what: str) -> None:
        iv = val.interval
        if iv is None:
            if val.origin.startswith("call:") and self.flow_scope:
                self._defer(site, "prob", val.origin[len("call:"):])
            return
        below = iv.finite_lo and iv.lo < 0
        above = iv.finite_hi and iv.hi > 1
        if below or above:
            self._flag(
                site, "RPL813",
                f"{what} has interval [{_fmt(iv.lo)}, {_fmt(iv.hi)}], "
                f"not provably within [0, 1]: the draw is biased or "
                f"degenerate — clip/normalize first (np.clip(p, 0.0, "
                f"1.0)) or bound it with `# reprolint: assume(...)`)")

    def _check_compare(self, cmp: ast.Compare,
                       env: dict[str, AbsVal]) -> None:
        if len(cmp.comparators) != 1:
            return
        if not isinstance(cmp.ops[0], _ORDERED_CMP):
            return
        left = _eval(cmp.left, env, self.ctx)
        right = _eval(cmp.comparators[0], env, self.ctx)
        for draw, other in ((left, right), (right, left)):
            if draw.origin == "uniform":
                self._check_prob_value(
                    cmp, other,
                    "value compared against a uniform [0, 1) draw")
                return

    def _check_aug(self, stmt: ast.AugAssign, env: dict[str, AbsVal],
                   loop_ids: set[int]) -> None:
        if id(stmt) not in loop_ids:
            return
        if not isinstance(stmt.op, (ast.Add, ast.Sub, ast.Mult)):
            return
        target = stmt.target
        if isinstance(target, ast.Subscript):
            target = target.value
        if not isinstance(target, ast.Name):
            return
        val = env.get(target.id)
        if val is None or val.dtype is None:
            return
        info = DTYPES[val.dtype]
        if info.kind not in "ui" or info.bits > 32:
            return
        rhs = _eval(stmt.value, env, self.ctx)
        if (rhs.interval is not None
                and rhs.interval.lo == 0 and rhs.interval.hi == 0):
            return
        self._flag(
            stmt, "RPL812",
            f"in-loop accumulation into '{target.id}' ({val.dtype}, "
            f"≤ 32 bits): repeated += overflows long before trillion "
            f"scale — accumulate in int64/uint64")

    # RPL811 — syntactic, gated on the ID-path packages ----------------

    def _check_default_dtypes(self) -> None:
        for sub in ast.walk(self.source.tree):
            if not isinstance(sub, ast.Call):
                continue
            chain = _chain(sub.func)
            if chain is None:
                continue
            parts = chain.split(".")
            if len(parts) != 2 or parts[0] not in ("np", "numpy"):
                continue
            tail = parts[1]
            index = _DEFAULT_DTYPE_CTORS.get(tail)
            if index is None:
                continue
            if _dtype_kwarg(sub, index) is not None:
                continue
            self._flag(
                sub, "RPL811",
                f"np.{tail} without an explicit dtype defaults to the "
                f"platform integer/float: on 32-bit platforms IDs past "
                f"2^31 silently wrap — pass dtype=np.int64 (IDs), "
                f"np.uint64 (bit patterns), or np.float64 explicitly")


def _fmt(value: Number) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    if isinstance(value, float) and value.is_integer() \
            and abs(value) < 2 ** 63:
        return str(int(value))
    return str(value)


def analyze_module(source: SourceFile,
                   config: LintConfig) -> ModuleNumerics:
    """Analyze (and memoize on the SourceFile) one module's numerics.

    Both the file checker and :func:`summarize_source` need the result;
    memoizing on the parsed source keeps the fixpoint from running
    twice per file per run.
    """
    memo: list = getattr(source, "_numeric_memo", [])
    for cfg, cached in memo:
        if cfg is config:
            return cached
    result = _ModuleAnalyzer(source, config).run()
    memo.append((config, result))
    source._numeric_memo = memo  # type: ignore[attr-defined]
    return result


# -- the checkers -------------------------------------------------------


@register_checker
class NumericSoundnessChecker(Checker):
    """Scale soundness: dtype & value-range abstract interpretation."""

    name = "numeric-soundness"
    codes = {
        "RPL810": "narrowing cast whose interval exceeds the target "
                  "dtype range",
        "RPL811": "default-dtype numpy constructor on an ID path",
        "RPL812": "accumulation on a <=32-bit dtype that can overflow",
        "RPL813": "probability not provably within [0, 1] at a "
                  "Bernoulli site",
        "RPL814": "assume pragma that never landed on an analyzed "
                  "statement",
    }

    def run(self):  # type: ignore[override]
        module = self.source.module
        flow = _in_scope(module, self.config.numeric_module_prefixes)
        ctor = _in_scope(module,
                         self.config.default_dtype_module_prefixes)
        if not flow and not ctor:
            return self.violations
        numerics = analyze_module(self.source, self.config)
        for line, col, code, message in numerics.flags:
            self.flag(_pos_node(line, col), code, message)
        for rec in numerics.dead_assumes:
            self.flag(
                _pos_node(rec.line, 0), "RPL814",
                f"assume({rec.name}, {_fmt(rec.lo)}, {_fmt(rec.hi)}) "
                f"never landed on an analyzed statement: put it on the "
                f"line that binds '{rec.name}' (inside a function or a "
                f"module-level assignment), or delete it")
        return self.violations


@register_project_checker
class NumericInterfaceChecker(ProjectChecker):
    """Cross-module RPL810/RPL813: deferred cast and probability sites
    resolved against callee return facts through the call graph."""

    name = "numeric-interface"
    codes = {
        "RPL810": "narrowing cast of a cross-module return value whose "
                  "interval exceeds the target dtype range",
        "RPL813": "cross-module return value not provably within "
                  "[0, 1] at a Bernoulli site",
    }

    def check(self, project) -> None:  # type: ignore[override]
        for summary in project.summaries:
            numeric = getattr(summary, "numeric", None) or {}
            for rec in numeric.get("deferred", []):
                self._check_deferred(project, summary, rec)

    def _resolve_facts(self, project, module: str,
                       chain: str) -> Optional[tuple[str, AbsVal]]:
        owner, symbol = project.resolve_chain(module, chain)
        if symbol is None or owner not in project.modules:
            return None
        target = project.modules[owner]
        numeric = getattr(target, "numeric", None) or {}
        doc = numeric.get("functions", {}).get(symbol)
        if doc is None:
            return None
        dtype, lo, hi = doc
        interval = None if lo is None else Interval(_as_num(lo),
                                                    _as_num(hi))
        return f"{owner}.{symbol}", AbsVal(dtype, interval)

    def _check_deferred(self, project, summary, rec: dict) -> None:
        resolved = self._resolve_facts(project, summary.module,
                                       str(rec.get("chain", "")))
        if resolved is None:
            return
        qual, val = resolved
        if val.interval is None:
            return
        iv = val.interval
        line = int(rec.get("line", 1))
        col = int(rec.get("col", 0))
        if rec.get("kind") == "cast":
            target = str(rec.get("dtype", ""))
            if target not in DTYPES:
                return
            lo, hi = dtype_range(target)
            if (iv.finite_lo and iv.lo < lo) or (iv.finite_hi
                                                 and iv.hi > hi):
                self.flag(
                    summary, line, col, "RPL810",
                    f"narrowing cast to {target} of {qual}()'s return "
                    f"value: its summarized interval [{_fmt(iv.lo)}, "
                    f"{_fmt(iv.hi)}] exceeds {target}'s range "
                    f"[{_fmt(lo)}, {_fmt(hi)}]")
        elif rec.get("kind") == "prob":
            if (iv.finite_lo and iv.lo < 0) or (iv.finite_hi
                                                and iv.hi > 1):
                self.flag(
                    summary, line, col, "RPL813",
                    f"{qual}()'s return value flows into a Bernoulli "
                    f"site with interval [{_fmt(iv.lo)}, {_fmt(iv.hi)}]"
                    f", not provably within [0, 1]")


def _as_num(value: object) -> Number:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return float(str(value))
