"""Flow-sensitive file checkers built on the CFG + dataflow engine.

Three families, each a forward may-analysis over every function body:

- **rng-stream-flow** (RPL110/111) — an RNG stream that crosses a
  worker boundary (pickled into a task, handed to ``Process``/
  ``submit``/``run_tasks``) and is then drawn from in the parent has
  forked state: parent and worker draw the same values, silently
  breaking the one-value-per-edge guarantee.  RPL111 flags the same
  stream derived twice from identical arguments along one path —
  overlapping streams, the other half of the hazard.
- **atomic-write** (RPL310/311) — in the checkpoint/spill layers
  (``atomic_write_module_prefixes``): a handle that reaches
  ``os.replace``/``os.rename`` without ``flush()`` + ``os.fsync()`` on
  *some* path (RPL310 — the rename can publish a torn file after a
  crash), and a ``.tmp``/``.partial`` path an exception can leak
  because no ``try/finally`` cleans it up (RPL311).
- **resource-lifecycle** (RPL320) — a handle from ``open()`` that some
  path abandons without ``close()``; handles that escape (returned,
  yielded, stored, passed on) are the caller's problem and never flag.

All three analyze each function in isolation but path-sensitively:
facts from different branches stay distinct under the union join, so
"fsynced on the happy path only" is visible where a syntactic scan
sees one ``fsync`` call and goes quiet.
"""

from __future__ import annotations

import ast

from ..framework import Checker, LintConfig, register_checker
from .cfg import (CFG, CFGNode, FunctionLike, assigned_names, build_cfg,
                  node_fragments)
from .dataflow import ForwardAnalysis, run_forward

__all__ = ["RngStreamFlowChecker", "AtomicWriteChecker",
           "ResourceLifecycleChecker"]

#: node kinds whose ``assigned_names`` take effect when the node runs
#: (a ``with_end`` node shares its statement with the ``with`` head but
#: rebinds nothing).
_BINDING_KINDS = ("stmt", "loop", "with")


def _chain(func: ast.expr) -> str | None:
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _calls(node: CFGNode) -> list[ast.Call]:
    return [sub for frag in node_fragments(node)
            for sub in ast.walk(frag) if isinstance(sub, ast.Call)]


def _arg_names(call: ast.Call) -> set[str]:
    names: set[str] = set()
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names


def _kills(node: CFGNode) -> set[str]:
    if node.kind not in _BINDING_KINDS or node.stmt is None:
        return set()
    return assigned_names(node.stmt)


def _simple_assign_target(node: CFGNode) -> str | None:
    """``x`` for a plain ``x = <expr>`` statement node."""
    stmt = node.stmt
    if node.kind != "stmt":
        return None
    if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)):
        return stmt.targets[0].id
    if (isinstance(stmt, ast.AnnAssign) and stmt.value is not None
            and isinstance(stmt.target, ast.Name)):
        return stmt.target.id
    return None


def _assign_value(node: CFGNode) -> ast.expr | None:
    stmt = node.stmt
    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        return stmt.value
    return None


def _line_node(line: int) -> ast.AST:
    node = ast.Pass()
    node.lineno = line
    node.col_offset = 0
    return node


class _FlowChecker(Checker):
    """Shared driver: build a CFG per function and run an analysis."""

    def run(self):  # type: ignore[override]
        for node in ast.walk(self.source.tree):
            if isinstance(node, FunctionLike):
                self.check_function(node, build_cfg(node))
        self.finish()
        return self.violations

    def check_function(self, func: ast.AST, cfg: CFG) -> None:
        raise NotImplementedError


# -- RPL110/111: rng-stream-flow ---------------------------------------


class _StreamAnalysis(ForwardAnalysis):
    """Facts:

    - ``("s", var, "fresh"|"shipped", line)`` — ``var`` holds an RNG
      stream; ``shipped`` once it crossed a worker boundary at ``line``;
    - ``("d", argrepr, line)`` — a stream was derived from these exact
      constructor arguments at ``line``.
    """

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.flags: list[tuple[ast.Call, str, str]] = []
        self._seen: set[tuple[int, str]] = set()

    def _flag_once(self, call: ast.Call, code: str, message: str) -> None:
        key = (call.lineno, code)
        if key not in self._seen:
            self._seen.add(key)
            self.flags.append((call, code, message))

    def transfer(self, node: CFGNode, facts):  # type: ignore[override]
        out = set(facts)
        for name in _kills(node):
            out -= {f for f in out if f[0] == "s" and f[1] == name}

        for call in _calls(node):
            chain = _chain(call.func)
            if chain is None:
                continue
            tail = chain.split(".")[-1]

            if (tail in self.config.rng_stream_constructors
                    and (call.args or call.keywords)):
                argrepr = ast.unparse(ast.Tuple(
                    elts=list(call.args), ctx=ast.Load()))
                for fact in facts:
                    if (fact[0] == "d" and fact[1] == argrepr
                            and fact[2] != call.lineno):
                        self._flag_once(
                            call, "RPL111",
                            f"stream derived twice from the same arguments "
                            f"{argrepr} on one path (first at line "
                            f"{fact[2]}): the two generators emit "
                            f"identical values")
                out.add(("d", argrepr, call.lineno))
                target = _simple_assign_target(node)
                if target is not None and _assign_value(node) is call:
                    out.add(("s", target, "fresh", call.lineno))
                continue

            if tail in self.config.worker_submit_calls:
                for name in _arg_names(call):
                    for fact in list(out):
                        if fact[0] == "s" and fact[1] == name:
                            out.discard(fact)
                            out.add(("s", name, "shipped", call.lineno))

            if "." in chain and tail in self.config.rng_draw_methods:
                owner = chain.rsplit(".", 1)[0]
                for fact in facts:
                    if (fact[0] == "s" and fact[1] == owner
                            and fact[2] == "shipped"):
                        self._flag_once(
                            call, "RPL110",
                            f"stream '{owner}' was shipped to a worker "
                            f"(pickled at line {fact[3]}) and is drawn "
                            f"from again in the parent: parent and worker "
                            f"now draw identical values")
        return frozenset(out)


@register_checker
class RngStreamFlowChecker(_FlowChecker):
    """RNG streams across worker boundaries and duplicate derivations."""

    name = "rng-stream-flow"
    codes = {
        "RPL110": "stream drawn from after crossing a worker boundary",
        "RPL111": "stream derived twice from the same seed on one path",
    }

    def check_function(self, func: ast.AST, cfg: CFG) -> None:
        analysis = _StreamAnalysis(self.config)
        run_forward(cfg, analysis)
        for call, code, message in analysis.flags:
            self.flag(call, code, message)


# -- RPL310/311: atomic-write ------------------------------------------

_TMP_MARKERS = (".tmp", ".partial")


def _is_write_open(call: ast.Call) -> bool:
    chain = _chain(call.func)
    if chain is None or chain.split(".")[-1] != "open":
        return False
    mode = None
    if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
        mode = call.args[1].value
    for kw in call.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    if mode is None:
        # builtin open() defaults to read; ``tmp.open()`` without a mode
        # does too.
        return False
    return isinstance(mode, str) and any(c in mode for c in "wax+")


def _open_path_repr(call: ast.Call) -> str | None:
    chain = _chain(call.func)
    if chain is not None and "." in chain:
        # ``tmp.open("wb")`` — the receiver is the path, and the first
        # positional argument is the *mode*, not the file.
        return chain.rsplit(".", 1)[0]
    if call.args:
        return ast.unparse(call.args[0])
    for kw in call.keywords:
        if kw.arg in ("file", "path"):
            return ast.unparse(kw.value)
    return None


def _tmpish(expr: ast.expr) -> bool:
    """Heuristic: does this expression build a temp-file path?"""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if any(marker in sub.value for marker in _TMP_MARKERS):
                return True
        if isinstance(sub, ast.Call):
            chain = _chain(sub.func)
            tail = chain.split(".")[-1] if chain else ""
            if tail in ("mkstemp", "NamedTemporaryFile", "mktemp"):
                return True
    return False


class _AtomicWriteAnalysis(ForwardAnalysis):
    """Facts:

    - ``("w", var, pathrepr, state, line)`` — handle ``var`` writes
      ``pathrepr``; state walks open -> flushed -> fsynced;
    - ``("t", var, state, line)`` — ``var`` is a temp path; state is
      ``clean`` (nothing on disk yet) or ``dirty`` (written to).
    """

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        self.replace_flags: list[tuple[ast.Call, str, int]] = []
        self._seen: set[tuple[int, str]] = set()

    @staticmethod
    def _upgrade(out: set, var: str, from_states: tuple[str, ...],
                 to_state: str) -> None:
        for fact in list(out):
            if fact[0] == "w" and fact[1] == var and fact[3] in from_states:
                out.discard(fact)
                out.add(("w", fact[1], fact[2], to_state, fact[4]))

    def transfer(self, node: CFGNode, facts):  # type: ignore[override]
        stmt = node.stmt
        out = set(facts)

        for name in _kills(node):
            # reassignment drops handle facts; temp-path facts persist
            # until cleaned (rebinding the *variable* doesn't delete the
            # file) unless regenerated below.
            out -= {f for f in out if f[0] == "w" and f[1] == name}

        target = _simple_assign_target(node)
        value = _assign_value(node)
        if target is not None and value is not None and _tmpish(value):
            out -= {f for f in out if f[0] == "t" and f[1] == target}
            out.add(("t", target, "clean", stmt.lineno))

        # ``with open(tmp, "wb") as fh:`` binds at the with header
        if node.kind == "with":
            assert isinstance(stmt, (ast.With, ast.AsyncWith))
            for item in stmt.items:
                if (isinstance(item.context_expr, ast.Call)
                        and _is_write_open(item.context_expr)
                        and isinstance(item.optional_vars, ast.Name)):
                    out -= {f for f in out if f[0] == "w"
                            and f[1] == item.optional_vars.id}
                    out.add(("w", item.optional_vars.id,
                             _open_path_repr(item.context_expr) or "?",
                             "open", stmt.lineno))

        for call in _calls(node):
            chain = _chain(call.func)
            if chain is None:
                continue
            tail = chain.split(".")[-1]

            if _is_write_open(call):
                if target is not None and value is call:
                    out.add(("w", target, _open_path_repr(call) or "?",
                             "open", stmt.lineno))
                self._mark_dirty(out, call)
            elif tail == "flush" and "." in chain:
                self._upgrade(out, chain.rsplit(".", 1)[0],
                              ("open",), "flushed")
            elif tail == "fsync":
                # os.fsync(fh.fileno()); fsync *without* a prior flush
                # syncs a part-buffered file, so "open" does not upgrade
                # and the replace site still flags.
                for name in _arg_names(call):
                    self._upgrade(out, name, ("flushed",), "fsynced")
            elif tail in ("replace", "rename") and chain.startswith("os."):
                self._replace_site(out, call)
            elif tail in ("unlink", "remove"):
                cleaned = set(_arg_names(call))
                if "." in chain:  # tmp.unlink()
                    cleaned.add(chain.rsplit(".", 1)[0])
                out -= {f for f in out if f[0] == "t" and f[1] in cleaned}
            elif tail in ("replace", "rename") and "." in chain:
                # ``tmp.replace(final)`` — pathlib; only a *tracked* temp
                # path receiver counts, so ``str.replace`` stays quiet.
                receiver = chain.rsplit(".", 1)[0]
                if any(f[0] == "t" and f[1] == receiver for f in out):
                    self._replace_site(out, call, receiver=receiver)
            else:
                # any other call handed the temp path writes through it
                for name in _arg_names(call):
                    for fact in list(out):
                        if (fact[0] == "t" and fact[1] == name
                                and fact[2] == "clean"):
                            out.discard(fact)
                            out.add(("t", name, "dirty", fact[3]))
        return frozenset(out)

    @staticmethod
    def _mark_dirty(out: set, open_call: ast.Call) -> None:
        names = _arg_names(open_call)
        chain = _chain(open_call.func)
        if chain and "." in chain:
            names.add(chain.split(".")[0])
        for fact in list(out):
            if fact[0] == "t" and fact[1] in names and fact[2] == "clean":
                out.discard(fact)
                out.add(("t", fact[1], "dirty", fact[3]))

    def _replace_site(self, out: set, call: ast.Call,
                      receiver: str | None = None) -> None:
        src = receiver
        if src is None and call.args:
            src = ast.unparse(call.args[0])
        if src is None:
            return
        for fact in set(out):
            if fact[0] == "w" and fact[2] == src and fact[3] != "fsynced":
                key = (call.lineno, fact[3])
                if key not in self._seen:
                    self._seen.add(key)
                    self.replace_flags.append((call, fact[3], fact[4]))
        # a successful replace consumes the temp path
        out -= {f for f in out if f[0] == "t" and f[1] == src}


@register_checker
class AtomicWriteChecker(_FlowChecker):
    """The write-temp -> flush -> fsync -> rename protocol, checked
    path-by-path in the checkpoint/spill modules."""

    name = "atomic-write"
    codes = {
        "RPL310": "rename reachable without flush+fsync on some path",
        "RPL311": "temp file can leak: no try/finally cleanup",
    }

    def run(self):  # type: ignore[override]
        prefixes = self.config.atomic_write_module_prefixes
        module = self.source.module
        if not any(module == p or module.startswith(p + ".")
                   for p in prefixes):
            return self.violations
        return super().run()

    def check_function(self, func: ast.AST, cfg: CFG) -> None:
        analysis = _AtomicWriteAnalysis(self.config)
        results = run_forward(cfg, analysis)
        normal_preds, _exc_preds = cfg.preds()

        for call, state, open_line in analysis.replace_flags:
            detail = ("was never flushed" if state == "open"
                      else "was flushed but never fsynced")
            self.flag(call, "RPL310",
                      f"rename is reachable on a path where the handle "
                      f"opened at line {open_line} {detail}: a crash "
                      f"after the rename can publish a torn file")

        # RPL311: a dirty temp path is live where an unhandled exception
        # can end the function — at a call-bearing node with no
        # exceptional edge — or survives to the normal exit.
        leaks: set[tuple[str, int]] = set()
        exit_facts = ForwardAnalysis.join(
            results[p.index][1] for p in normal_preds[cfg.exit.index])
        for fact in exit_facts:
            if fact[0] == "t" and fact[2] == "dirty":
                leaks.add((fact[1], fact[3]))
        for node in cfg.nodes:
            if node.exc_succs or not _calls(node):
                continue
            for fact in results[node.index][0]:
                if fact[0] == "t" and fact[2] == "dirty":
                    leaks.add((fact[1], fact[3]))
        for var, line in sorted(leaks):
            self.flag(_line_node(line), "RPL311",
                      f"temp file '{var}' (created at line {line}) can "
                      f"leak: an exception between write and rename "
                      f"escapes with no try/finally unlink")


# -- RPL320: resource-lifecycle ----------------------------------------


class _HandleAnalysis(ForwardAnalysis):
    """Facts: ``("h", var, line)`` — ``var`` holds an open handle the
    function is responsible for closing."""

    #: method calls that end a handle's lifetime
    _CLOSERS = frozenset({"close", "release", "terminate", "shutdown"})

    def transfer(self, node: CFGNode, facts):  # type: ignore[override]
        out = set(facts)

        if node.kind == "with_end":
            stmt = node.stmt
            assert isinstance(stmt, (ast.With, ast.AsyncWith))
            managed: set[str] = set()
            for item in stmt.items:
                for sub in ast.walk(item.context_expr):
                    if isinstance(sub, ast.Name):
                        managed.add(sub.id)
                if isinstance(item.optional_vars, ast.Name):
                    managed.add(item.optional_vars.id)
            return frozenset(f for f in out
                             if not (f[0] == "h" and f[1] in managed))

        for name in _kills(node):
            out -= {f for f in out if f[0] == "h" and f[1] == name}

        closed: set[str] = set()
        for call in _calls(node):
            chain = _chain(call.func)
            if (chain and "." in chain
                    and chain.split(".")[-1] in self._CLOSERS):
                closed.add(chain.rsplit(".", 1)[0])
        escaped = _escaping_names(node)
        out = {f for f in out
               if not (f[0] == "h" and (f[1] in closed or f[1] in escaped))}

        target = _simple_assign_target(node)
        value = _assign_value(node)
        if target is not None and isinstance(value, ast.Call):
            chain = _chain(value.func)
            if chain is not None and chain.split(".")[-1] == "open":
                out.add(("h", target, node.stmt.lineno))
        return frozenset(out)


def _escaping_names(node: CFGNode) -> set[str]:
    """Names whose value leaves the function's responsibility at this
    node: returned, yielded, passed as a call argument, aliased, or
    stored into a container/attribute."""
    escaped: set[str] = set()
    fragments = node_fragments(node)
    attr_bases: set[int] = set()
    for frag in fragments:
        for sub in ast.walk(frag):
            if (isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)):
                attr_bases.add(id(sub.value))

    def value_names(expr: ast.AST | None) -> None:
        if expr is None:
            return
        for sub in ast.walk(expr):
            if (isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
                    and id(sub) not in attr_bases):
                escaped.add(sub.id)

    for frag in fragments:
        for sub in ast.walk(frag):
            if isinstance(sub, ast.Call):
                for arg in list(sub.args) + [k.value for k in sub.keywords]:
                    value_names(arg)
            elif isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Await)):
                value_names(sub.value)

    stmt = node.stmt
    if isinstance(stmt, ast.Return) and node.kind == "return":
        value_names(stmt.value)
    elif isinstance(stmt, ast.Assign) and node.kind == "stmt":
        if not isinstance(stmt.value, (ast.Call, ast.Attribute)):
            value_names(stmt.value)  # aliasing / packing into containers
        if any(not isinstance(t, ast.Name) for t in stmt.targets):
            value_names(stmt.value)  # stored into attribute / subscript
    return escaped


@register_checker
class ResourceLifecycleChecker(_FlowChecker):
    """Handles must be closed on every path (or managed by ``with``)."""

    name = "resource-lifecycle"
    codes = {"RPL320": "handle not closed on all paths"}

    def check_function(self, func: ast.AST, cfg: CFG) -> None:
        results = run_forward(cfg, _HandleAnalysis())
        normal_preds, _exc_preds = cfg.preds()
        # only *normal* exits count: an unhandled exception unwinding a
        # function leaks everything by definition, and flagging that
        # would damn every correct ``finally: fh.close()``, whose own
        # exceptional edge necessarily precedes the close.
        exit_facts = ForwardAnalysis.join(
            results[p.index][1] for p in normal_preds[cfg.exit.index])
        flagged: set[tuple[str, int]] = set()
        for fact in sorted(exit_facts):
            if fact[0] == "h" and (fact[1], fact[2]) not in flagged:
                flagged.add((fact[1], fact[2]))
                self.flag(_line_node(fact[2]), "RPL320",
                          f"handle '{fact[1]}' opened here is not closed "
                          f"on every path: wrap it in `with` or close it "
                          f"in a finally block")
