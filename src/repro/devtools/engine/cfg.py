"""Intraprocedural control-flow graphs for the reprolint engine.

One :class:`CFGNode` per simple statement or compound-statement header,
a synthetic entry/exit pair, and two edge kinds:

- **normal** edges (``succs``) carry a statement's *out* facts;
- **exceptional** edges (``exc_succs``) model an exception escaping the
  statement and carry its *in* facts (the statement may not have
  completed).  They are wired from every node inside a ``try`` body to
  the handlers (and to the ``finally`` escape chain), and from explicit
  ``raise`` statements.

Abrupt exits (``return``/``break``/``continue``/``raise``) route
through fresh *copies* of every pending ``finally`` body, the same way
the bytecode compiler duplicates them — so a ``finally`` that closes a
handle is visible on the early-``return`` path, not just the normal
one.  ``with`` bodies end in a synthetic ``with_end`` node where
context managers release their resources.

Comprehensions are expressions and stay inside their statement's node;
their targets do not bind in the enclosing scope (Python 3 semantics),
which the checkers rely on when killing facts by assigned name.
"""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = ["CFG", "CFGNode", "build_cfg", "iter_function_cfgs",
           "assigned_names", "node_fragments", "FunctionLike"]

#: AST types whose body makes a standalone CFG.
FunctionLike = (ast.FunctionDef, ast.AsyncFunctionDef)

_LOOPS = (ast.For, ast.AsyncFor, ast.While)


class CFGNode:
    """One control-flow node: a statement (or header) plus its edges."""

    __slots__ = ("index", "stmt", "kind", "succs", "exc_succs")

    def __init__(self, index: int, stmt: ast.AST | None, kind: str) -> None:
        self.index = index
        self.stmt = stmt
        self.kind = kind
        self.succs: list[CFGNode] = []
        self.exc_succs: list[CFGNode] = []

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def label(self) -> str:
        """Short description for tests and debug dumps."""
        if self.stmt is None:
            return self.kind
        text = ast.unparse(self.stmt).splitlines()[0]
        return f"{self.kind}:{text[:48]}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CFGNode {self.index} {self.label()}>"


class CFG:
    """A built control-flow graph with entry/exit and pred maps."""

    def __init__(self) -> None:
        self.nodes: list[CFGNode] = []
        self.entry = self.new_node(None, "entry")
        self.exit = self.new_node(None, "exit")

    def new_node(self, stmt: ast.AST | None, kind: str) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    def preds(self) -> tuple[dict[int, list[CFGNode]],
                             dict[int, list[CFGNode]]]:
        """``(normal_preds, exceptional_preds)`` keyed by node index."""
        normal: dict[int, list[CFGNode]] = {n.index: [] for n in self.nodes}
        exceptional: dict[int, list[CFGNode]] = {n.index: []
                                                 for n in self.nodes}
        for node in self.nodes:
            for succ in node.succs:
                normal[succ.index].append(node)
            for succ in node.exc_succs:
                exceptional[succ.index].append(node)
        return normal, exceptional

    def edges(self) -> set[tuple[int, int]]:
        """Normal edges as ``(src_index, dst_index)`` pairs (tests)."""
        return {(n.index, s.index) for n in self.nodes for s in n.succs}

    def nodes_for(self, stmt: ast.AST) -> list[CFGNode]:
        """Every node built from ``stmt`` (finally bodies may be copied)."""
        return [n for n in self.nodes if n.stmt is stmt]


class _Loop:
    """Per-loop frame: break collectors and the continue target."""

    __slots__ = ("breaks", "head", "finally_depth")

    def __init__(self, head: CFGNode, finally_depth: int) -> None:
        self.breaks: list[CFGNode] = []
        self.head = head
        self.finally_depth = finally_depth


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: list[_Loop] = []
        #: Pending ``finally`` bodies, outermost first.
        self.finallys: list[list[ast.stmt]] = []
        #: Targets an escaping exception flows to at the current point.
        self.exc_targets: list[list[CFGNode]] = []

    # -- plumbing ------------------------------------------------------

    def _new(self, stmt: ast.AST | None, kind: str) -> CFGNode:
        node = self.cfg.new_node(stmt, kind)
        if self.exc_targets and kind not in ("except", "with_end",
                                             "finally"):
            for target in self.exc_targets[-1]:
                node.exc_succs.append(target)
        return node

    @staticmethod
    def _link(preds: list[CFGNode], node: CFGNode) -> None:
        for pred in preds:
            if node not in pred.succs:
                pred.succs.append(node)

    def _link_many(self, preds: list[CFGNode],
                   targets: list[CFGNode]) -> None:
        for target in targets:
            self._link(preds, target)

    # -- statement dispatch --------------------------------------------

    def build(self, body: list[ast.stmt]) -> CFG:
        exits = self._stmts(body, [self.cfg.entry])
        self._link(exits, self.cfg.exit)
        return self.cfg

    def _stmts(self, stmts: list[ast.stmt],
               preds: list[CFGNode]) -> list[CFGNode]:
        for stmt in stmts:
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt,
              preds: list[CFGNode]) -> list[CFGNode]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, preds)
        if isinstance(stmt, _LOOPS):
            return self._loop(stmt, preds)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, preds)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, preds)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, preds)
        if isinstance(stmt, ast.Return):
            node = self._new(stmt, "return")
            self._link(preds, node)
            tail = self._copy_finallys(node, stop_depth=0)
            self._link(tail, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, preds)
        if isinstance(stmt, ast.Break) and self.loops:
            loop = self.loops[-1]
            node = self._new(stmt, "break")
            self._link(preds, node)
            loop.breaks.extend(self._copy_finallys(node, loop.finally_depth))
            return []
        if isinstance(stmt, ast.Continue) and self.loops:
            loop = self.loops[-1]
            node = self._new(stmt, "continue")
            self._link(preds, node)
            tail = self._copy_finallys(node, loop.finally_depth)
            self._link(tail, loop.head)
            return []
        node = self._new(stmt, "stmt")
        self._link(preds, node)
        return [node]

    # -- compound forms ------------------------------------------------

    def _if(self, stmt: ast.If, preds: list[CFGNode]) -> list[CFGNode]:
        head = self._new(stmt, "branch")
        self._link(preds, head)
        then_exits = self._stmts(stmt.body, [head])
        if stmt.orelse:
            else_exits = self._stmts(stmt.orelse, [head])
            return then_exits + else_exits
        return then_exits + [head]

    def _loop(self, stmt: ast.For | ast.AsyncFor | ast.While,
              preds: list[CFGNode]) -> list[CFGNode]:
        head = self._new(stmt, "loop")
        self._link(preds, head)
        frame = _Loop(head, len(self.finallys))
        self.loops.append(frame)
        body_exits = self._stmts(stmt.body, [head])
        self._link(body_exits, head)
        self.loops.pop()
        # Exhaustion runs ``else``; ``break`` skips it.
        after = (self._stmts(stmt.orelse, [head]) if stmt.orelse
                 else [head])
        return after + frame.breaks

    def _with(self, stmt: ast.With | ast.AsyncWith,
              preds: list[CFGNode]) -> list[CFGNode]:
        head = self._new(stmt, "with")
        self._link(preds, head)
        body_exits = self._stmts(stmt.body, [head])
        end = self._new(stmt, "with_end")
        self._link(body_exits, end)
        return [end]

    def _match(self, stmt: ast.Match, preds: list[CFGNode]) -> list[CFGNode]:
        head = self._new(stmt, "branch")
        self._link(preds, head)
        exits: list[CFGNode] = []
        has_wildcard = False
        for case in stmt.cases:
            exits.extend(self._stmts(case.body, [head]))
            if (isinstance(case.pattern, ast.MatchAs)
                    and case.pattern.pattern is None and case.guard is None):
                has_wildcard = True
        if not has_wildcard:
            exits.append(head)
        return exits

    def _try(self, stmt: ast.Try, preds: list[CFGNode]) -> list[CFGNode]:
        head = self._new(stmt, "try")
        self._link(preds, head)
        outer = (self.exc_targets[-1] if self.exc_targets
                 else [self.cfg.exit])
        handler_heads = [self._new(h, "except") for h in stmt.handlers]

        # Escape chain: an exception no handler catches still runs the
        # finally body (a fresh copy, entered at a marker node) before
        # propagating outward.
        if stmt.finalbody:
            escape_head = self._new(stmt, "finally")
            self.exc_targets.append(list(outer))
            escape_exits = self._stmts(stmt.finalbody, [escape_head])
            self.exc_targets.pop()
            self._link_many(escape_exits, outer)
            uncaught = [escape_head]
        else:
            uncaught = list(outer)

        if stmt.finalbody:
            self.finallys.append(stmt.finalbody)
        self.exc_targets.append(handler_heads + uncaught)
        body_exits = self._stmts(stmt.body, [head])
        self.exc_targets.pop()

        # ``else`` and handler bodies: exceptions there are not caught by
        # this try's handlers; they escape through the finally chain.
        self.exc_targets.append(uncaught)
        if stmt.orelse:
            body_exits = self._stmts(stmt.orelse, body_exits)
        handler_exits: list[CFGNode] = []
        for handler_head in handler_heads:
            handler = handler_head.stmt
            assert isinstance(handler, ast.ExceptHandler)
            handler_exits.extend(self._stmts(handler.body, [handler_head]))
        self.exc_targets.pop()
        if stmt.finalbody:
            self.finallys.pop()

        joins = body_exits + handler_exits
        if stmt.finalbody:
            return self._stmts(stmt.finalbody, joins)
        return joins

    # -- abrupt exits --------------------------------------------------

    def _copy_finallys(self, node: CFGNode,
                       stop_depth: int) -> list[CFGNode]:
        """Chain fresh copies of pending finally bodies after ``node``,
        innermost first, down to (not including) ``stop_depth``; returns
        the chain's dangling tail."""
        preds = [node]
        for depth in range(len(self.finallys) - 1, stop_depth - 1, -1):
            saved = self.finallys
            self.finallys = saved[:depth]
            preds = self._stmts(saved[depth], preds)
            self.finallys = saved
        return preds

    def _raise(self, stmt: ast.Raise,
               preds: list[CFGNode]) -> list[CFGNode]:
        node = self._new(stmt, "raise")
        self._link(preds, node)
        if self.exc_targets:
            for target in self.exc_targets[-1]:
                if target not in node.exc_succs:
                    node.exc_succs.append(target)
        else:
            # Outside any try: run pending finally copies, then exit.
            tail = self._copy_finallys(node, stop_depth=0)
            for target in ([self.cfg.exit] if tail == [node] else []):
                node.exc_succs.append(target)
            if tail != [node]:
                self._link(tail, self.cfg.exit)
            else:
                pass
        if self.exc_targets and not node.exc_succs:
            node.exc_succs.append(self.cfg.exit)
        return []


def build_cfg(func: ast.AST | list[ast.stmt]) -> CFG:
    """Build the CFG for a function, module, or raw statement list."""
    if isinstance(func, FunctionLike):
        body = func.body
    elif isinstance(func, ast.Module):
        body = func.body
    elif isinstance(func, list):
        body = func
    else:
        raise TypeError(f"cannot build a CFG for {type(func).__name__}")
    return _Builder().build(body)


def iter_function_cfgs(tree: ast.Module) -> Iterator[tuple[ast.AST, CFG]]:
    """Yield ``(function_node, cfg)`` for every def in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, FunctionLike):
            yield node, build_cfg(node)


def node_fragments(node: CFGNode) -> list[ast.AST]:
    """The AST fragments a node actually *evaluates*.

    A compound statement's header node must not transfer over its whole
    subtree — ``ast.walk`` on an ``ast.Try`` would see the finally body
    at the try head, killing facts before the body even runs.  So a
    ``branch`` node evaluates only its test, a ``loop`` node its
    iterable/condition, a ``with`` node its context expressions, and
    structural nodes (``try``/``finally``/``with_end``/``except``
    headers) evaluate nothing beyond what the kind implies.
    """
    stmt = node.stmt
    if stmt is None:
        return []
    kind = node.kind
    if kind == "branch":
        if isinstance(stmt, ast.If):
            return [stmt.test]
        if isinstance(stmt, ast.Match):
            return [stmt.subject]
        return []
    if kind == "loop":
        if isinstance(stmt, ast.While):
            return [stmt.test]
        assert isinstance(stmt, (ast.For, ast.AsyncFor))
        return [stmt.iter, stmt.target]
    if kind == "with":
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        out: list[ast.AST] = [item.context_expr for item in stmt.items]
        out += [item.optional_vars for item in stmt.items
                if item.optional_vars is not None]
        return out
    if kind in ("try", "finally", "with_end"):
        return []
    if kind == "except":
        assert isinstance(stmt, ast.ExceptHandler)
        return [stmt.type] if stmt.type is not None else []
    return [stmt]


def assigned_names(stmt: ast.AST) -> set[str]:
    """Names (re)bound by a statement — assignment targets, loop
    targets, ``with ... as`` names, aug/ann assigns, imports, defs.

    Comprehension targets are deliberately excluded: they live in the
    comprehension's own scope and do not rebind the enclosing name.
    """
    names: set[str] = set()

    def targets_of(target: ast.AST) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                names.add(sub.id)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets_of(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets_of(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets_of(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                targets_of(item.optional_vars)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            names.add(alias.asname or alias.name.split(".")[0])
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        names.add(stmt.name)
    return names
