"""Incremental result cache for the reprolint engine.

Per-file results are keyed on a content hash **and** a canonical config
fingerprint **and** the engine version, so editing a file, changing
policy, or upgrading a checker each invalidate exactly what they must.
The cached entry carries the file's violations, its recorded pragma
suppressions, and its :class:`ModuleSummary` — a warm run rebuilds the
whole-program model without re-parsing a single unchanged file.

The project pass caches separately under a *project signature*: a hash
of every file's summary, suppression record, and per-file config.  A
change to one file's body that does not alter its interface leaves the
signature intact, so the project checkers' results are reused; touching
an import invalidates it.  ``--no-cache`` bypasses everything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any

from ..framework import LintConfig

__all__ = ["ENGINE_VERSION", "LintCache", "config_fingerprint", "file_key"]

#: Bump on any change to checker logic or cached-entry layout: every
#: cached result becomes stale at once.
ENGINE_VERSION = "2.2.0"

_CACHE_NAME = "reprolint-cache.json"


def _canonical(value: Any) -> Any:
    """Hash-stable form: sets sorted, tuples listed, dicts ordered."""
    if isinstance(value, frozenset):
        return sorted(_canonical(v) for v in value)
    if isinstance(value, (set,)):
        return sorted(_canonical(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


def config_fingerprint(config: LintConfig) -> str:
    """Canonical digest of a config — independent of hash seed and of
    field declaration order."""
    doc = {f.name: _canonical(getattr(config, f.name))
           for f in dataclasses.fields(config)}
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def file_key(path: Path, content: bytes, config_fp: str,
             selection: str) -> str:
    """Cache key for one file's results."""
    digest = hashlib.sha256()
    for part in (ENGINE_VERSION, str(path), config_fp, selection):
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    digest.update(content)
    return digest.hexdigest()


class LintCache:
    """A single-JSON-file cache living under ``cache_dir``.

    Entries not touched during a run are pruned on save, so the file
    tracks the current tree instead of growing without bound.
    """

    def __init__(self, cache_dir: Path | str) -> None:
        self.dir = Path(cache_dir)
        self.path = self.dir / _CACHE_NAME
        self._entries: dict[str, dict[str, Any]] = {}
        self._project: dict[str, Any] | None = None
        self._touched: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.project_hit = False
        self._load()

    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(doc, dict) or doc.get("engine") != ENGINE_VERSION:
            return
        entries = doc.get("entries")
        if isinstance(entries, dict):
            self._entries = entries
        project = doc.get("project")
        if isinstance(project, dict):
            self._project = project

    # file entries -----------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._touched.add(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, key: str, entry: dict[str, Any]) -> None:
        self._entries[key] = entry
        self._touched.add(key)

    # the project pass -------------------------------------------------

    def get_project(self, signature: str) -> list[dict[str, Any]] | None:
        if (self._project is not None
                and self._project.get("signature") == signature):
            self.project_hit = True
            return list(self._project.get("violations", []))
        return None

    def put_project(self, signature: str,
                    violations: list[dict[str, Any]]) -> None:
        self._project = {"signature": signature, "violations": violations}

    # persistence ------------------------------------------------------

    def save(self) -> None:
        doc = {
            "engine": ENGINE_VERSION,
            "entries": {k: v for k, v in self._entries.items()
                        if k in self._touched},
            "project": self._project,
        }
        self.dir.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".json.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, separators=(",", ":"))
            os.replace(tmp, self.path)
        finally:
            tmp.unlink(missing_ok=True)
