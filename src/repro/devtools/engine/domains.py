"""Numeric abstract domains for the scale-soundness analysis (RPL8xx).

TrillionG exists because vertex IDs exceed 2^32 (the ADJ6/CSR6 formats
carry 48-bit IDs), so a silent ``int32`` narrowing anywhere on an
ID-carrying path is a correctness bug that only manifests at scales no
test can afford to run.  This module supplies the two abstract domains
the :mod:`~repro.devtools.engine.numeric_checkers` family interprets
code over:

- a **numpy dtype lattice** — ``bool`` ⊑ ``uint8`` … ⊑ ``int64`` /
  ``uint64`` / ``float64``, with ``None`` as unknown/⊥ and a
  numpy-style promotion join (:func:`promote`);
- an **interval domain** (:class:`Interval`) with exact integer
  endpoints where derivable and ``±inf`` otherwise, conservative
  arithmetic, and outward **widening onto a finite grid** of
  power-of-two thresholds (:func:`Interval.widened`) so the dataflow
  worklist terminates on loops.

The policy throughout is *flag only what is positively derived*: an
unknown value (no interval) never flags, so ``rng.normal(...)`` piped
through ``astype(np.int64)`` stays quiet while ``MAX_ID``-bounded IDs
cast to ``int32`` do not.

Also here: the module-level constant evaluator (so ``MAX_ID =
(1 << 48) - 1`` seeds the domain exactly) and the scanner for the
``# reprolint: assume(x, lo, hi)`` pragma that feeds externally-known
bounds into the analysis.
"""

from __future__ import annotations

import ast
import io
import math
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, Optional, Union

__all__ = ["DTypeInfo", "DTYPES", "promote", "dtype_range", "parse_dtype",
           "Interval", "AbsVal", "UNKNOWN", "const_value",
           "module_constants", "AssumeRecord", "scan_assumes", "GRID"]

Number = Union[int, float]


# -- the dtype lattice -------------------------------------------------


@dataclass(frozen=True)
class DTypeInfo:
    """One numpy dtype: its kind, width, and representable range."""

    name: str
    kind: str      #: ``b`` bool, ``u`` unsigned, ``i`` signed, ``f`` float
    bits: int
    lo: Number
    hi: Number


def _int_info(name: str, kind: str, bits: int) -> DTypeInfo:
    if kind == "u":
        return DTypeInfo(name, kind, bits, 0, 2 ** bits - 1)
    return DTypeInfo(name, kind, bits, -(2 ** (bits - 1)),
                     2 ** (bits - 1) - 1)


#: Every dtype the analysis tracks.  float ranges are astronomically
#: wide, so float targets effectively never trigger a range flag — the
#: RPL810 rule is about *range*, not mantissa precision.
DTYPES: dict[str, DTypeInfo] = {
    "bool": DTypeInfo("bool", "b", 1, 0, 1),
    "uint8": _int_info("uint8", "u", 8),
    "uint16": _int_info("uint16", "u", 16),
    "uint32": _int_info("uint32", "u", 32),
    "uint64": _int_info("uint64", "u", 64),
    "int8": _int_info("int8", "i", 8),
    "int16": _int_info("int16", "i", 16),
    "int32": _int_info("int32", "i", 32),
    "int64": _int_info("int64", "i", 64),
    "float32": DTypeInfo("float32", "f", 32, -3.4028235e38, 3.4028235e38),
    "float64": DTypeInfo("float64", "f", 64, -math.inf, math.inf),
}

#: numpy single-letter codes used in struct-style strings (``"<u4"``).
_LETTER_KINDS = {"u": "uint", "i": "int", "f": "float", "b": "bool"}


def dtype_range(name: str) -> tuple[Number, Number]:
    info = DTYPES[name]
    return info.lo, info.hi


def promote(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Join of two dtypes under (simplified) numpy promotion.

    ``None`` (unknown) absorbs everything — the join of unknown with
    anything is unknown, keeping the analysis sound-quiet.
    """
    if a is None or b is None:
        return None
    if a == b:
        return a
    ia, ib = DTYPES[a], DTYPES[b]
    if "f" in (ia.kind, ib.kind):
        if ia.kind == ib.kind == "f":
            return f"float{max(ia.bits, ib.bits)}"
        other = ia if ia.kind != "f" else ib
        flt = ia if ia.kind == "f" else ib
        # int32+ mixed with float32 promotes to float64 in numpy
        if other.kind in "ui" and other.bits >= 32:
            return "float64"
        return flt.name
    if ia.kind == "b":
        return ib.name
    if ib.kind == "b":
        return ia.name
    if ia.kind == ib.kind:
        return f"{_LETTER_KINDS[ia.kind]}{max(ia.bits, ib.bits)}"
    # signed/unsigned mix: the signed type must hold the unsigned range
    unsigned = ia if ia.kind == "u" else ib
    signed = ia if ia.kind == "i" else ib
    bits = max(signed.bits, unsigned.bits * 2)
    if bits > 64:
        # numpy resolves uint64+int64 to float64; range-wise that is
        # effectively unbounded, which float64's info encodes.
        return "float64"
    return f"int{bits}"


_STRUCT_DTYPE = re.compile(r"^[<>=|]?([biuf])(\d+)$")


def _dtype_from_string(text: str) -> Optional[str]:
    text = text.strip()
    if text in DTYPES:
        return text
    match = _STRUCT_DTYPE.match(text)
    if match:
        kind, nbytes = match.group(1), int(match.group(2))
        if kind == "b":
            return "bool"
        name = f"{_LETTER_KINDS[kind]}{nbytes * 8}"
        return name if name in DTYPES else None
    aliases = {"float": "float64", "int": "int64", "bool_": "bool",
               "intp": "int64", "uint": "uint64", "double": "float64",
               "single": "float32"}
    return aliases.get(text)


def parse_dtype(expr: ast.expr) -> Optional[str]:
    """The dtype named by an AST expression, or ``None``.

    Understands ``np.int32``, ``numpy.uint64``, bare ``bool``/``int``/
    ``float``, string forms (``"int32"``, ``"<u4"``), and
    ``np.dtype(...)`` wrappers.  Anything dynamic is unknown.
    """
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _dtype_from_string(expr.value)
    if isinstance(expr, ast.Attribute):
        return _dtype_from_string(expr.attr)
    if isinstance(expr, ast.Name):
        builtin = {"bool": "bool", "int": "int64", "float": "float64"}
        if expr.id in builtin:
            return builtin[expr.id]
        return _dtype_from_string(expr.id)
    if (isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "dtype" and expr.args):
        return parse_dtype(expr.args[0])
    return None


# -- the interval domain -----------------------------------------------

#: Widening thresholds: the power-of-two boundaries that matter for
#: dtype ranges, plus 0/±1 so probability bounds stay exact.  Loop
#: widening snaps interval endpoints outward onto this finite grid, so
#: the worklist cannot climb through unboundedly many distinct facts.
_POWS = (2 ** 7, 2 ** 8, 2 ** 15, 2 ** 16, 2 ** 24, 2 ** 31, 2 ** 32,
         2 ** 48, 2 ** 53, 2 ** 62, 2 ** 63, 2 ** 64)
GRID: tuple[Number, ...] = tuple(sorted(
    {0, 1, -1, math.inf, -math.inf}
    | {p for p in _POWS} | {p - 1 for p in _POWS}
    | {-p for p in _POWS} | {-(p - 1) for p in _POWS}))


def _grid_down(value: Number) -> Number:
    best: Number = -math.inf
    for g in GRID:
        if g <= value and g > best:
            best = g
    return best


def _grid_up(value: Number) -> Number:
    best: Number = math.inf
    for g in GRID:
        if g >= value and g < best:
            best = g
    return best


@dataclass(frozen=True)
class Interval:
    """A closed interval with exact int endpoints where possible."""

    lo: Number
    hi: Number

    @classmethod
    def exact(cls, value: Number) -> "Interval":
        return cls(value, value)

    @property
    def finite_hi(self) -> bool:
        return not math.isinf(self.hi)

    @property
    def finite_lo(self) -> bool:
        return not math.isinf(self.lo)

    def hull(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def widened(self) -> "Interval":
        """Endpoints snapped outward onto the finite widening grid."""
        return Interval(_grid_down(self.lo), _grid_up(self.hi))

    def clamp(self, lo: Number, hi: Number) -> "Interval":
        """The interval intersected with (then confined to) ``[lo, hi]``."""
        return Interval(min(max(self.lo, lo), hi), max(min(self.hi, hi), lo))

    def within(self, lo: Number, hi: Number) -> bool:
        return self.lo >= lo and self.hi <= hi

    # arithmetic -------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        return Interval(_safe_add(self.lo, other.lo),
                        _safe_add(self.hi, other.hi))

    def __sub__(self, other: "Interval") -> "Interval":
        return Interval(_safe_add(self.lo, -other.hi),
                        _safe_add(self.hi, -other.lo))

    def __mul__(self, other: "Interval") -> "Interval":
        products = [_safe_mul(a, b)
                    for a in (self.lo, self.hi)
                    for b in (other.lo, other.hi)]
        return Interval(min(products), max(products))

    def __neg__(self) -> "Interval":
        return Interval(-self.hi, -self.lo)

    def floordiv(self, other: "Interval") -> Optional["Interval"]:
        if other.lo <= 0 <= other.hi:
            return None
        quotients = [_safe_div(a, b)
                     for a in (self.lo, self.hi)
                     for b in (other.lo, other.hi)]
        return Interval(math.floor(min(quotients)),
                        math.floor(max(quotients))
                        if not math.isinf(max(quotients))
                        else math.inf)

    def truediv(self, other: "Interval") -> Optional["Interval"]:
        if other.lo <= 0 <= other.hi:
            return None
        quotients = [_safe_div(a, b)
                     for a in (self.lo, self.hi)
                     for b in (other.lo, other.hi)]
        return Interval(min(quotients), max(quotients))

    def mod(self, other: "Interval") -> Optional["Interval"]:
        """``self % other`` — only bounded when the divisor is provably
        positive and finite (the common ``x % n_buckets`` shape)."""
        if other.lo <= 0 or not other.finite_hi:
            return None
        hi = other.hi - 1
        if self.lo >= 0:
            return Interval(0, hi)
        return Interval(-hi, hi)

    def lshift(self, other: "Interval") -> Optional["Interval"]:
        if (other.lo < 0 or not other.finite_hi or other.hi > 256
                or not isinstance(other.lo, int)
                or not isinstance(other.hi, int)):
            return None
        candidates = [_safe_mul(a, 2 ** s)
                      for a in (self.lo, self.hi)
                      for s in (other.lo, other.hi)]
        return Interval(min(candidates), max(candidates))

    def rshift(self, other: "Interval") -> Optional["Interval"]:
        if self.lo < 0 or other.lo < 0:
            return None
        lo: Number = 0
        hi = self.hi
        if (not math.isinf(hi) and isinstance(hi, int)
                and isinstance(other.lo, int)):
            hi = hi >> min(other.lo, 512)
        return Interval(lo, hi)

    def bitand(self, other: "Interval") -> Optional["Interval"]:
        if self.lo < 0 or other.lo < 0:
            return None
        return Interval(0, min(self.hi, other.hi))

    def bitor(self, other: "Interval") -> Optional["Interval"]:
        if (self.lo < 0 or other.lo < 0
                or not self.finite_hi or not other.finite_hi):
            return None
        bits = max(int(self.hi).bit_length(), int(other.hi).bit_length())
        return Interval(0, 2 ** bits - 1)

    def power(self, other: "Interval") -> Optional["Interval"]:
        if (self.lo < 0 or other.lo < 0 or not other.finite_hi
                or other.hi > 256):
            return None
        candidates = [_safe_pow(a, s)
                      for a in (self.lo, self.hi)
                      for s in (other.lo, other.hi)]
        return Interval(min(candidates), max(candidates))


def _safe_add(a: Number, b: Number) -> Number:
    if math.isinf(a):
        return a
    if math.isinf(b):
        return b
    return a + b


def _safe_mul(a: Number, b: Number) -> Number:
    # 0 * inf is 0 for bound purposes (the zero endpoint wins)
    if a == 0 or b == 0:
        return 0
    if math.isinf(a) or math.isinf(b):
        return math.inf if (a > 0) == (b > 0) else -math.inf
    return a * b


def _safe_div(a: Number, b: Number) -> Number:
    if math.isinf(b):
        return 0
    if math.isinf(a):
        return math.inf if (a > 0) == (b > 0) else -math.inf
    return a / b


def _safe_pow(a: Number, s: Number) -> Number:
    if math.isinf(a):
        return math.inf
    try:
        return a ** s
    except OverflowError:
        return math.inf


# -- abstract values ----------------------------------------------------


@dataclass(frozen=True)
class AbsVal:
    """One abstract value: a dtype (or unknown), an interval (or
    unknown), and a provenance tag.

    ``origin`` is ``"uniform"`` for a uniform [0, 1) draw (the RPL813
    comparison sites key on it) or ``"call:<chain>"`` for the result of
    an unresolved call — the hook the deferred cross-module checks hang
    from.  Empty otherwise.
    """

    dtype: Optional[str] = None
    interval: Optional[Interval] = None
    origin: str = ""

    @property
    def known(self) -> bool:
        return self.interval is not None

    def hull(self, other: "AbsVal") -> "AbsVal":
        interval = None
        if self.interval is not None and other.interval is not None:
            interval = self.interval.hull(other.interval)
        origin = self.origin if self.origin == other.origin else ""
        return AbsVal(promote(self.dtype, other.dtype), interval, origin)


UNKNOWN = AbsVal()


# -- constant evaluation ------------------------------------------------

_CONST_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Div,
                 ast.Mod, ast.Pow, ast.LShift, ast.RShift, ast.BitOr,
                 ast.BitAnd, ast.BitXor)


def const_value(expr: ast.expr,
                env: Optional[dict[str, Number]] = None) -> Optional[Number]:
    """Evaluate a compile-time-constant numeric expression, or ``None``.

    Handles the shapes module-level constants take in this repo:
    ``(1 << 48) - 1``, ``2 ** SCALE``, negated literals, and references
    to previously evaluated constants via ``env``.
    """
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool):
            return int(expr.value)
        if isinstance(expr.value, (int, float)):
            return expr.value
        return None
    if isinstance(expr, ast.Name):
        return None if env is None else env.get(expr.id)
    if isinstance(expr, ast.UnaryOp):
        operand = const_value(expr.operand, env)
        if operand is None:
            return None
        if isinstance(expr.op, ast.USub):
            return -operand
        if isinstance(expr.op, ast.UAdd):
            return operand
        return None
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _CONST_BINOPS):
        left = const_value(expr.left, env)
        right = const_value(expr.right, env)
        if left is None or right is None:
            return None
        try:
            if isinstance(expr.op, ast.Add):
                return left + right
            if isinstance(expr.op, ast.Sub):
                return left - right
            if isinstance(expr.op, ast.Mult):
                return left * right
            if isinstance(expr.op, ast.FloorDiv):
                return left // right
            if isinstance(expr.op, ast.Div):
                return left / right
            if isinstance(expr.op, ast.Mod):
                return left % right
            if isinstance(expr.op, ast.Pow):
                if abs(right) > 256:
                    return None
                return left ** right
            if isinstance(left, int) and isinstance(right, int):
                if isinstance(expr.op, ast.LShift) and 0 <= right <= 256:
                    return left << right
                if isinstance(expr.op, ast.RShift) and 0 <= right <= 512:
                    return left >> right
                if isinstance(expr.op, ast.BitOr):
                    return left | right
                if isinstance(expr.op, ast.BitAnd):
                    return left & right
                if isinstance(expr.op, ast.BitXor):
                    return left ^ right
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    return None


def module_constants(tree: ast.Module) -> dict[str, Number]:
    """Module-level ``NAME = <const expr>`` bindings, evaluated exactly.

    Names reassigned to a non-constant later are dropped (the binding is
    no longer a constant fact).
    """
    env: dict[str, Number] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            result = const_value(value, env)
            if result is None:
                env.pop(target.id, None)
            else:
                env[target.id] = result
    return env


# -- the assume pragma --------------------------------------------------

_ASSUME = re.compile(
    r"#\s*reprolint:\s*assume\(\s*([A-Za-z_]\w*)\s*,([^,]+),(.+?)\)\s*$")


@dataclass(frozen=True)
class AssumeRecord:
    """One ``# reprolint: assume(x, lo, hi)`` pragma, parsed and bound.

    The pragma asserts an externally-known bound the analysis cannot
    derive (a file-format invariant, a validated argument): after the
    statement on its line executes, ``x`` lies in ``[lo, hi]``.  An
    assume that never lands on an analyzed statement is dead (RPL814).
    """

    line: int
    name: str
    lo: Number
    hi: Number

    def to_json(self) -> list[object]:
        return [self.line, self.name, self.lo, self.hi]

    @classmethod
    def from_json(cls, doc: Iterable[object]) -> "AssumeRecord":
        line, name, lo, hi = list(doc)
        return cls(int(line), str(name), _num(lo), _num(hi))


def _num(value: object) -> Number:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return float(str(value))


def _parse_bound(text: str, env: dict[str, Number]) -> Optional[Number]:
    try:
        expr = ast.parse(text.strip(), mode="eval").body
    except SyntaxError:
        return None
    return const_value(expr, env)


def scan_assumes(text: str,
                 env: Optional[dict[str, Number]] = None
                 ) -> list[AssumeRecord]:
    """Parse every assume pragma from ``text``'s comment tokens.

    Bounds are constant expressions (``2**48 - 1`` is fine) evaluated
    against the module constant environment, so an assume can reference
    the same named limits the code uses.  Malformed bounds are ignored
    (a typo must not silently widen the domain).
    """
    env = env or {}
    try:
        comments = [(tok.start[0], tok.string) for tok in
                    tokenize.generate_tokens(io.StringIO(text).readline)
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        comments = []
    records: list[AssumeRecord] = []
    for lineno, comment in comments:
        match = _ASSUME.search(comment)
        if not match:
            continue
        lo = _parse_bound(match.group(2), env)
        hi = _parse_bound(match.group(3), env)
        if lo is None or hi is None or lo > hi:
            continue
        records.append(AssumeRecord(lineno, match.group(1), lo, hi))
    return records
