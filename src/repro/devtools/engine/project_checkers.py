"""Whole-program checkers over the :class:`ProjectModel`.

- **callgraph-layering** (RPL210) — layering violations the per-file
  import scan (RPL201) provably cannot see: a ``from``-import whose
  *defining* module, after following re-export chains, lives in a
  forbidden layer even though the literal import target does not; and
  ``importlib.import_module("...")`` / ``__import__("...")`` with a
  string-literal target, which no import statement ever shows.
- **dead-pragma** (RPL701) — a ``# reprolint: disable=`` comment that
  suppressed nothing.  Runs last (``priority``) so every suppression
  recorded by the file and project passes is visible.  A pragma is only
  declared dead when each of its targets *provably* ran: the target's
  checker was enabled this pass and none of its codes are switched off
  by the directory profile — otherwise silence proves nothing.
"""

from __future__ import annotations

import re

from ..framework import (ProjectChecker, all_checkers, all_project_checkers,
                         register_project_checker)
from .project import ProjectModel

__all__ = ["CallGraphLayeringChecker", "DeadPragmaChecker"]

_CODE_RE = re.compile(r"^rpl\d+$")


def _in_layer(module: str, prefixes: tuple[str, ...] | frozenset[str]
              ) -> str | None:
    for prefix in prefixes:
        if module == prefix or module.startswith(prefix + "."):
            return prefix
    return None


@register_project_checker
class CallGraphLayeringChecker(ProjectChecker):
    """Cross-layer reach the import-statement scan cannot prove."""

    name = "callgraph-layering"
    codes = {"RPL210": "cross-layer dependency via re-export or "
                       "dynamic import"}

    def check(self, project: ProjectModel) -> None:
        for summary in project.summaries:
            config = project.config_for_path(summary.path)
            banned: tuple[str, ...] = ()
            for prefix, targets in config.layering_rules.items():
                if _in_layer(summary.module, (prefix,)):
                    banned = targets
                    break
            if not banned:
                continue

            for rec in summary.imports:
                if rec.symbol is None:
                    continue  # plain ``import x`` — RPL201's job
                if _in_layer(rec.module, banned):
                    continue  # literal target already banned — RPL201
                defining, symbol = project.resolve(rec.module, rec.symbol)
                if defining == rec.module:
                    continue
                layer = _in_layer(defining, banned)
                if layer is not None:
                    what = (f"module {defining}" if symbol is None
                            else f"{defining}:{symbol}")
                    self.flag(summary, rec.line, 0, "RPL210",
                              f"'{rec.alias}' imported from {rec.module} "
                              f"actually resolves to {what} in the "
                              f"forbidden layer {layer} (re-export "
                              f"laundering)")

            for target, line in summary.dynamic_imports:
                layer = _in_layer(target, banned)
                if layer is not None:
                    self.flag(summary, line, 0, "RPL210",
                              f"dynamic import of {target!r} reaches the "
                              f"forbidden layer {layer}: "
                              f"importlib hides this from the import "
                              f"graph")


@register_project_checker
class DeadPragmaChecker(ProjectChecker):
    """Suppression comments that suppress nothing."""

    name = "dead-pragma"
    codes = {"RPL701": "pragma suppresses nothing"}
    priority = 100  # after every other checker has recorded its hits

    def _code_owners(self) -> dict[str, str]:
        owners: dict[str, str] = {}
        for registry in (all_checkers(), all_project_checkers()):
            for name, cls in registry.items():
                for code in cls.codes:
                    owners[code.lower()] = name
        return owners

    def _codes_of(self) -> dict[str, frozenset[str]]:
        codes: dict[str, frozenset[str]] = {}
        for registry in (all_checkers(), all_project_checkers()):
            for name, cls in registry.items():
                codes[name] = frozenset(cls.codes)
        return codes

    def check(self, project: ProjectModel) -> None:
        owners = self._code_owners()
        checker_codes = self._codes_of()
        all_names = set(checker_codes)
        ran = project.ran_names or all_names  # empty set == everything ran

        for summary in project.summaries:
            config = project.config_for_path(summary.path)
            off = {c.lower() for c in config.disabled_codes}
            for pragma in summary.pragma_table.unused_pragmas():
                if all(self._provable(t, owners, checker_codes, ran, off)
                       for t in pragma.targets):
                    targets = ",".join(sorted(pragma.targets))
                    self.flag(summary, pragma.line, 0, "RPL701",
                              f"pragma 'disable={targets}' suppresses "
                              f"nothing: the targeted rules ran clean on "
                              f"this line, so the comment is dead weight")

    @staticmethod
    def _provable(target: str, owners: dict[str, str],
                  checker_codes: dict[str, frozenset[str]],
                  ran: set[str], off: set[str]) -> bool:
        if target == "all":
            return not off and ran >= set(checker_codes)
        if _CODE_RE.match(target):
            owner = owners.get(target)
            if owner is None:
                return True  # a code that exists nowhere can't suppress
            return owner in ran and target not in off
        codes = checker_codes.get(target)
        if codes is None:
            return True  # unknown checker name can't suppress
        return (target in ran
                and not any(c.lower() in off for c in codes))
