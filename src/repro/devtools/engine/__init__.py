"""The ``reprolint`` v2 analysis engine.

Layers, bottom to top:

- :mod:`~repro.devtools.engine.cfg` — intraprocedural control-flow
  graphs (``if``/``for``/``while``/``try``/``finally``/``with``/
  ``return``, with ``finally`` duplication for abrupt exits and
  explicit exceptional edges);
- :mod:`~repro.devtools.engine.dataflow` — a forward gen/kill dataflow
  framework (set lattice, worklist to fixpoint) checkers instantiate;
- :mod:`~repro.devtools.engine.project` — the whole-program model:
  per-module symbol tables, the resolved import graph (re-exports
  included), and an approximate call graph;
- :mod:`~repro.devtools.engine.domains` — the numeric abstract domains
  (numpy dtype lattice, grid-widened interval arithmetic, the constant
  evaluator, and the ``assume`` pragma scanner);
- :mod:`~repro.devtools.engine.flow_checkers` — the flow-sensitive
  file checkers (rng-stream-flow, atomic-write, resource-lifecycle);
- :mod:`~repro.devtools.engine.numeric_checkers` — the RPL8xx
  scale-soundness family: dtype & value-range abstract interpretation
  over the CFG (narrowing casts, default-dtype constructors,
  accumulation overflow, probability ranges), plus the cross-module
  ``numeric-interface`` project checker;
- :mod:`~repro.devtools.engine.concurrency_checkers` — the RPL6xx
  concurrency family (thread-shared-state, thread-lifecycle, and the
  whole-program spawn-hygiene rules);
- :mod:`~repro.devtools.engine.project_checkers` — the whole-program
  checkers (callgraph-layering, dead-pragma);
- :mod:`~repro.devtools.engine.cache` — the incremental result cache
  (content + config + engine-version keys, project-signature
  invalidation);
- :mod:`~repro.devtools.engine.runner` — orchestration: cache probe,
  file pass, project pass, dead-pragma sweep.
"""

from .cache import ENGINE_VERSION, LintCache, config_fingerprint
from .cfg import (CFG, CFGNode, build_cfg, iter_function_cfgs,
                  node_fragments)
from .dataflow import ForwardAnalysis, run_forward
from .domains import DTYPES, AbsVal, Interval, promote
from .project import ModuleSummary, ProjectModel, summarize_source
from .runner import LintRun, run_paths

__all__ = [
    "DTYPES",
    "AbsVal",
    "Interval",
    "promote",
    "CFG",
    "CFGNode",
    "build_cfg",
    "iter_function_cfgs",
    "node_fragments",
    "ForwardAnalysis",
    "run_forward",
    "ModuleSummary",
    "ProjectModel",
    "summarize_source",
    "LintRun",
    "run_paths",
    "ENGINE_VERSION",
    "LintCache",
    "config_fingerprint",
]
