"""Concurrency lint rules (the RPL6xx family).

Determinism in TrillionG survives threads only under three disciplines,
each enforced by one rule family here:

- **thread-shared-state** (RPL610) — a class that hands one of its own
  methods to ``threading.Thread(target=...)`` shares every ``self``
  attribute between the spawned thread and its other methods.  Any
  attribute *assigned* both inside the thread-reachable methods and
  outside them is a cross-thread write race unless every such
  assignment sits under ``with self.<lock>:`` (or the attribute is a
  ``queue.Queue``-like handoff, which synchronizes internally).
- **thread-lifecycle** (RPL611) — a thread started in a function and
  neither joined on every normal exit nor handed off (returned, stored,
  passed on) keeps running after the function returns; whatever it
  writes now races with the caller, and interpreter shutdown may cut it
  off mid-write.
- **spawn-hygiene** (RPL620/621, a whole-program pass over the
  ``spawn_module_prefixes`` layers) — RPL620: the worker callable at a
  spawn site must be a picklable module-level function, not a lambda or
  nested ``def`` (``spawn``-context pickling fails at runtime, and even
  under ``fork`` the closure smuggles parent state into the worker).
  RPL621: code reachable from a worker entry point must not read the
  environment (``os.environ`` / ``os.getenv``) — workers inherit the
  *spawn-time* environment, so env-dependent behaviour silently
  diverges between supervisor and worker and between runs; thread
  configuration through the task tuple instead.

RPL610 and RPL611 are single-file rules (a class or function is visible
whole); RPL620/621 need the project call graph to walk from the worker
entry into everything it can reach.  The call-graph walk uses only
*resolved* edges — name-based method matching would drag in every
same-named method in the tree and flag env reads no worker executes.
"""

from __future__ import annotations

import ast

from ..framework import (Checker, LintConfig, ProjectChecker,
                         register_checker, register_project_checker)
from .cfg import CFG, CFGNode, FunctionLike, build_cfg
from .dataflow import ForwardAnalysis, run_forward
from .flow_checkers import (_calls, _chain, _escaping_names, _kills,
                            _line_node, _simple_assign_target)

from .project import ModuleSummary, ProjectModel

__all__ = ["ThreadSharedStateChecker", "ThreadLifecycleChecker",
           "SpawnHygieneChecker"]

#: Constructors whose instances synchronize access on their own: an
#: attribute holding one of these is a sanctioned cross-thread channel.
_SYNC_TYPES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore", "Barrier", "Event"})
_QUEUE_TYPES = frozenset({"Queue", "SimpleQueue", "LifoQueue",
                          "PriorityQueue", "JoinableQueue", "deque"})


# -- RPL610: thread-shared-state ---------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` for a plain ``self.attr`` expression, else ``None``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _attr_write_targets(stmt: ast.stmt) -> list[tuple[str, int]]:
    """``self.X`` attributes this statement assigns (plain, tuple, or
    augmented assignment)."""
    out: list[tuple[str, int]] = []
    if isinstance(stmt, ast.Assign):
        targets: list[ast.expr] = list(stmt.targets)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    else:
        return out
    for target in targets:
        for sub in ast.walk(target):
            attr = _self_attr(sub)
            if attr is not None and isinstance(sub.ctx, ast.Store):
                out.append((attr, stmt.lineno))
    return out


class _MethodScan:
    """One method's facts for the shared-state analysis."""

    def __init__(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                 lock_attrs: set[str]) -> None:
        self.name = node.name
        #: ``self.M()`` calls — intra-class call edges
        self.self_calls: set[str] = set()
        #: ``self.M`` handed to ``Thread(target=...)``
        self.thread_targets: set[str] = set()
        #: attribute writes: ``(attr, line, guarded_by_lock)``
        self.writes: list[tuple[str, int, bool]] = []
        self._lock_attrs = lock_attrs
        for stmt in node.body:
            self._walk(stmt, guarded=False)

    def _walk(self, stmt: ast.stmt, guarded: bool) -> None:
        for attr, line in _attr_write_targets(stmt):
            self.writes.append((attr, line, guarded))
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                attr = _self_attr(sub.func)
                if attr is not None:
                    self.self_calls.add(attr)
                chain = _chain(sub.func)
                if chain and chain.split(".")[-1] == "Thread":
                    for kw in sub.keywords:
                        if kw.arg == "target":
                            target = _self_attr(kw.value)
                            if target is not None:
                                self.thread_targets.add(target)
        # nested blocks: only ``with self.<lock>:`` upgrades the guard;
        # re-walk the bodies of compound statements with the right flag.
        for child_body, child_guard in self._child_blocks(stmt, guarded):
            for child in child_body:
                self._walk(child, child_guard)

    def _child_blocks(self, stmt: ast.stmt, guarded: bool):
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locked = guarded or any(
                (attr := _self_attr(item.context_expr)) is not None
                and attr in self._lock_attrs
                for item in stmt.items)
            yield stmt.body, locked
            return
        for field_name in ("body", "orelse", "finalbody"):
            body = getattr(stmt, field_name, None)
            if body:
                yield body, guarded
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body, guarded


@register_checker
class ThreadSharedStateChecker(Checker):
    """Attributes written on both sides of an in-class thread boundary
    must be lock-guarded (or be a synchronizing queue)."""

    name = "thread-shared-state"
    codes = {"RPL610": "attribute written by both the spawned thread "
                       "and other methods without a lock"}

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_class(node)
        self.generic_visit(node)

    def _check_class(self, node: ast.ClassDef) -> None:
        methods = {m.name: m for m in node.body
                   if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))}
        lock_attrs, safe_attrs = self._channel_attrs(methods.values())
        scans = {name: _MethodScan(fn, lock_attrs)
                 for name, fn in methods.items()}

        roots = {t for scan in scans.values() for t in scan.thread_targets}
        if not roots:
            return
        reachable = set()
        frontier = list(roots & set(scans))
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            frontier.extend(scans[name].self_calls & set(scans))

        flagged: set[str] = set()
        for attr in sorted({a for scan in scans.values()
                            for a, _, _ in scan.writes}):
            if attr in safe_attrs or attr in lock_attrs or attr in flagged:
                continue
            inside = [(s.name, line, guarded)
                      for s in scans.values() if s.name in reachable
                      for a, line, guarded in s.writes if a == attr]
            outside = [(s.name, line, guarded)
                       for s in scans.values()
                       if s.name not in reachable and s.name != "__init__"
                       for a, line, guarded in s.writes if a == attr]
            if not inside or not outside:
                continue
            unguarded = [(m, line) for m, line, guarded
                         in inside + outside if not guarded]
            if not unguarded:
                continue
            flagged.add(attr)
            line = min(w[1] for w in unguarded)
            thread_side = ", ".join(sorted({m for m, _, _ in inside}))
            caller_side = ", ".join(sorted({m for m, _, _ in outside}))
            self.flag(_line_node(line), "RPL610",
                      f"attribute 'self.{attr}' is written by the spawned "
                      f"thread (via {thread_side}) and by {caller_side} "
                      f"without a lock: guard every write with "
                      f"`with self.<lock>:` or hand the value over "
                      f"through a queue")

    @staticmethod
    def _channel_attrs(methods) -> tuple[set[str], set[str]]:
        locks: set[str] = set()
        queues: set[str] = set()
        for fn in methods:
            for stmt in ast.walk(fn):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                chain = _chain(stmt.value.func)
                tail = chain.split(".")[-1] if chain else ""
                for target in stmt.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if tail in _SYNC_TYPES:
                        locks.add(attr)
                    elif tail in _QUEUE_TYPES:
                        queues.add(attr)
        return locks, queues


# -- RPL611: thread-lifecycle ------------------------------------------


class _ThreadAnalysis(ForwardAnalysis):
    """Facts: ``("t", var, state, line)`` — ``var`` holds a thread
    created at ``line``; ``state`` is ``pending`` until ``.start()``,
    ``started`` after.  ``.join()`` or escape (returned, stored on an
    object, passed on) ends the function's responsibility."""

    def transfer(self, node: CFGNode, facts):  # type: ignore[override]
        out = set(facts)
        for name in _kills(node):
            out -= {f for f in out if f[0] == "t" and f[1] == name}

        joined: set[str] = set()
        started: set[str] = set()
        for call in _calls(node):
            chain = _chain(call.func)
            if chain is None or "." not in chain:
                continue
            receiver, _, tail = chain.rpartition(".")
            if tail == "join":
                joined.add(receiver)
            elif tail == "start":
                started.add(receiver)
        escaped = _escaping_names(node)
        out = {f for f in out
               if not (f[0] == "t" and (f[1] in joined or f[1] in escaped))}
        for fact in list(out):
            if fact[0] == "t" and fact[1] in started:
                out.discard(fact)
                out.add(("t", fact[1], "started", fact[3]))

        target = _simple_assign_target(node)
        if target is not None:
            stmt = node.stmt
            assert stmt is not None
            value = stmt.value if isinstance(
                stmt, (ast.Assign, ast.AnnAssign)) else None
            if isinstance(value, ast.Call):
                chain = _chain(value.func)
                if chain and chain.split(".")[-1] == "Thread":
                    out.add(("t", target, "pending", stmt.lineno))
        return frozenset(out)


@register_checker
class ThreadLifecycleChecker(Checker):
    """Locally-created threads must be joined on every normal exit."""

    name = "thread-lifecycle"
    codes = {"RPL611": "thread started but not joined on every exit"}

    def run(self):  # type: ignore[override]
        for node in ast.walk(self.source.tree):
            if isinstance(node, FunctionLike):
                self._check_function(build_cfg(node))
        self.finish()
        return self.violations

    def _check_function(self, cfg: CFG) -> None:
        results = run_forward(cfg, _ThreadAnalysis())
        normal_preds, _exc_preds = cfg.preds()
        exit_facts = ForwardAnalysis.join(
            results[p.index][1] for p in normal_preds[cfg.exit.index])
        flagged: set[tuple[str, int]] = set()
        for fact in sorted(exit_facts):
            if (fact[0] == "t" and fact[2] == "started"
                    and (fact[1], fact[3]) not in flagged):
                flagged.add((fact[1], fact[3]))
                self.flag(_line_node(fact[3]), "RPL611",
                          f"thread '{fact[1]}' started here is not joined "
                          f"on every exit: the function returns while the "
                          f"thread still runs, racing the caller (join it "
                          f"in a finally block or hand it to the caller)")


# -- RPL620/621: spawn-hygiene -----------------------------------------


@register_project_checker
class SpawnHygieneChecker(ProjectChecker):
    """Worker callables must be picklable top-level functions, and
    worker-reachable code must not read the environment."""

    name = "spawn-hygiene"
    codes = {
        "RPL620": "non-picklable worker callable crosses a spawn boundary",
        "RPL621": "environment read inside worker-reachable code",
    }

    def check(self, project: "ProjectModel") -> None:
        entries: list[tuple[ModuleSummary, str, int]] = []
        for summary in project.summaries:
            config = project.config_for_path(summary.path)
            if not self._in_scope(summary.module, config):
                continue
            for site in summary.spawn_sites:
                callee_tail = str(site["callee"]).split(".")[-1]
                if callee_tail not in config.worker_submit_calls:
                    continue
                for worker in site["workers"]:
                    self._check_worker(project, summary, site, str(worker),
                                       entries)
        self._check_env_reads(project, entries)

    @staticmethod
    def _in_scope(module: str, config: LintConfig) -> bool:
        return any(module == p or module.startswith(p + ".")
                   for p in config.spawn_module_prefixes)

    def _check_worker(self, project: "ProjectModel",
                      summary: "ModuleSummary", site: dict, worker: str,
                      entries: list) -> None:
        line = int(site["line"])
        enclosing = str(site["function"])
        if worker == "<lambda>":
            self.flag(summary, line, 0, "RPL620",
                      f"lambda passed to {site['callee']}(): lambdas do "
                      f"not pickle, so spawn-context workers crash at "
                      f"submission — use a module-level function")
            return
        if "." not in worker and enclosing != "<module>":
            nested = f"{enclosing}.{worker}"
            if nested in summary.functions:
                self.flag(summary, line, 0, "RPL620",
                          f"nested function '{worker}' (defined inside "
                          f"{enclosing}) passed to {site['callee']}(): "
                          f"nested defs do not pickle and capture parent "
                          f"state — move the worker to module level")
                return
        owner, symbol = project.resolve_chain(summary.module, worker)
        if (owner in project.modules and symbol is not None
                and symbol in project.modules[owner].functions):
            entries.append((project.modules[owner], symbol, line))

    def _check_env_reads(self, project: "ProjectModel",
                         entries: list) -> None:
        flagged: set[tuple[str, int]] = set()
        for entry_summary, entry_qual, _line in entries:
            start = f"{entry_summary.module}:{entry_qual}"
            for reached in self._worker_closure(project, start):
                module, _, qual = reached.partition(":")
                summary = project.modules.get(module)
                if summary is None:
                    continue
                config = project.config_for_path(summary.path)
                if not self._in_scope(module, config):
                    continue
                for read_qual, line, var in summary.env_reads:
                    if read_qual != qual or (summary.path, line) in flagged:
                        continue
                    flagged.add((summary.path, line))
                    what = (f"environment variable {var!r}" if var
                            else "the environment")
                    self.flag(summary, line, 0, "RPL621",
                              f"{read_qual}() reads {what} but is "
                              f"reachable from worker entry point "
                              f"{entry_qual}(): workers inherit the "
                              f"spawn-time environment, so pass the value "
                              f"through the task tuple instead")

    @staticmethod
    def _worker_closure(project: "ProjectModel", start: str) -> set[str]:
        """Resolved-edge transitive closure from a worker entry point,
        expanding class constructions into their methods (calling
        ``Cls(...)`` in a worker may run any of its methods there)."""
        seen = {start}
        frontier = [start]
        while frontier and len(seen) < 10_000:
            current = frontier.pop()
            for succ in project.call_edges(current, name_based=False):
                targets = [succ]
                mod, _, sym = succ.partition(":")
                summary = project.modules.get(mod)
                if summary and sym in summary.classes:
                    targets += [f"{mod}:{sym}.{m}"
                                for m in summary.classes[sym].methods]
                for target in targets:
                    if target not in seen:
                        seen.add(target)
                        frontier.append(target)
        return seen
