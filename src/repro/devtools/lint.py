"""``reprolint`` command line: ``python -m repro.devtools.lint`` or the
``trilliong-lint`` console script.

Exit codes: 0 clean, 1 findings, 2 usage / unreadable / unparseable
input, 3 internal engine error (a crash in the analysis itself, never
a property of the linted code).

The v2 engine runs by default: file checkers, the whole-program project
checkers (call-graph layering, dead-pragma), per-directory profiles
(``tests``/``benchmarks`` get the relaxed policy), and the incremental
cache under ``.reprolint_cache/`` (``--no-cache`` to bypass,
``--cache-dir`` to relocate, ``--stats`` to see hit rates).
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from pathlib import Path
from typing import Sequence

from .framework import LintConfig, all_checkers, all_project_checkers
from .reporters import json_report, sarif_report, text_report

__all__ = ["main", "build_parser", "default_target", "default_cache_dir"]


def default_target() -> Path:
    """The installed ``repro`` package directory (lint it by default)."""
    return Path(__file__).resolve().parent.parent


def default_cache_dir() -> Path:
    """Incremental-cache location: ``.reprolint_cache`` in the CWD."""
    return Path(".reprolint_cache")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="trilliong-lint",
        description="Project-specific static analysis for the TrillionG "
                    "reproduction: syntactic rules (RNG determinism, "
                    "layering, numerical safety, exception hygiene, API "
                    "completeness, mutable defaults) plus the v2 dataflow "
                    "engine (RNG-stream flow, atomic-write protocol, "
                    "resource lifecycle, thread shared-state and "
                    "lifecycle, spawn hygiene, call-graph layering, dead "
                    "pragmas, numeric dtype/interval scale-soundness). "
                    "Exit codes: 0 clean, 1 findings, 2 bad input, "
                    "3 internal engine error.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (sarif: SARIF 2.1.0 for "
                             "GitHub code scanning)")
    parser.add_argument("--select", metavar="NAMES",
                        help="comma-separated checker names to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="NAMES",
                        help="comma-separated checker names to skip")
    parser.add_argument("--list-checkers", action="store_true",
                        help="list registered checkers and exit")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the incremental cache entirely")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="cache location (default: ./.reprolint_cache)")
    parser.add_argument("--stats", action="store_true",
                        help="print cache and timing statistics to stderr")
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        rows = [(name, cls.codes) for name, cls in all_checkers().items()]
        rows += [(f"{name} (project)", cls.codes)
                 for name, cls in all_project_checkers().items()]
        for name, codes in sorted(rows):
            print(f"{name:30s} {', '.join(sorted(codes))}")
        return 0

    paths = args.paths or [default_target()]
    cache_dir: Path | None
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or default_cache_dir()

    from .engine.runner import run_paths

    started = time.perf_counter()
    try:
        run = run_paths(paths, LintConfig(),
                        enabled=_split(args.select),
                        disabled=_split(args.ignore),
                        cache_dir=cache_dir)
    except (FileNotFoundError, KeyError) as exc:
        print(f"trilliong-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"trilliong-lint: syntax error: {exc}", file=sys.stderr)
        return 2
    # An engine crash must exit 3 regardless of which exception type
    # escaped — hence the blanket catch.
    except Exception:  # reprolint: disable=RPL402
        print("trilliong-lint: internal engine error", file=sys.stderr)
        traceback.print_exc(file=sys.stderr)
        return 3
    elapsed = time.perf_counter() - started

    if args.format == "json":
        print(json_report(run.violations, run.files_checked))
    elif args.format == "sarif":
        print(sarif_report(run.violations, run.files_checked))
    else:
        print(text_report(run.violations, run.files_checked))
    if args.stats:
        mode = "off" if cache_dir is None else str(cache_dir)
        print(f"trilliong-lint: {elapsed:.2f}s, cache={mode}, "
              f"hits={run.cache_hits}, misses={run.cache_misses}, "
              f"project_pass={'cached' if run.project_cache_hit else 'run'}",
              file=sys.stderr)
    return 1 if run.violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
