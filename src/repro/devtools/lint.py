"""``reprolint`` command line: ``python -m repro.devtools.lint`` or the
``trilliong-lint`` console script.

Exit codes: 0 clean, 1 findings, 2 usage / unreadable / unparseable input.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .framework import LintConfig, all_checkers, lint_paths
from .reporters import json_report, text_report

__all__ = ["main", "build_parser", "default_target"]


def default_target() -> Path:
    """The installed ``repro`` package directory (lint it by default)."""
    return Path(__file__).resolve().parent.parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="trilliong-lint",
        description="Project-specific static analysis for the TrillionG "
                    "reproduction (RNG determinism, layering, numerical "
                    "safety, exception hygiene, API completeness, mutable "
                    "defaults).")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="NAMES",
                        help="comma-separated checker names to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="NAMES",
                        help="comma-separated checker names to skip")
    parser.add_argument("--list-checkers", action="store_true",
                        help="list registered checkers and exit")
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_checkers:
        for name, cls in sorted(all_checkers().items()):
            codes = ", ".join(sorted(cls.codes))
            print(f"{name:20s} {codes}")
        return 0

    paths = args.paths or [default_target()]
    try:
        violations, files_checked = lint_paths(
            paths, LintConfig(),
            enabled=_split(args.select), disabled=_split(args.ignore))
    except (FileNotFoundError, KeyError) as exc:
        print(f"trilliong-lint: error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"trilliong-lint: syntax error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json_report(violations, files_checked))
    else:
        print(text_report(violations, files_checked))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
