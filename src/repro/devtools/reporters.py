"""Render ``reprolint`` findings as human text, machine JSON, or SARIF.

The SARIF 2.1.0 document (``--format sarif``) is what the CI workflow
uploads to GitHub code scanning, so findings annotate PRs inline.  Rule
metadata comes from the live checker registry (every RPL code that can
fire is declared), and each result carries a content-derived
``partialFingerprints`` entry so code scanning tracks a finding across
unrelated-line churn.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from typing import Iterable, Sequence

from .framework import Violation, all_checkers, all_project_checkers

__all__ = ["text_report", "json_report", "sarif_report", "summary_counts"]

#: SARIF schema pin — 2.1.0 is what GitHub code scanning ingests.
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def summary_counts(violations: Iterable[Violation]) -> dict[str, int]:
    """Number of findings per checker name, sorted by count then name."""
    counts = Counter(v.name for v in violations)
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def text_report(violations: Sequence[Violation], files_checked: int) -> str:
    """One finding per line plus a per-checker summary footer."""
    lines = [v.render() for v in violations]
    if violations:
        lines.append("")
        for name, count in summary_counts(violations).items():
            lines.append(f"{count:5d}  {name}")
        lines.append(f"reprolint: {len(violations)} finding(s) in "
                     f"{files_checked} file(s)")
    else:
        lines.append(f"reprolint: clean ({files_checked} file(s))")
    return "\n".join(lines)


def json_report(violations: Sequence[Violation], files_checked: int) -> str:
    """Stable JSON document for CI annotation tooling."""
    doc = {
        "tool": "reprolint",
        "files_checked": files_checked,
        "summary": summary_counts(violations),
        "violations": [v.to_dict() for v in violations],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def _rule_catalog() -> list[dict]:
    """Every registered RPL code as a SARIF ``reportingDescriptor``."""
    rules: dict[str, dict] = {}
    rows = [(name, cls.codes) for name, cls in all_checkers().items()]
    rows += [(name, cls.codes)
             for name, cls in all_project_checkers().items()]
    for checker_name, codes in rows:
        for code, description in codes.items():
            rules.setdefault(code, {
                "id": code,
                "name": code,
                "shortDescription": {"text": description},
                "properties": {"checker": checker_name},
                "defaultConfiguration": {"level": "warning"},
            })
    return [rules[code] for code in sorted(rules)]


def _engine_version() -> str:
    from .engine.cache import ENGINE_VERSION
    return ENGINE_VERSION


def _fingerprint(violation: Violation) -> str:
    blob = "|".join([violation.path, violation.code, violation.name,
                     violation.message])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sarif_report(violations: Sequence[Violation],
                 files_checked: int) -> str:
    """SARIF 2.1.0 document for GitHub code scanning upload.

    Fingerprints hash (path, code, checker, message) — deliberately not
    the line number, so a finding keeps its identity when unrelated
    edits shift it.
    """
    results = []
    for violation in violations:
        results.append({
            "ruleId": violation.code,
            "level": "warning",
            "message": {"text": f"[{violation.name}] {violation.message}"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": violation.path.replace("\\", "/"),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(violation.line, 1),
                        "startColumn": violation.col + 1,
                    },
                },
            }],
            "partialFingerprints": {
                "reprolint/v1": _fingerprint(violation),
            },
        })
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "semanticVersion": _engine_version(),
                    "rules": _rule_catalog(),
                },
            },
            "properties": {"filesChecked": files_checked},
            "results": results,
            "columnKind": "unicodeCodePoints",
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
