"""Render ``reprolint`` findings as human text or machine JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Iterable, Sequence

from .framework import Violation

__all__ = ["text_report", "json_report", "summary_counts"]


def summary_counts(violations: Iterable[Violation]) -> dict[str, int]:
    """Number of findings per checker name, sorted by count then name."""
    counts = Counter(v.name for v in violations)
    return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))


def text_report(violations: Sequence[Violation], files_checked: int) -> str:
    """One finding per line plus a per-checker summary footer."""
    lines = [v.render() for v in violations]
    if violations:
        lines.append("")
        for name, count in summary_counts(violations).items():
            lines.append(f"{count:5d}  {name}")
        lines.append(f"reprolint: {len(violations)} finding(s) in "
                     f"{files_checked} file(s)")
    else:
        lines.append(f"reprolint: clean ({files_checked} file(s))")
    return "\n".join(lines)


def json_report(violations: Sequence[Violation], files_checked: int) -> str:
    """Stable JSON document for CI annotation tooling."""
    doc = {
        "tool": "reprolint",
        "files_checked": files_checked,
        "summary": summary_counts(violations),
        "violations": [v.to_dict() for v in violations],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
