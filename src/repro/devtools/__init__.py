"""``reprolint`` — project-specific static analysis for the TrillionG repo.

The Python type system cannot see the invariants this codebase lives and
dies by: every random draw must flow through the ``SeedSequence``-keyed
streams of :mod:`repro.core.rng` (or graphs stop being bit-reproducible
across worker partitionings), seed-matrix probabilities must stay
normalized through the RecVec/NSKG arithmetic, and the high-precision
``Decimal`` path must never silently mix with float math.  ``reprolint``
machine-checks those invariants on every commit with a small AST-based
checker framework (:mod:`~repro.devtools.framework`), six project
checkers (:mod:`~repro.devtools.checkers`), text/JSON reporters
(:mod:`~repro.devtools.reporters`), and a CLI
(``python -m repro.devtools.lint`` / ``trilliong-lint``).

See ``docs/static_analysis.md`` for the checker catalogue and the pragma
syntax for suppressions.
"""

from .framework import (Checker, LintConfig, SourceFile, Violation,
                        all_checkers, lint_file, lint_paths,
                        register_checker)

__all__ = [
    "Checker",
    "LintConfig",
    "SourceFile",
    "Violation",
    "all_checkers",
    "lint_file",
    "lint_paths",
    "register_checker",
]
