"""``reprolint`` — project-specific static analysis for the TrillionG repo.

The Python type system cannot see the invariants this codebase lives and
dies by: every random draw must flow through the ``SeedSequence``-keyed
streams of :mod:`repro.core.rng` (or graphs stop being bit-reproducible
across worker partitionings), seed-matrix probabilities must stay
normalized through the RecVec/NSKG arithmetic, and the high-precision
``Decimal`` path must never silently mix with float math.  ``reprolint``
machine-checks those invariants on every commit.

Two layers of rules:

- the syntactic checkers (:mod:`~repro.devtools.checkers`) — one
  :class:`ast.NodeVisitor` per file;
- the v2 analysis engine (:mod:`~repro.devtools.engine`) — per-function
  control-flow graphs with a forward dataflow framework (RNG-stream
  flow, atomic-write protocol, resource lifecycle, and the RPL8xx
  numeric dtype/interval abstract interpretation for scale soundness)
  and a whole-program project model (call-graph layering, dead-pragma
  detection, cross-module numeric-interface checks), with an
  incremental cache keyed on content + config + engine version.

Reporters live in :mod:`~repro.devtools.reporters`; the CLI is
``python -m repro.devtools.lint`` / ``trilliong-lint``.  See
``docs/static_analysis.md`` for the rule catalogue, pragma syntax, and
cache semantics.
"""

from .framework import (Checker, LintConfig, ProjectChecker, SourceFile,
                        Violation, all_checkers, all_project_checkers,
                        lint_file, lint_paths, register_checker,
                        register_project_checker, relaxed_profile)

__all__ = [
    "Checker",
    "LintConfig",
    "ProjectChecker",
    "SourceFile",
    "Violation",
    "all_checkers",
    "all_project_checkers",
    "lint_file",
    "lint_paths",
    "register_checker",
    "register_project_checker",
    "relaxed_profile",
]
