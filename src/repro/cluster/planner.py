"""Capacity planning on top of the cost model.

Answers the practical questions the paper's evaluation implies: *what is
the largest graph this cluster can generate with each method*, and *what
cluster does a target scale need*.  Used by tests to assert the paper's
capacity statements (e.g. RMAT/p-mem tops out at scale 28 on the paper's
cluster; TrillionG is disk-bound, not memory-bound).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from .costmodel import CostEstimate, CostModel
from .hardware import PAPER_CLUSTER, ClusterHardware

__all__ = ["CapacityReport", "max_feasible_scale", "capacity_report",
           "machines_needed"]

#: Method name -> CostModel method selector.
_METHODS: dict[str, Callable[[CostModel, int], CostEstimate]] = {
    "RMAT/p-mem": lambda m, s: m.wesp_mem(s),
    "RMAT/p-disk": lambda m, s: m.wesp_disk(s),
    "TrillionG (TSV)": lambda m, s: m.trilliong(s, "tsv"),
    "TrillionG (ADJ6)": lambda m, s: m.trilliong(s, "adj6"),
    "Graph500": lambda m, s: m.graph500(s),
}


def max_feasible_scale(model: CostModel, method: str,
                       time_budget_seconds: float | None = None,
                       scale_range: range = range(20, 45)) -> int | None:
    """Largest scale the method completes on the model's cluster.

    A scale is feasible when it does not OOM / exceed disk capacity and,
    if ``time_budget_seconds`` is given, finishes within it.  Returns
    None when even the smallest scale in range is infeasible.
    """
    try:
        estimate_fn = _METHODS[method]
    except KeyError:
        raise KeyError(f"unknown method {method!r}; available: "
                       f"{sorted(_METHODS)}") from None
    best = None
    for scale in scale_range:
        est = estimate_fn(model, scale)
        if est.oom:
            break
        if (time_budget_seconds is not None
                and est.elapsed_seconds > time_budget_seconds):
            break
        best = scale
    return best


@dataclass(frozen=True)
class CapacityReport:
    """Per-method capacity summary for one cluster."""

    cluster: ClusterHardware
    max_scales: dict[str, int | None]

    def winner(self) -> str:
        """Method reaching the largest scale (ties: alphabetical)."""
        feasible = {k: v for k, v in self.max_scales.items()
                    if v is not None}
        if not feasible:
            raise ValueError("no method is feasible on this cluster")
        top = max(feasible.values())
        return sorted(k for k, v in feasible.items() if v == top)[0]


def capacity_report(cluster: ClusterHardware = PAPER_CLUSTER,
                    time_budget_seconds: float | None = None
                    ) -> CapacityReport:
    """Max feasible scale of every method on ``cluster``."""
    model = CostModel(cluster)
    return CapacityReport(cluster, {
        name: max_feasible_scale(model, name, time_budget_seconds)
        for name in _METHODS
    })


def machines_needed(scale: int, method: str = "TrillionG (ADJ6)",
                    base: ClusterHardware = PAPER_CLUSTER,
                    time_budget_seconds: float | None = None,
                    max_machines: int = 4096) -> int | None:
    """Smallest machine count (paper-spec PCs) at which ``scale`` becomes
    feasible for ``method``; None if ``max_machines`` is not enough."""
    estimate_fn = _METHODS[method]
    machines = max(base.machines, 1)
    while machines <= max_machines:
        cluster = replace(base, machines=machines)
        est = estimate_fn(CostModel(cluster), scale)
        ok = not est.oom and (time_budget_seconds is None
                              or est.elapsed_seconds
                              <= time_budget_seconds)
        if ok:
            return machines
        machines *= 2
    return None
