"""Paper-scale experiment series from the cost model.

Each function returns the rows of one published figure, at the paper's own
scales, for EXPERIMENTS.md and the benchmark harness to print next to the
published values.
"""

from __future__ import annotations

from dataclasses import dataclass

from .costmodel import CostModel, CostEstimate
from .hardware import (PAPER_CLUSTER, PAPER_CLUSTER_IB, SINGLE_PC,
                       ClusterHardware)

__all__ = ["SeriesRow", "figure11a_series", "figure11b_series",
           "figure12_series", "figure14_series"]


@dataclass(frozen=True)
class SeriesRow:
    """One (model, scale) cell of a figure."""

    model: str
    scale: int
    elapsed_seconds: float        # inf == O.O.M
    peak_memory_bytes: float
    construction_ratio: float = 0.0

    @property
    def oom(self) -> bool:
        return self.elapsed_seconds == float("inf")

    def cell(self) -> str:
        return "O.O.M" if self.oom else f"{self.elapsed_seconds:.0f}"


def _row(est: CostEstimate, ratio: float = 0.0) -> SeriesRow:
    return SeriesRow(est.model, est.scale, est.elapsed_seconds,
                     est.peak_memory_bytes, ratio)


def figure11a_series(scales: range = range(20, 29)) -> list[SeriesRow]:
    """Single-thread comparison: RMAT-mem/disk, FastKronecker,
    TrillionG/seq (Figure 11(a))."""
    model = CostModel(SINGLE_PC)
    rows = []
    for scale in scales:
        rows.append(_row(model.rmat_mem(scale)))
        rows.append(_row(model.rmat_disk(scale)))
        rows.append(_row(model.fast_kronecker(scale)))
        rows.append(_row(model.trilliong_seq(scale)))
    return rows


def figure11b_series(scales: range = range(24, 32),
                     cluster: ClusterHardware = PAPER_CLUSTER
                     ) -> list[SeriesRow]:
    """Distributed comparison: RMAT/p-mem/disk vs TrillionG TSV/ADJ6
    (Figure 11(b))."""
    model = CostModel(cluster)
    rows = []
    for scale in scales:
        rows.append(_row(model.wesp_mem(scale)))
        rows.append(_row(model.wesp_disk(scale)))
        rows.append(_row(model.trilliong(scale, "tsv")))
        rows.append(_row(model.trilliong(scale, "adj6")))
    return rows


def figure12_series(scales: range = range(33, 39),
                    cluster: ClusterHardware = PAPER_CLUSTER
                    ) -> list[SeriesRow]:
    """TrillionG scalability: elapsed time and peak memory at scales
    33-38 (Figure 12)."""
    model = CostModel(cluster)
    return [_row(model.trilliong(scale, "adj6")) for scale in scales]


def figure14_series(scales: range = range(25, 31)) -> list[SeriesRow]:
    """TrillionG vs Graph500 on both networks (Figure 14).

    TrillionG uses no network during generation, so its 1GbE and
    InfiniBand rows coincide (as the paper notes).
    """
    rows = []
    m_1g = CostModel(PAPER_CLUSTER)
    m_ib = CostModel(PAPER_CLUSTER_IB)
    for scale in scales:
        tg = m_1g.trilliong_nskg_csr(scale)
        rows.append(SeriesRow("TrillionG-1G", scale, tg.elapsed_seconds,
                              tg.peak_memory_bytes,
                              CostModel.construction_ratio(tg)))
        rows.append(SeriesRow("TrillionG-IB", scale, tg.elapsed_seconds,
                              tg.peak_memory_bytes,
                              CostModel.construction_ratio(tg)))
        g1 = m_1g.graph500(scale)
        rows.append(SeriesRow("Graph500-1G", scale, g1.elapsed_seconds,
                              g1.peak_memory_bytes,
                              CostModel.construction_ratio(g1)))
        gib = m_ib.graph500(scale)
        rows.append(SeriesRow("Graph500-IB", scale, gib.elapsed_seconds,
                              gib.peak_memory_bytes,
                              CostModel.construction_ratio(gib)))
    return rows
