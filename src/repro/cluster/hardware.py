"""Hardware specifications for the cluster cost model.

The paper's testbed: 1 master + 10 slave PCs, each with a six-core 3.5 GHz
CPU, 32 GB RAM and a 4 TB HDD, connected by 1 GbE (default) or 100 Gb/s
InfiniBand EDR (the Graph500 comparison).  These dataclasses describe that
hardware; :mod:`repro.cluster.costmodel` prices generator runs against it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NetworkSpec", "MachineSpec", "ClusterHardware",
           "GIGABIT_ETHERNET", "INFINIBAND_EDR", "PAPER_PC",
           "PAPER_CLUSTER", "PAPER_CLUSTER_IB", "SINGLE_PC"]

GiB = 1024 ** 3
TB = 10 ** 12


@dataclass(frozen=True)
class NetworkSpec:
    """An interconnect, by effective point-to-point bandwidth."""

    name: str
    bandwidth_bytes_per_sec: float


#: 1 Gb/s Ethernet at ~125 MB/s line rate.
GIGABIT_ETHERNET = NetworkSpec("1GbE", 125e6)

#: 100 Gb/s InfiniBand EDR at ~12.5 GB/s line rate.
INFINIBAND_EDR = NetworkSpec("InfiniBand-EDR", 12.5e9)


@dataclass(frozen=True)
class MachineSpec:
    """One worker PC."""

    cores: int = 6
    cpu_ghz: float = 3.5
    memory_bytes: int = 32 * GiB
    disk_bytes: int = 4 * TB
    disk_write_bytes_per_sec: float = 110e6   # commodity HDD sequential
    disk_read_bytes_per_sec: float = 110e6


#: The paper's slave PC.
PAPER_PC = MachineSpec()


@dataclass(frozen=True)
class ClusterHardware:
    """A homogeneous cluster."""

    machines: int
    machine: MachineSpec
    network: NetworkSpec
    threads_per_machine: int = 6

    @property
    def total_threads(self) -> int:
        return self.machines * self.threads_per_machine

    @property
    def total_memory_bytes(self) -> int:
        return self.machines * self.machine.memory_bytes

    @property
    def total_disk_bytes(self) -> int:
        return self.machines * self.machine.disk_bytes

    @property
    def aggregate_disk_write(self) -> float:
        return self.machines * self.machine.disk_write_bytes_per_sec

    def with_network(self, network: NetworkSpec) -> "ClusterHardware":
        return replace(self, network=network)


#: The paper's default cluster: 10 slaves on 1 GbE, 6 threads each.
PAPER_CLUSTER = ClusterHardware(machines=10, machine=PAPER_PC,
                                network=GIGABIT_ETHERNET)

#: The same cluster on InfiniBand (Appendix D's Graph500 setting).
PAPER_CLUSTER_IB = PAPER_CLUSTER.with_network(INFINIBAND_EDR)

#: A single PC (the Figure 11(a) single-thread experiments).
SINGLE_PC = ClusterHardware(machines=1, machine=PAPER_PC,
                            network=GIGABIT_ETHERNET,
                            threads_per_machine=1)
