"""Cluster cost model: the paper-scale substitute for the 10-PC testbed."""

from .costmodel import OOM, CostEstimate, CostModel, single_pc_model
from .hardware import (GIGABIT_ETHERNET, INFINIBAND_EDR, PAPER_CLUSTER,
                       PAPER_CLUSTER_IB, PAPER_PC, SINGLE_PC,
                       ClusterHardware, MachineSpec, NetworkSpec)
from .planner import (CapacityReport, capacity_report,
                      machines_needed, max_feasible_scale)
from .simulate import (SeriesRow, figure11a_series, figure11b_series,
                       figure12_series, figure14_series)

__all__ = [
    "OOM", "CostEstimate", "CostModel", "single_pc_model",
    "GIGABIT_ETHERNET", "INFINIBAND_EDR", "PAPER_CLUSTER",
    "PAPER_CLUSTER_IB", "PAPER_PC", "SINGLE_PC", "ClusterHardware",
    "MachineSpec", "NetworkSpec", "SeriesRow", "figure11a_series",
    "figure11b_series", "figure12_series", "figure14_series",
    "CapacityReport", "capacity_report", "machines_needed",
    "max_feasible_scale",
]
