"""Analytic cost model of the paper's testbed — the paper-scale substitute.

A pure-Python run cannot generate scale-31..38 graphs in this environment,
so the paper-scale series of Figures 11, 12 and 14 are produced by pricing
each generator's work against the Table 1 complexity terms with constants
calibrated to the paper's published measurements:

====================  =======================================================
Constant              Calibration source
====================  =======================================================
``T_RECURSION``       RMAT-mem, Fig. 11(a): ~5.5e6 quadrant selections/s
                      (time = |E| * log|V| * t_rec fits scales 20-25)
``T_RECURSION_FK``    FastKronecker, Fig. 11(a) (more efficient impl.)
``T_EDGE_AVS``        TrillionG/seq, Fig. 11(a): ~2.4M edges/s/thread,
                      linear in |E| (Ideas #1-#3 remove the log|V| factor
                      in practice)
``T_SORT``            RMAT-disk vs RMAT-mem gap, Fig. 11(a): external sort
                      at ~|E| log2|E| * 7e-8 s
``BYTES_*``           ADJ6 = 6-byte ids (Sec. 5); TSV ~13 B/edge at these
                      scales (measured TrillionG TSV/ADJ6 gap, Fig. 11(b));
                      in-memory edge sets at ~40 B/edge (JVM objects; fits
                      the paper's O.O.M. points exactly)
``WESP_*``            RMAT/p curves, Fig. 11(b): fixed job overhead plus a
                      shuffle-skew factor that grows with scale
``MEM_AVS``           Fig. 12(b): peak = ~8 bytes * dmax,
                      dmax = 16 * (alpha+beta)^scale * 2^scale, which
                      reproduces the published 122 MB..992 MB series
====================  =======================================================

The model is validated two ways: small-scale measured runs must match its
predictions in *shape* (tests), and the EXPERIMENTS.md tables compare its
paper-scale output against the published figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.seed import GRAPH500, SeedMatrix
from .hardware import (PAPER_CLUSTER, SINGLE_PC, ClusterHardware)

__all__ = ["CostEstimate", "CostModel", "OOM", "single_pc_model"]

# -- calibrated constants (seconds per unit) --------------------------------

T_RECURSION = 1.8e-7        # one RMAT quadrant selection + bookkeeping
T_RECURSION_FK = 1.1e-7     # FastKronecker's tighter inner loop
T_EDGE_AVS = 4.2e-7         # one TrillionG edge (RecVec search + store)
T_EDGE_AVS_NOIDEAS = 8.4e-6  # reference loop with all three Ideas off
T_SORT = 7.0e-8             # external-sort work per key-comparison unit
T_CELL_AES = 2.0e-9         # one AES cell Bernoulli test (vectorized C)

BYTES_ADJ6 = 6.6            # 6-byte ids + record headers, amortized
BYTES_TSV = 13.0            # decimal text ids + separators at scale ~30
BYTES_CSR6 = 6.2            # ids + amortized index
BYTES_EDGE_MEM = 40.0       # JVM in-memory edge-set footprint
BYTES_EDGE_WIRE = 16.0      # serialized edge on the network

WESP_FIXED_OVERHEAD = 90.0  # per-job scheduling/JVM startup (Spark)
AVS_FIXED = 5.0             # TrillionG job startup

# Graph500 reference-code constants (calibrated to the Appendix D curves).
T_RECURSION_G500 = 3.0e-8   # tuned C inner loop, per quadrant selection
T_CONVERT_G500 = 5.6e-7     # CSR conversion work per edge
BYTES_G500_MEM = 32.0       # C structs: edge list + CSR resident together
#: Effective wire bytes per edge during Graph500's construction.  The
#: exchange is many small messages, so goodput on 1 GbE is ~1% of line
#: rate; expressing that as inflated per-edge bytes reproduces the
#: measured 1GbE/InfiniBand gap (Figure 14).
BYTES_G500_WIRE = 1500.0
#: TrillionG's construction share (CSR6 conversion while writing), ~6-7%
#: of generation per the paper's Figure 14(b).
AVS_CONSTRUCT_FRACTION = 0.07

#: Sentinel elapsed value for an out-of-memory outcome.
OOM = float("inf")


@dataclass(frozen=True)
class CostEstimate:
    """Predicted outcome of one generation run."""

    model: str
    scale: int
    elapsed_seconds: float
    peak_memory_bytes: float
    phase_seconds: dict[str, float]

    @property
    def oom(self) -> bool:
        return math.isinf(self.elapsed_seconds)


class CostModel:
    """Prices generator runs on a :class:`ClusterHardware`."""

    def __init__(self, cluster: ClusterHardware = PAPER_CLUSTER,
                 seed_matrix: SeedMatrix = GRAPH500,
                 edge_factor: int = 16) -> None:
        self.cluster = cluster
        self.seed_matrix = seed_matrix
        self.edge_factor = edge_factor

    # -- workload helpers ---------------------------------------------------

    def num_edges(self, scale: int) -> float:
        return float(self.edge_factor) * 2.0 ** scale

    def dmax(self, scale: int) -> float:
        """Expected maximum scope size: the hub's expected degree,
        ``|E| * (alpha+beta)^scale`` (Lemma 1 for u = 0)."""
        ab = self.seed_matrix.alpha + self.seed_matrix.beta
        return self.num_edges(scale) * ab ** scale

    def _estimate(self, model: str, scale: int, peak: float,
                  phases: dict[str, float]) -> CostEstimate:
        budget = self.cluster.machine.memory_bytes
        if peak > budget:
            return CostEstimate(model, scale, OOM, peak, {})
        return CostEstimate(model, scale, sum(phases.values()), peak,
                            phases)

    # -- single-thread models (Figure 11(a)) --------------------------------

    def rmat_mem(self, scale: int) -> CostEstimate:
        e = self.num_edges(scale)
        peak = e * BYTES_EDGE_MEM
        gen = e * scale * T_RECURSION
        return self._estimate("RMAT-mem", scale, peak, {"generate": gen})

    def rmat_disk(self, scale: int) -> CostEstimate:
        e = self.num_edges(scale)
        disk = self.cluster.machine
        gen = e * scale * T_RECURSION
        sort_cpu = e * math.log2(max(e, 2)) * T_SORT
        # spill + merge: two sequential passes over the serialized edges
        io = 2 * e * BYTES_EDGE_WIRE / disk.disk_write_bytes_per_sec
        return CostEstimate("RMAT-disk", scale, gen + sort_cpu + io,
                            16.0 * 2 ** 18 * BYTES_EDGE_MEM,
                            {"generate": gen, "external_sort": sort_cpu,
                             "io": io})

    def fast_kronecker(self, scale: int) -> CostEstimate:
        e = self.num_edges(scale)
        peak = e * BYTES_EDGE_MEM
        gen = e * scale * T_RECURSION_FK
        return self._estimate("FastKronecker", scale, peak,
                              {"generate": gen})

    def kronecker_aes(self, scale: int) -> CostEstimate:
        cells = (2.0 ** scale) ** 2
        gen = cells * T_CELL_AES
        return CostEstimate("Kronecker-AES", scale, gen, 1 << 20,
                            {"generate": gen})

    def trilliong_seq(self, scale: int, fmt: str = "adj6",
                      ideas_on: bool = True) -> CostEstimate:
        e = self.num_edges(scale)
        disk = self.cluster.machine
        t_edge = T_EDGE_AVS if ideas_on else T_EDGE_AVS_NOIDEAS
        cpu = e * t_edge
        out_bytes = e * _format_bytes(fmt)
        io = out_bytes / disk.disk_write_bytes_per_sec
        peak = 8.0 * self.dmax(scale)
        # CPU and the streaming write overlap; the run is bound by the max.
        elapsed = max(cpu, io) + AVS_FIXED
        return CostEstimate("TrillionG/seq", scale, elapsed, peak,
                            {"generate": cpu, "io": io,
                             "fixed": AVS_FIXED})

    # -- distributed models (Figure 11(b), 12, 14) --------------------------

    def trilliong(self, scale: int, fmt: str = "adj6") -> CostEstimate:
        e = self.num_edges(scale)
        threads = self.cluster.total_threads
        cpu = e * T_EDGE_AVS / threads
        out_bytes = e * _format_bytes(fmt)
        io = out_bytes / self.cluster.aggregate_disk_write
        peak = 8.0 * self.dmax(scale)
        total_out = out_bytes
        if total_out > self.cluster.total_disk_bytes:
            return CostEstimate(f"TrillionG ({fmt.upper()})", scale, OOM,
                                peak, {})
        elapsed = max(cpu, io) + AVS_FIXED
        return CostEstimate(f"TrillionG ({fmt.upper()})", scale, elapsed,
                            peak, {"generate": cpu, "io": io,
                                   "fixed": AVS_FIXED})

    def _wesp_common(self, scale: int) -> tuple[float, float, float, float]:
        e = self.num_edges(scale)
        threads = self.cluster.total_threads
        machines = self.cluster.machines
        gen = e * scale * T_RECURSION / threads
        # Every edge crosses the wire once; (M-1)/M of them leave their
        # machine; all machines send concurrently.
        wire_bytes = e * BYTES_EDGE_WIRE * (machines - 1) / machines
        shuffle = (wire_bytes / machines
                   / self.cluster.network.bandwidth_bytes_per_sec)
        # Shuffle skew grows with scale (hub rows concentrate); the paper
        # reports one machine ending up with "too many edges to merge".
        # The growth rate is set so RMAT/p-mem's last working scale is 28,
        # as published.
        skew = 1.0 + 0.15 * max(scale - 24, 0)
        return e, gen, shuffle, skew

    def wesp_mem(self, scale: int) -> CostEstimate:
        e, gen, shuffle, skew = self._wesp_common(scale)
        machines = self.cluster.machines
        partition = e / machines * skew
        peak = partition * BYTES_EDGE_MEM
        if peak > self.cluster.machine.memory_bytes:
            return CostEstimate("RMAT/p-mem", scale, OOM, peak, {})
        merge = partition * math.log2(max(partition, 2)) * T_SORT
        phases = {"generate": gen, "shuffle": shuffle, "merge": merge,
                  "fixed": WESP_FIXED_OVERHEAD}
        return CostEstimate("RMAT/p-mem", scale, sum(phases.values()),
                            peak, phases)

    def wesp_disk(self, scale: int) -> CostEstimate:
        e, gen, shuffle, skew = self._wesp_common(scale)
        machines = self.cluster.machines
        partition = e / machines * skew
        disk = self.cluster.machine
        # The external sort spills the partition twice (runs + merged
        # output) on the machine's local disk.
        spill_bytes = 2 * partition * BYTES_EDGE_WIRE
        if spill_bytes > disk.disk_bytes:
            return CostEstimate("RMAT/p-disk", scale, OOM, spill_bytes,
                                {})
        merge_cpu = partition * math.log2(max(partition, 2)) * T_SORT
        merge_io = (2 * partition * BYTES_EDGE_WIRE
                    / disk.disk_write_bytes_per_sec)
        phases = {"generate": gen, "shuffle": shuffle,
                  "merge": merge_cpu + merge_io,
                  "fixed": WESP_FIXED_OVERHEAD}
        return CostEstimate("RMAT/p-disk", scale, sum(phases.values()),
                            16.0 * 2 ** 18 * BYTES_EDGE_MEM, phases)

    def graph500(self, scale: int) -> CostEstimate:
        """The Graph500 reference: in-memory NSKG generation + scramble +
        CSR construction.

        Construction has two costs: a fine-grained all-to-all exchange
        (``BYTES_G500_WIRE`` effective bytes/edge — latency-bound small
        messages, hence the huge 1GbE/InfiniBand gap) and a CSR conversion
        whose effective rate degrades as the resident working set
        approaches RAM (the ``pressure`` multiplier).  Together these put
        construction above 90% of the runtime at scale 29 on 1GbE, as in
        Figure 14(b), and OOM the job past scale 30.
        """
        e = self.num_edges(scale)
        threads = self.cluster.total_threads
        machines = self.cluster.machines
        peak = e / machines * BYTES_G500_MEM
        budget = self.cluster.machine.memory_bytes
        if peak > budget:
            return CostEstimate("Graph500", scale, OOM, peak, {})
        gen = e * scale * T_RECURSION_G500 / threads
        wire_bytes = e * BYTES_G500_WIRE * (machines - 1) / max(machines, 1)
        wire = (wire_bytes / machines
                / self.cluster.network.bandwidth_bytes_per_sec)
        pressure = min(1.0 / (1.0 - peak / budget), 20.0)
        convert = e * T_CONVERT_G500 / threads * pressure
        phases = {"generate": gen, "construct": wire + convert}
        return CostEstimate("Graph500", scale, sum(phases.values()),
                            peak, phases)

    def trilliong_nskg_csr(self, scale: int) -> CostEstimate:
        """TrillionG's side of the Graph500 comparison: NSKG + CSR6 output
        (noise costs ~nothing; construction is the streaming CSR
        conversion, a fixed small fraction of generation)."""
        est = self.trilliong(scale, fmt="csr6")
        construct = est.elapsed_seconds * AVS_CONSTRUCT_FRACTION
        # Generation and I/O overlap (the elapsed figure is their max), so
        # the phase map records the overlapped total to keep
        # construction_ratio's denominator equal to wall time.
        phases = {"generate": est.elapsed_seconds, "construct": construct}
        return CostEstimate("TrillionG", scale,
                            est.elapsed_seconds + construct,
                            est.peak_memory_bytes, phases)

    @staticmethod
    def construction_ratio(estimate: CostEstimate) -> float:
        """Fraction of the run spent in construction (Figure 14(b))."""
        total = sum(estimate.phase_seconds.values())
        if total == 0:
            return 0.0
        return estimate.phase_seconds.get("construct", 0.0) / total


def _format_bytes(fmt: str) -> float:
    return {"adj6": BYTES_ADJ6, "tsv": BYTES_TSV,
            "csr6": BYTES_CSR6}[fmt.lower()]


def single_pc_model(seed_matrix: SeedMatrix = GRAPH500,
                    edge_factor: int = 16) -> CostModel:
    """Cost model for the Figure 11(a) single-thread setting."""
    return CostModel(SINGLE_PC, seed_matrix, edge_factor)
