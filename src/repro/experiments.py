"""Programmatic experiment harness: regenerate any paper figure/table.

The benchmark files under ``benchmarks/`` assert the paper's shape claims;
this module exposes the same experiments as plain functions returning row
dicts, so users can regenerate any figure from a notebook or the CLI
(``trilliong experiment --id fig9``) and get the data, not a pass/fail.

Measured experiments run at reduced scales on the local machine;
paper-scale experiments come from the calibrated cost model
(:mod:`repro.cluster`).  Each function documents which.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .analysis import (fit_gaussian, fit_kronecker_class_slope,
                       loglog_plot_distance, oscillation_score,
                       out_degrees)
from .cluster import (figure11a_series, figure11b_series, figure12_series,
                      figure14_series)
from .core.generator import IdeaToggles, RecursiveVectorGenerator
from .core.seed import UNIFORM
from .models import (FastKroneckerGenerator, Graph500Generator,
                     RmatDiskGenerator, RmatMemGenerator, TegGenerator,
                     TrillionGSeqGenerator)
from .rich_graph import (RichGraphGenerator, bibliographical_config,
                         seed_for_in_slope, seed_for_out_slope)

__all__ = ["EXPERIMENTS", "run_experiment", "available_experiments",
           "table2_rows", "table3_rows", "figure8_rows", "figure9_rows",
           "figure10_rows", "figure11a_measured_rows", "figure13_rows",
           "figure14_measured_rows"]

Rows = list[dict]


def table2_rows(scale: int = 12) -> Rows:
    """Table 2 (measured): search-structure sizes at ``scale``."""
    from .core.probability import brute_force_cdf
    from .core.recvec import build_recvec
    from .core.seed import GRAPH500
    cdf = brute_force_cdf(GRAPH500, 5, scale)
    recvec = build_recvec(GRAPH500, 5, scale)
    return [
        {"structure": "CDF vector", "search": "linear",
         "time": "O(|V|)", "entries": int(cdf.size),
         "bytes": int(cdf.nbytes)},
        {"structure": "CDF vector", "search": "binary",
         "time": "O(log |V|)", "entries": int(cdf.size),
         "bytes": int(cdf.nbytes)},
        {"structure": "RecVec", "search": "binary",
         "time": "O(log |V|)", "entries": int(recvec.size),
         "bytes": int(recvec.nbytes)},
    ]


def table3_rows(scale: int = 13, seed: int = 1) -> Rows:
    """Table 3 (measured): predicted vs measured distribution control."""
    rows = []
    for slope in (-1.0, -1.662, -2.2):
        matrix = seed_for_out_slope(slope)
        g = RecursiveVectorGenerator(scale, 16, matrix, seed=seed,
                                     engine="bitwise")
        measured = fit_kronecker_class_slope(
            out_degrees(g.edges(), g.num_vertices))
        rows.append({"seed": f"Kout zipf({slope})", "predicted": slope,
                     "measured": round(measured, 3)})
    g = RecursiveVectorGenerator(scale, 16, UNIFORM, seed=seed,
                                 engine="bitwise")
    fit = fit_gaussian(out_degrees(g.edges(), g.num_vertices))
    rows.append({"seed": "uniform (Gaussian)", "predicted": 16.0,
                 "measured": round(fit.mean, 2)})
    return rows


def figure8_rows(scale: int = 14, edge_factor: int = 16) -> Rows:
    """Figure 8 (measured): per-generator degree-plot summaries."""
    n = 1 << scale
    series = {}
    for cls, seed in ((RmatMemGenerator, 10), (FastKroneckerGenerator, 20),
                      (TrillionGSeqGenerator, 30), (TegGenerator, 40)):
        g = cls(scale, edge_factor, seed=seed)
        series[cls.name] = out_degrees(g.generate(), n)
    reference = series["RMAT-mem"]
    rows = []
    for name, degs in series.items():
        dist, common = loglog_plot_distance(reference, degs)
        rows.append({"generator": name, "edges": int(degs.sum()),
                     "d_max": int(degs.max()),
                     "plot_distance_vs_rmat": round(dist, 3),
                     "comparable_degrees": common})
    return rows


def figure9_rows(scale: int = 15, seeds: tuple = (1, 2, 3)) -> Rows:
    """Figure 9 (measured): oscillation vs noise, mean over seeds."""
    rows = []
    for noise in (0.0, 0.05, 0.1):
        scores = []
        for seed in seeds:
            g = RecursiveVectorGenerator(scale, 16, seed=seed,
                                         noise=noise, engine="bitwise")
            scores.append(oscillation_score(
                out_degrees(g.edges(), g.num_vertices)))
        rows.append({"noise": noise,
                     "oscillation": round(float(np.mean(scores)), 4)})
    return rows


def figure10_rows(num_vertices: int = 1 << 14, seed: int = 21) -> Rows:
    """Figure 10 (measured): the author rectangle's two marginals."""
    config = bibliographical_config(num_vertices)
    author = RichGraphGenerator(config, seed=seed).generate_rule(0)
    src_lo, src_hi = config.vertex_range("researcher")
    dst_lo, dst_hi = config.vertex_range("paper")
    out_deg = np.bincount(author.edges[:, 0] - src_lo,
                          minlength=src_hi - src_lo)
    in_deg = np.bincount(author.edges[:, 1] - dst_lo,
                         minlength=dst_hi - dst_lo)
    in_fit = fit_gaussian(in_deg)
    return [
        {"side": "out (researcher)", "requested": "zipfian(-1.662)",
         "measured": f"slope "
                     f"{fit_kronecker_class_slope(out_deg):.3f}"},
        {"side": "in (paper)", "requested": "gaussian",
         "measured": f"mean {in_fit.mean:.2f} std {in_fit.std:.2f} "
                     f"kurtosis {in_fit.excess_kurtosis:.2f}"},
    ]


def figure11a_measured_rows(scales: tuple = (12, 13, 14)) -> Rows:
    """Figure 11(a) (measured, reduced scales): wall seconds."""
    rows = []
    for cls in (RmatMemGenerator, RmatDiskGenerator,
                FastKroneckerGenerator, TrillionGSeqGenerator):
        row: dict = {"model": cls.name}
        for scale in scales:
            g = cls(scale, 16, seed=7)
            t0 = time.perf_counter()
            g.generate()
            row[f"scale{scale}"] = round(time.perf_counter() - t0, 3)
        rows.append(row)
    return rows


def figure13_rows(scale: int = 11, edge_factor: int = 8) -> Rows:
    """Figure 13 (measured): idea ablation times and work counters."""
    rows = []
    for i1 in (False, True):
        for i2 in (False, True):
            for i3 in (False, True):
                g = RecursiveVectorGenerator(
                    scale, edge_factor, seed=13, engine="reference",
                    ideas=IdeaToggles(i1, i2, i3))
                t0 = time.perf_counter()
                g.edges()
                rows.append({
                    "idea1": i1, "idea2": i2, "idea3": i3,
                    "seconds": round(time.perf_counter() - t0, 3),
                    "recursions": g.stats.recursion_steps,
                    "draws": g.stats.random_draws,
                    "recvec_builds": g.stats.recvec_builds,
                })
    return rows


def figure14_measured_rows(scale: int = 13) -> Rows:
    """Figure 14 (measured): the Graph500-model pipeline's phases."""
    g = Graph500Generator(scale, 16, seed=2)
    g.generate()
    rows = [{"phase": k, "seconds": round(v, 4)}
            for k, v in g.report.phase_seconds.items()]
    rows.append({"phase": "construction_ratio",
                 "seconds": round(g.construction_overhead_ratio(), 4)})
    return rows


def _series_rows(series) -> Rows:
    return [{"model": r.model, "scale": r.scale, "elapsed": r.cell(),
             "peak_mem_MB": round(r.peak_memory_bytes / 2**20),
             "construction_ratio": round(r.construction_ratio, 3)}
            for r in series]


#: Registry: experiment id -> (description, callable).
EXPERIMENTS: dict[str, tuple[str, Callable[[], Rows]]] = {
    "table2": ("CDF vector vs RecVec (measured)", table2_rows),
    "table3": ("seed params vs distributions (measured)", table3_rows),
    "fig8": ("degree plots of four generators (measured)", figure8_rows),
    "fig9": ("NSKG oscillation vs noise (measured)", figure9_rows),
    "fig10": ("ERV rich-graph marginals (measured)", figure10_rows),
    "fig11a-measured": ("single-thread wall times (measured, reduced "
                        "scales)", figure11a_measured_rows),
    "fig11a": ("single-thread comparison (cost model, paper scales)",
               lambda: _series_rows(figure11a_series())),
    "fig11b": ("distributed comparison (cost model, paper scales)",
               lambda: _series_rows(figure11b_series())),
    "fig12": ("TrillionG scalability (cost model, paper scales)",
              lambda: _series_rows(figure12_series())),
    "fig13": ("idea ablation (measured)", figure13_rows),
    "fig14-measured": ("Graph500 pipeline phases (measured)",
                       figure14_measured_rows),
    "fig14": ("TrillionG vs Graph500 (cost model, paper scales)",
              lambda: _series_rows(figure14_series())),
}


def available_experiments() -> list[str]:
    return sorted(EXPERIMENTS)


def run_experiment(experiment_id: str) -> Rows:
    """Run one experiment by id and return its rows."""
    try:
        _, fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{available_experiments()}") from None
    return fn()
