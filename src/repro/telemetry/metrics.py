"""Metrics: counters, gauges, and fixed-bucket histograms.

The registry is the cheap always-on half of the telemetry layer: an
instrument is one dict lookup to obtain (callers cache the handle on hot
paths) and one lock-protected float add to update — instruments are
shared between the producer and the pipeline's background writer
thread, so updates must not be lost to thread switches.  When telemetry
is disabled
(``TRILLIONG_TELEMETRY=0``) :func:`registry` returns a no-op registry
whose instruments discard every update, so instrumented code pays a
single attribute call and nothing else.

Snapshots are plain JSON-able dicts, and :func:`merge_metrics` is
associative and commutative (counters add, max/min gauges take the
extremum, histograms add bucket-wise), so per-worker snapshots can be
merged in any order into one coherent report — the property the
cross-process aggregation in :mod:`repro.dist.faults` relies on.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Iterable, Mapping, Sequence

__all__ = [
    "ENV_VAR",
    "telemetry_enabled",
    "enable_telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "registry",
    "global_registry",
    "reset_metrics",
    "merge_metrics",
    "POW2_BUCKETS",
    "RECURSION_BUCKETS",
]

#: Environment variable switching telemetry off (``0/false/no/off``).
#: Telemetry is *on* by default — the instruments are cheap enough to
#: leave enabled; the variable is the escape hatch, not the opt-in.
ENV_VAR = "TRILLIONG_TELEMETRY"

_FALSY = frozenset({"0", "false", "no", "off"})

#: Programmatic override: ``None`` defers to the environment.
_override: bool | None = None

#: Power-of-two bucket bounds shared by the size-shaped histograms
#: (scope sizes, degrees): 1, 2, 4, ... 2^48 (the 6-byte id ceiling).
POW2_BUCKETS: tuple[float, ...] = tuple(float(1 << k) for k in range(49))

#: Linear bucket bounds for small per-edge counts (recursions per edge:
#: one recursion per 1-bit of the destination, so at most ``scale`` and
#: the generator caps scale at 56).
RECURSION_BUCKETS: tuple[float, ...] = tuple(float(k) for k in range(57))


def telemetry_enabled() -> bool:
    """Whether instruments record (override, else env var, default on)."""
    if _override is not None:
        return _override
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def enable_telemetry(on: bool | None) -> None:
    """Force telemetry on/off; ``None`` defers back to ``ENV_VAR``."""
    global _override
    _override = on


class Counter:
    """A monotonically increasing float; merge adds.

    Updates are lock-protected: the pipeline's background writer thread
    and the producer share instruments (e.g. ``format.bytes_written``),
    and an unguarded ``+=`` is a read-modify-write that loses updates
    under thread switches.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value with a merge mode.

    ``mode`` decides cross-snapshot (and cross-process) semantics:
    ``"max"``/``"min"`` keep the extremum — the right call for
    high-water marks, and associative so merges commute — while
    ``"last"`` simply overwrites (use only for values where any one
    process's reading is as good as another's).
    """

    __slots__ = ("value", "mode", "_lock")

    _MODES = ("last", "max", "min")

    def __init__(self, mode: str = "last") -> None:
        if mode not in self._MODES:
            raise ValueError(f"unknown gauge mode {mode!r}")
        self.value = 0.0
        self.mode = mode
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            if self.mode == "max":
                if value > self.value:
                    self.value = value
            elif self.mode == "min":
                if value < self.value:
                    self.value = value
            else:
                self.value = value

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "gauge", "value": self.value,
                    "mode": self.mode}


class Histogram:
    """Fixed-bucket histogram: counts per upper bound plus an overflow
    bucket, with running sum and count (Prometheus-compatible shape).

    ``bounds`` are inclusive upper bounds in increasing order; a value
    lands in the first bucket whose bound is ``>= value``.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_lock")

    def __init__(self, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("histogram bounds must strictly increase")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        with self._lock:
            self.counts[bisect.bisect_left(self.bounds, value)] += count
            self.sum += value * count
            self.count += count

    def observe_bulk(self, values: Iterable[float],
                     counts: Iterable[int]) -> None:
        """Record pre-aggregated ``(value, count)`` pairs.

        The bulk surface keeps the registry numpy-free while letting hot
        callers aggregate with vectorized code first (e.g. a
        ``np.bincount`` over a block) and hand over only the few distinct
        values.
        """
        for value, count in zip(values, counts):
            if count:
                self.observe(float(value), int(count))

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "histogram", "bounds": list(self.bounds),
                    "counts": list(self.counts), "sum": self.sum,
                    "count": self.count}


class MetricsRegistry:
    """Name -> instrument table.

    Accessors create on first use and are idempotent; hot paths should
    cache the returned instrument.  ``enabled`` is True so instrumented
    code can guard optional, more expensive aggregation work with
    ``if reg.enabled:``.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        inst = self._instruments.get(name)
        if inst is None or not isinstance(inst, Counter):
            inst = self._register(name, Counter, lambda: Counter())
        return inst  # type: ignore[return-value]

    def gauge(self, name: str, mode: str = "last") -> Gauge:
        inst = self._instruments.get(name)
        if inst is None or not isinstance(inst, Gauge):
            inst = self._register(name, Gauge, lambda: Gauge(mode))
        return inst  # type: ignore[return-value]

    def histogram(self, name: str,
                  bounds: Sequence[float] = POW2_BUCKETS) -> Histogram:
        inst = self._instruments.get(name)
        if inst is None or not isinstance(inst, Histogram):
            inst = self._register(name, Histogram,
                                  lambda: Histogram(bounds))
        return inst  # type: ignore[return-value]

    def _register(self, name, expected_type, factory):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
        if not isinstance(inst, expected_type):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(inst).__name__}")
        return inst

    def snapshot(self) -> dict[str, dict]:
        """A JSON-able copy of every instrument, sorted by name."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.snapshot() for name, inst in items}

    def merge(self, snapshot: Mapping[str, dict]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this
        registry, following each metric's merge semantics."""
        for name, data in snapshot.items():
            kind = data.get("type")
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, data.get("mode", "last"))
                gauge.set(data["value"])
            elif kind == "histogram":
                hist = self.histogram(name, data["bounds"])
                _merge_histogram_into(hist, data)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()


def _merge_histogram_into(hist: Histogram, data: Mapping) -> None:
    if list(hist.bounds) != [float(b) for b in data["bounds"]]:
        raise ValueError("cannot merge histograms with different bounds")
    with hist._lock:
        for i, c in enumerate(data["counts"]):
            hist.counts[i] += c
        hist.sum += data["sum"]
        hist.count += data["count"]


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float, count: int = 1) -> None:
        return None

    def observe_bulk(self, values, counts) -> None:
        return None


class NullRegistry(MetricsRegistry):
    """The disabled registry: hands out shared no-op instruments."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter()
        self._gauge = _NullGauge()
        self._histogram = _NullHistogram((1.0,))

    def counter(self, name: str) -> Counter:
        return self._counter

    def gauge(self, name: str, mode: str = "last") -> Gauge:
        return self._gauge

    def histogram(self, name: str,
                  bounds: Sequence[float] = POW2_BUCKETS) -> Histogram:
        return self._histogram

    def merge(self, snapshot: Mapping[str, dict]) -> None:
        return None


#: The process-wide shared no-op registry.
NULL_REGISTRY = NullRegistry()

_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The live process-wide registry, regardless of the enable switch
    (exporters read it; instrumented code should use :func:`registry`)."""
    return _GLOBAL


def registry() -> MetricsRegistry:
    """The registry instrumented code should record into *right now*:
    the live global one, or the no-op registry when telemetry is off."""
    return _GLOBAL if telemetry_enabled() else NULL_REGISTRY


def reset_metrics() -> None:
    """Clear the global registry (worker-process entry, tests)."""
    _GLOBAL.reset()


def merge_metrics(*snapshots: Mapping[str, dict]) -> dict[str, dict]:
    """Pure merge of metric snapshots into a new snapshot dict.

    Associative and commutative for counters, max/min gauges, and
    histograms; ``"last"`` gauges take the right-most operand.
    """
    acc = MetricsRegistry()
    for snap in snapshots:
        acc.merge(snap)
    return acc.snapshot()
