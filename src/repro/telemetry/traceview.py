"""Chrome Trace Event Format export (Perfetto / chrome://tracing).

Renders a telemetry report — merged span trees, per-worker span trees,
and flight-recorder counter series — to the Trace Event JSON format, so
a run can be inspected on a zoomable timeline instead of as nested
count/seconds dicts.

The span trees are *aggregates* (PR 4): a node holds count and total
seconds, not individual begin/end timestamps.  The exporter therefore
lays out a **synthetic proportional timeline**: each root starts where
the previous root ended, and children are placed sequentially inside
their parent, each with ``dur = total_seconds``.  Horizontal extent is
faithful (a span twice as wide cost twice the wall time); horizontal
*position* is schematic.  docs/cookbook.md walks through reading one.

Track layout:

- ``tid 1`` — the supervisor/main process's merged span tree.
- ``tid 101 + task_index`` — one track per distributed worker report
  (the tagged snapshots collected by :func:`record_worker_report`), so
  per-worker skew is visible instead of vanishing into the merge.
- Flight samples become ``C`` (counter) events at their true elapsed
  time: RSS, I/O bytes, and every flattened metric series.

All events live in one synthetic process (``pid 1``) named after the
run.  Load the file with Perfetto (ui.perfetto.dev) or
``chrome://tracing``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Mapping, Sequence

__all__ = [
    "build_trace",
    "write_trace",
    "SUPERVISOR_TID",
    "WORKER_TID_BASE",
]

SUPERVISOR_TID = 1
WORKER_TID_BASE = 101

_PID = 1


def _meta(name: str, tid: int, value: str) -> dict:
    return {"ph": "M", "name": name, "pid": _PID, "tid": tid,
            "args": {"name": value}}


def _us(seconds: float) -> int:
    return max(0, int(round(seconds * 1e6)))


def _emit_tree(node: Mapping, ts_us: int, tid: int,
               events: list[dict]) -> int:
    """Emit one span node and its children; returns the node's end ts.

    Children are laid out sequentially from the parent's start.  A
    parent narrower than its children (possible after lossy merges of
    overlapping worker time) is widened to contain them, keeping the
    nesting visually well-formed.
    """
    child_ts = ts_us
    child_events: list[dict] = []
    for child in node.get("children", ()):
        child_ts = _emit_tree(child, child_ts, tid, child_events)
    dur = max(_us(float(node.get("total_seconds", 0.0))),
              child_ts - ts_us, 1)
    args: dict = {"count": node.get("count", 0),
                  "total_seconds": node.get("total_seconds", 0.0),
                  "exclusive_seconds": node.get("exclusive_seconds", 0.0)}
    attrs = node.get("attrs") or {}
    if attrs:
        args["attrs"] = {k: str(v) for k, v in attrs.items()}
    events.append({"ph": "X", "name": str(node.get("name", "?")),
                   "cat": "span", "pid": _PID, "tid": tid,
                   "ts": ts_us, "dur": dur, "args": args})
    events.extend(child_events)
    return ts_us + dur


def _emit_trees(trees: Iterable[Mapping], tid: int,
                events: list[dict]) -> None:
    ts = 0
    for root in trees:
        ts = _emit_tree(root, ts, tid, events)


def _emit_flight(flight: Mapping, events: list[dict]) -> None:
    """Flight samples as counter tracks at their true elapsed offsets."""
    for sample in flight.get("samples", ()):
        ts = _us(float(sample.get("elapsed", 0.0)))
        for key in ("rss_bytes", "io_read_bytes", "io_write_bytes"):
            if key in sample:
                events.append({"ph": "C", "name": f"vitals.{key}",
                               "cat": "flight", "pid": _PID, "tid": 0,
                               "ts": ts, "args": {key: sample[key]}})
        for name, value in sample.get("metrics", {}).items():
            events.append({"ph": "C", "name": name, "cat": "flight",
                           "pid": _PID, "tid": 0, "ts": ts,
                           "args": {"value": value}})


def build_trace(report: Mapping | None = None, *,
                worker_reports: Sequence[Mapping] = (),
                flight: Mapping | None = None,
                label: str = "trilliong") -> dict:
    """Assemble the Trace Event JSON document (as a dict).

    ``report`` is a PR 4 report (``{"metrics", "spans", ...}``);
    ``worker_reports`` are the tagged per-worker snapshots (each with
    ``task_index``/``attempt`` keys); ``flight`` is a
    :meth:`FlightRecorder.snapshot`.  Any of them may be omitted.
    """
    events: list[dict] = [_meta("process_name", 0, label),
                          _meta("thread_name", SUPERVISOR_TID, "supervisor")]
    if report is not None:
        _emit_trees(report.get("spans", ()), SUPERVISOR_TID, events)
        if flight is None and isinstance(report.get("flight"), Mapping):
            flight = report["flight"]
        if not worker_reports and isinstance(
                report.get("worker_reports"), Sequence):
            worker_reports = report["worker_reports"]
    seen_tids: set[int] = set()
    for position, worker in enumerate(worker_reports):
        index = worker.get("task_index")
        if not isinstance(index, int):
            index = position
        tid = WORKER_TID_BASE + index
        while tid in seen_tids:          # retries of the same task index
            tid += len(worker_reports) + 1
        seen_tids.add(tid)
        name = f"worker {index}"
        attempt = worker.get("attempt")
        if isinstance(attempt, int) and attempt > 1:
            name += f" (attempt {attempt})"
        events.append(_meta("thread_name", tid, name))
        _emit_trees(worker.get("spans", ()), tid, events)
    if flight is not None:
        events.append(_meta("thread_name", 0, "flight counters"))
        _emit_flight(flight, events)
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"generator": label,
                          "layout": "synthetic-proportional"}}


def write_trace(path: Path | str, report: Mapping | None = None, *,
                worker_reports: Sequence[Mapping] = (),
                flight: Mapping | None = None,
                label: str = "trilliong") -> Path:
    """Build and atomically write a trace file (tmp + rename, so a
    crash mid-export never leaves a truncated JSON behind)."""
    path = Path(path)
    doc = build_trace(report, worker_reports=worker_reports,
                      flight=flight, label=label)
    tmp = path.with_name(f"{path.name}.partial.{os.getpid()}")
    try:
        tmp.write_text(json.dumps(doc) + "\n", encoding="utf-8")
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
