"""In-process introspection HTTP server (stdlib only).

A :class:`TelemetryServer` wraps a ``ThreadingHTTPServer`` running on a
daemon thread inside the generating process, exposing the live
telemetry state over read-only ``GET`` endpoints — the per-job surface
the planned generation-as-a-service layer will mount per job:

===========  ==============================================================
endpoint     payload
===========  ==============================================================
/healthz     ``{"status": "ok", "uptime_seconds": ...}``
/metrics     Prometheus text exposition (:func:`to_prometheus`)
/progress    JSON: edges done, edges/s, ETA seconds, percent, active phase
/spans       JSON: finished span trees + every thread's live span stack
/flight      JSON: the flight recorder's retained time series (404 when
             no recorder is running; ``?limit=N`` tails the samples)
===========  ==============================================================

The server is **read-only** introspection (reprolint RPL509): handlers
only ever call ``global_registry().snapshot()`` / ``tracer()`` views —
never the instrument accessors, which would *create* metrics — and they
never draw from RNG streams, so serving traffic mid-run cannot perturb
generation output.

Enable with ``--serve-telemetry PORT`` on the CLI or
``TRILLIONG_SERVE_TELEMETRY=PORT`` in the environment (port ``0`` picks
a free ephemeral port; read it back from ``server.port``).  The server
binds ``127.0.0.1`` by default: the payloads are not sensitive, but
there is no auth, so exposing it wider is an explicit choice.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from .export import get_logger, to_prometheus
from .flight import current_recorder
from .metrics import global_registry
from .spans import tracer

__all__ = [
    "SERVE_ENV",
    "TelemetryServer",
    "serve_port_from_env",
    "start_server",
    "progress_payload",
]

#: Environment switch: set to a port number to start the server
#: (``0`` = ephemeral).  Unset/empty/``off`` leaves it down.
SERVE_ENV = "TRILLIONG_SERVE_TELEMETRY"

#: Counters consulted (in order) for the "edges done" progress figure:
#: the generator-side count when this process generates, the sink-side
#: count when it only writes (e.g. a dist supervisor merging chunks).
_EDGE_COUNTERS = ("generator.edges", "format.edges_written")


def serve_port_from_env() -> int | None:
    """The port ``TRILLIONG_SERVE_TELEMETRY`` asks for, or ``None``."""
    raw = os.environ.get(SERVE_ENV, "").strip().lower()
    if raw in ("", "off", "false", "no", "none"):
        return None
    try:
        return int(raw)
    except ValueError:
        return None


def progress_payload(total_edges: int | None = None,
                     started_monotonic: float | None = None) -> dict:
    """The ``/progress`` JSON body, computed purely from registry and
    tracer *views* (read-only — safe to call from any thread)."""
    snapshot = global_registry().snapshot()
    edges_done = 0.0
    for name in _EDGE_COUNTERS:
        data = snapshot.get(name)
        if data is not None and data.get("value"):
            edges_done = float(data["value"])
            break
    payload: dict = {"edges_done": int(edges_done)}
    if started_monotonic is not None:
        elapsed = max(time.monotonic() - started_monotonic, 1e-9)
        rate = edges_done / elapsed
        payload["elapsed_seconds"] = round(elapsed, 3)
        payload["edges_per_second"] = round(rate, 1)
        if total_edges and rate > 0:
            remaining = max(total_edges - edges_done, 0.0)
            payload["eta_seconds"] = round(remaining / rate, 1)
    if total_edges:
        payload["total_edges"] = int(total_edges)
        payload["percent"] = round(100.0 * edges_done / total_edges, 2)
    stacks = tracer().active_stacks()
    if stacks:
        payload["active_spans"] = stacks
        # The deepest frame across threads is "the" phase label.
        deepest = max(stacks.values(), key=len)
        payload["phase"] = deepest[-1]
    return payload


class _Handler(BaseHTTPRequestHandler):
    """Routes GETs to the read-only views; everything else is 404/405."""

    server: "_Server"  # narrowed from BaseHTTPRequestHandler

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        owner = self.server.owner
        if route in ("/", "/healthz"):
            self._json({"status": "ok",
                        "uptime_seconds": round(
                            time.monotonic() - owner.started_monotonic, 3)})
        elif route == "/metrics":
            body = to_prometheus().encode("utf-8")
            self._respond(200, body, "text/plain; version=0.0.4")
        elif route == "/progress":
            self._json(progress_payload(owner.total_edges,
                                        owner.started_monotonic))
        elif route == "/spans":
            self._json({"spans": tracer().snapshot(),
                        "active": tracer().active_stacks()})
        elif route == "/flight":
            recorder = current_recorder()
            if recorder is None:
                self._json({"error": "flight recorder not running"},
                           status=404)
            else:
                limit = _query_int(parsed.query, "limit")
                self._json(recorder.snapshot(limit=limit))
        else:
            self._json({"error": f"unknown endpoint {route!r}"}, status=404)

    def _json(self, payload: dict, status: int = 200) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._respond(status, body, "application/json")

    def _respond(self, status: int, body: bytes,
                 content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to clean up

    def log_message(self, format: str, *args: object) -> None:
        """Silence the per-request stderr chatter (this is a sidecar
        inside a process that may be drawing a progress line)."""


def _query_int(query: str, key: str) -> int | None:
    values = parse_qs(query).get(key)
    if not values:
        return None
    try:
        return int(values[0])
    except ValueError:
        return None


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Job lifetimes dwarf TIME_WAIT; rebinding the same port across
    # back-to-back runs must not fail.
    allow_reuse_address = True
    owner: "TelemetryServer"


class TelemetryServer:
    """Lifecycle wrapper: bind, serve on a daemon thread, shut down.

    Usable as a context manager.  ``total_edges`` (settable after
    construction, since the job computes it) feeds the ``/progress``
    ETA; ``port`` reports the actual bound port when 0 was requested.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1", *,
                 total_edges: int | None = None) -> None:
        self.total_edges = total_edges
        self.started_monotonic = time.monotonic()
        self._httpd = _Server((host, port), _Handler)
        self._httpd.owner = self
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "TelemetryServer":
        if self._thread is None or not self._thread.is_alive():
            self.started_monotonic = time.monotonic()
            self._thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True,
                name="trilliong-telemetry-http")
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_server(port: int | None = None, *,
                 total_edges: int | None = None
                 ) -> TelemetryServer | None:
    """Start an introspection server when asked to.

    ``port=None`` defers to ``TRILLIONG_SERVE_TELEMETRY``; returns
    ``None`` when neither requests one.  This is the single entry point
    ``TrillionG.generate_to`` and the CLI use.
    """
    if port is None:
        port = serve_port_from_env()
    if port is None:
        return None
    server = TelemetryServer(port, total_edges=total_edges).start()
    # INFO so an ephemeral (port 0) bind is discoverable from the logs.
    get_logger("telemetry.server").info(
        "introspection server listening on %s", server.url)
    return server
