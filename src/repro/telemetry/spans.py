"""Spans: hierarchical phase timing, plus the :class:`Stopwatch` primitive.

A ``span("phase", **attrs)`` context manager times one phase of the
pipeline and records it into a per-process trace *tree*.  Unlike a
per-call tracing system, nodes aggregate: re-entering ``span("encode")``
under the same parent accumulates into the same node (count, total wall
seconds, exclusive seconds), so the tree stays bounded no matter how many
blocks flow through a phase and it merges naturally across processes.

``exclusive_seconds`` is the span's wall time minus the wall time of the
child spans entered while it was active — the per-phase cost attribution
the paper's Figure 11/12 phase breakdowns need.

Spans always *measure* (two clock reads — exactly the cost of the ad-hoc
``perf_counter()`` pairs they replace) so result timing fields stay
populated even with telemetry off; only the *recording* into the tree is
skipped when disabled.

The span stack is thread-local; finished top-level spans land in the
shared tracer roots.  Background threads (e.g. the pipelined disk
writer) and subprocesses therefore never corrupt the producer's stack —
subprocess trees are shipped as snapshots and grafted with
:meth:`Tracer.attach`.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Mapping

from .metrics import telemetry_enabled

__all__ = [
    "Stopwatch",
    "SpanNode",
    "Span",
    "Tracer",
    "tracer",
    "span",
    "reset_tracer",
    "merge_span_trees",
]


class Stopwatch:
    """An accumulating wall-clock timer: the telemetry-layer replacement
    for scattered ``t0 = perf_counter(); ...; total += perf_counter()-t0``
    pairs.  Usable as a (re-entrant-free) context manager or via
    ``start()``/``stop()``; ``seconds`` is the running total.
    """

    __slots__ = ("seconds", "_started")

    def __init__(self) -> None:
        self.seconds = 0.0
        self._started: float | None = None

    def start(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        """Accumulate the open interval; returns the running total.
        Idempotent when not running."""
        if self._started is not None:
            self.seconds += time.perf_counter() - self._started
            self._started = None
        return self.seconds

    @property
    def running(self) -> bool:
        return self._started is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


class SpanNode:
    """One aggregated node of the trace tree."""

    __slots__ = ("name", "attrs", "count", "total_seconds",
                 "exclusive_seconds", "children")

    def __init__(self, name: str,
                 attrs: Mapping[str, object] | None = None) -> None:
        self.name = name
        self.attrs: dict[str, object] = dict(attrs or {})
        self.count = 0
        self.total_seconds = 0.0
        self.exclusive_seconds = 0.0
        self.children: dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "count": self.count,
            "total_seconds": self.total_seconds,
            "exclusive_seconds": self.exclusive_seconds,
            "children": [c.to_dict() for _, c in
                         sorted(self.children.items())],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanNode":
        node = cls(data["name"], data.get("attrs"))
        node.count = int(data.get("count", 0))
        node.total_seconds = float(data.get("total_seconds", 0.0))
        node.exclusive_seconds = float(data.get("exclusive_seconds", 0.0))
        for child in data.get("children", ()):
            node.children[child["name"]] = cls.from_dict(child)
        return node

    def merge(self, other: "SpanNode") -> None:
        """Fold ``other`` (same name) into this node, recursively."""
        if other.name != self.name:
            raise ValueError(
                f"cannot merge span {other.name!r} into {self.name!r}")
        self.count += other.count
        self.total_seconds += other.total_seconds
        self.exclusive_seconds += other.exclusive_seconds
        for key, value in other.attrs.items():
            self.attrs.setdefault(key, value)
        for name, child in other.children.items():
            mine = self.children.get(name)
            if mine is None:
                self.children[name] = child
            else:
                mine.merge(child)

    def find(self, *path: str) -> "SpanNode | None":
        """Descendant lookup by name path (testing/report convenience)."""
        node: SpanNode | None = self
        for name in path:
            if node is None:
                return None
            node = node.children.get(name)
        return node


class _Frame:
    __slots__ = ("name", "node", "start", "child_seconds")

    def __init__(self, name: str, node: SpanNode | None,
                 start: float) -> None:
        self.name = name
        self.node = node
        self.start = start
        self.child_seconds = 0.0


class Span:
    """The handle yielded by :func:`span`.

    ``seconds`` holds the measured wall time once the block exits —
    usable whether or not telemetry recorded the span into the tree.
    """

    __slots__ = ("name", "attrs", "seconds", "_tracer", "_frame")

    def __init__(self, name: str, attrs: dict[str, object],
                 owner: "Tracer") -> None:
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0
        self._tracer = owner
        self._frame: _Frame | None = None

    def __enter__(self) -> "Span":
        self._frame = self._tracer._enter(self.name, self.attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._frame is not None
        self.seconds = self._tracer._exit(self._frame)
        self._frame = None


class Tracer:
    """Per-process trace-tree builder with a thread-local span stack."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: dict[str, SpanNode] = {}
        # ident -> (thread name, that thread's live frame stack).  Lets
        # read-only introspection (flight recorder, /spans) see every
        # thread's active phase; each list is only ever mutated by its
        # owning thread, so readers just copy it.
        self._stacks: dict[int, tuple[str, list[_Frame]]] = {}

    # -- stack machinery -------------------------------------------------

    def _stack(self) -> list[_Frame]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
            thread = threading.current_thread()
            with self._lock:
                self._stacks[thread.ident or 0] = (thread.name, stack)
        return stack

    def _enter(self, name: str, attrs: Mapping[str, object]) -> _Frame:
        stack = self._stack()
        if not telemetry_enabled():
            # Measure only: a node-less frame still times the phase.
            frame = _Frame(name, None, time.perf_counter())
            stack.append(frame)
            return frame
        if stack and stack[-1].node is not None:
            node = stack[-1].node.child(name)
        else:
            with self._lock:
                node = self.roots.get(name)
                if node is None:
                    node = self.roots[name] = SpanNode(name)
        for key, value in attrs.items():
            node.attrs[key] = value
        frame = _Frame(name, node, time.perf_counter())
        stack.append(frame)
        return frame

    def _exit(self, frame: _Frame) -> float:
        elapsed = time.perf_counter() - frame.start
        stack = self._stack()
        # Tolerate out-of-order exits (interleaved writer lifetimes):
        # remove the frame wherever it sits instead of corrupting peers.
        if frame in stack:
            stack.remove(frame)
        node = frame.node
        if node is not None:
            node.count += 1
            node.total_seconds += elapsed
            node.exclusive_seconds += elapsed - frame.child_seconds
            if stack and stack[-1].node is not None:
                stack[-1].child_seconds += elapsed
        return elapsed

    # -- public surface --------------------------------------------------

    def span(self, name: str, **attrs: object) -> Span:
        return Span(name, attrs, self)

    def current(self) -> SpanNode | None:
        """The innermost active span node of this thread, if any."""
        stack = self._stack()
        return stack[-1].node if stack else None

    def active_stacks(self) -> dict[str, list[str]]:
        """Live span stacks of every thread, outermost first, keyed by
        thread name — the "what phase is each thread in right now" view
        the flight recorder and ``/spans`` serve.  Read-only: copies the
        per-thread lists, prunes registry entries for dead threads, and
        never touches the trace tree.
        """
        live = {t.ident for t in threading.enumerate()}
        active: dict[str, list[str]] = {}
        with self._lock:
            for ident in [i for i in self._stacks if i not in live]:
                del self._stacks[ident]
            entries = list(self._stacks.values())
        for name, stack in entries:
            frames = list(stack)
            if frames:
                active[name] = [frame.name for frame in frames]
        return active

    def snapshot(self) -> list[dict]:
        """JSON-able copy of the finished trace tree (roots, sorted)."""
        with self._lock:
            return [self.roots[name].to_dict()
                    for name in sorted(self.roots)]

    def attach(self, trees: Iterable[Mapping]) -> None:
        """Graft serialized span trees (e.g. a worker process snapshot)
        under the current span — or as roots when no span is active.

        Grafted time is *not* charged against the parent's exclusive
        time: the child ran in another process, so its wall clock
        overlaps rather than subdivides the parent's.
        """
        if not telemetry_enabled():
            return
        parent = self.current()
        for data in trees:
            node = SpanNode.from_dict(data)
            if parent is not None:
                mine = parent.children.get(node.name)
                if mine is None:
                    parent.children[node.name] = node
                else:
                    mine.merge(node)
            else:
                with self._lock:
                    mine = self.roots.get(node.name)
                    if mine is None:
                        self.roots[node.name] = node
                    else:
                        mine.merge(node)

    def reset(self) -> None:
        with self._lock:
            self.roots.clear()
            self._stacks.clear()
        self._local = threading.local()


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def span(name: str, **attrs: object) -> Span:
    """Open a span on the global tracer (the module-level convenience
    every instrumented call site uses)::

        with span("scatter", workers=4) as sp:
            ...
        elapsed = sp.seconds
    """
    return _TRACER.span(name, **attrs)


def reset_tracer() -> None:
    """Clear the global trace tree (worker-process entry, tests)."""
    _TRACER.reset()


def merge_span_trees(*snapshots: Iterable[Mapping]) -> list[dict]:
    """Pure merge of span-tree snapshots (lists of root dicts) into one
    combined snapshot; associative and commutative."""
    roots: dict[str, SpanNode] = {}
    for snap in snapshots:
        for data in snap:
            node = SpanNode.from_dict(data)
            mine = roots.get(node.name)
            if mine is None:
                roots[node.name] = node
            else:
                mine.merge(node)
    return [roots[name].to_dict() for name in sorted(roots)]
