"""repro.telemetry — unified metrics, spans, and progress reporting.

The zero-dependency observability layer the rest of the pipeline reports
through (stdlib only — no numpy, no repro imports):

- :func:`registry` / :class:`MetricsRegistry` — counters, gauges,
  fixed-bucket histograms; a shared no-op registry when
  ``TRILLIONG_TELEMETRY=0``.
- :func:`span` / :class:`Stopwatch` — hierarchical phase timing and the
  accumulator primitive that replaced the ad-hoc ``perf_counter()``
  pairs.  Spans always measure; they only *record* when enabled.
- :func:`snapshot_telemetry` / :func:`absorb_telemetry` — the
  cross-process protocol: workers snapshot, the supervisor absorbs, and
  a distributed run yields one coherent report.
- :mod:`.export` — structured ``repro.*`` logging, JSON report,
  Prometheus text format; :mod:`.progress` — the human ``--progress``
  line.

See ``docs/observability.md`` for the metric catalog and span taxonomy.
"""

from __future__ import annotations

from typing import Mapping

from .export import (LOG_LEVEL_ENV_VAR, build_report, configure_logging,
                     get_logger, log_report, merge_reports, to_prometheus,
                     write_json_report)
from .metrics import (ENV_VAR, NULL_REGISTRY, POW2_BUCKETS,
                      RECURSION_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, NullRegistry, enable_telemetry,
                      global_registry, merge_metrics, registry,
                      reset_metrics, telemetry_enabled)
from .progress import ProgressReporter, human_count
from .spans import (Span, SpanNode, Stopwatch, Tracer, merge_span_trees,
                    reset_tracer, span, tracer)

__all__ = [
    # switches
    "ENV_VAR", "LOG_LEVEL_ENV_VAR", "telemetry_enabled", "enable_telemetry",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "registry", "global_registry", "reset_metrics",
    "merge_metrics", "POW2_BUCKETS", "RECURSION_BUCKETS",
    # spans
    "span", "Span", "SpanNode", "Stopwatch", "Tracer", "tracer",
    "reset_tracer", "merge_span_trees",
    # cross-process protocol
    "snapshot_telemetry", "absorb_telemetry", "reset_telemetry",
    # exporters / progress
    "build_report", "merge_reports", "write_json_report", "to_prometheus",
    "log_report", "configure_logging", "get_logger",
    "ProgressReporter", "human_count",
]


def snapshot_telemetry() -> dict:
    """Serialize this process's metrics + span trees (JSON/pickle-able).

    This is what a worker ships back to the supervisor alongside its
    result payload.
    """
    return build_report()


def absorb_telemetry(snapshot: Mapping) -> None:
    """Merge a worker-process snapshot into this process's live
    telemetry: metrics by their merge semantics, span trees grafted
    under the currently active span (see :meth:`Tracer.attach`)."""
    if not telemetry_enabled():
        return
    global_registry().merge(snapshot.get("metrics", {}))
    tracer().attach(snapshot.get("spans", ()))


def reset_telemetry() -> None:
    """Clear all telemetry state — called at worker-process entry so a
    forked child does not re-report metrics inherited from its parent,
    and by tests."""
    reset_metrics()
    reset_tracer()
