"""repro.telemetry — unified metrics, spans, progress, and live introspection.

The zero-dependency observability layer the rest of the pipeline reports
through (stdlib only — no numpy, no repro imports):

- :func:`registry` / :class:`MetricsRegistry` — counters, gauges,
  fixed-bucket histograms; a shared no-op registry when
  ``TRILLIONG_TELEMETRY=0``.
- :func:`span` / :class:`Stopwatch` — hierarchical phase timing and the
  accumulator primitive that replaced the ad-hoc ``perf_counter()``
  pairs.  Spans always measure; they only *record* when enabled.
- :func:`snapshot_telemetry` / :func:`absorb_telemetry` — the
  cross-process protocol: workers snapshot, the supervisor absorbs, and
  a distributed run yields one coherent report.
- :mod:`.flight` — the flight recorder: a bounded ring-buffer sampler
  thread over the registry + process vitals (``TRILLIONG_FLIGHT``).
- :mod:`.server` — the read-only introspection HTTP server
  (``/metrics`` ``/healthz`` ``/progress`` ``/spans`` ``/flight``).
- :mod:`.traceview` — Chrome Trace Event Format export for
  Perfetto/chrome://tracing.
- :mod:`.export` — structured ``repro.*`` logging, JSON report,
  Prometheus text format; :mod:`.progress` — the human ``--progress``
  line.

See ``docs/observability.md`` for the metric catalog, span taxonomy,
and the live-introspection endpoint catalog.
"""

from __future__ import annotations

import threading
from typing import Mapping

from .export import (LOG_LEVEL_ENV_VAR, SCHEMA_VERSION, build_report,
                     configure_logging, escape_label_value, get_logger,
                     log_report, merge_reports, to_prometheus,
                     write_json_report)
from .flight import (DEFAULT_FLIGHT_CAPACITY, DEFAULT_FLIGHT_INTERVAL,
                     FLIGHT_CAPACITY_ENV, FLIGHT_ENV, FLIGHT_INTERVAL_ENV,
                     FlightRecorder, current_recorder, flight_session,
                     resolve_flight_interval, start_flight, stop_flight)
from .metrics import (ENV_VAR, NULL_REGISTRY, POW2_BUCKETS,
                      RECURSION_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, NullRegistry, enable_telemetry,
                      global_registry, merge_metrics, registry,
                      reset_metrics, telemetry_enabled)
from .progress import ProgressReporter, human_count
from .server import (SERVE_ENV, TelemetryServer, progress_payload,
                     serve_port_from_env, start_server)
from .spans import (Span, SpanNode, Stopwatch, Tracer, merge_span_trees,
                    reset_tracer, span, tracer)
from .traceview import build_trace, write_trace

__all__ = [
    # switches
    "ENV_VAR", "LOG_LEVEL_ENV_VAR", "telemetry_enabled", "enable_telemetry",
    # metrics
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "registry", "global_registry", "reset_metrics",
    "merge_metrics", "POW2_BUCKETS", "RECURSION_BUCKETS",
    # spans
    "span", "Span", "SpanNode", "Stopwatch", "Tracer", "tracer",
    "reset_tracer", "merge_span_trees",
    # cross-process protocol
    "snapshot_telemetry", "absorb_telemetry", "reset_telemetry",
    "record_worker_report", "worker_reports",
    # flight recorder
    "FLIGHT_ENV", "FLIGHT_INTERVAL_ENV", "FLIGHT_CAPACITY_ENV",
    "DEFAULT_FLIGHT_INTERVAL", "DEFAULT_FLIGHT_CAPACITY",
    "FlightRecorder", "start_flight", "stop_flight", "current_recorder",
    "flight_session", "resolve_flight_interval",
    # introspection server
    "SERVE_ENV", "TelemetryServer", "start_server", "serve_port_from_env",
    "progress_payload",
    # trace export
    "build_trace", "write_trace",
    # exporters / progress
    "SCHEMA_VERSION", "build_report", "merge_reports", "write_json_report",
    "to_prometheus", "escape_label_value", "log_report",
    "configure_logging", "get_logger", "ProgressReporter", "human_count",
]


def snapshot_telemetry() -> dict:
    """Serialize this process's metrics + span trees (JSON/pickle-able).

    This is what a worker ships back to the supervisor alongside its
    result payload.
    """
    return build_report()


def absorb_telemetry(snapshot: Mapping) -> None:
    """Merge a worker-process snapshot into this process's live
    telemetry: metrics by their merge semantics, span trees grafted
    under the currently active span (see :meth:`Tracer.attach`)."""
    if not telemetry_enabled():
        return
    global_registry().merge(snapshot.get("metrics", {}))
    tracer().attach(snapshot.get("spans", ()))


# Per-worker snapshots as shipped (tagged with task_index/attempt),
# kept verbatim alongside the merged aggregate so the trace exporter
# can draw each worker on its own track.  Bounded: a pathological
# retry storm must not grow supervisor memory without limit.
_WORKER_REPORT_CAP = 512
_worker_reports: list[dict] = []
_worker_reports_lock = threading.Lock()


def record_worker_report(snapshot: Mapping) -> None:
    """Retain one worker's tagged snapshot verbatim (supervisor side).

    :func:`absorb_telemetry` merges it into the aggregate; this keeps
    the un-merged original for per-worker trace tracks.  Oldest reports
    are dropped beyond a fixed cap.
    """
    if not telemetry_enabled():
        return
    with _worker_reports_lock:
        _worker_reports.append(dict(snapshot))
        if len(_worker_reports) > _WORKER_REPORT_CAP:
            del _worker_reports[:len(_worker_reports) - _WORKER_REPORT_CAP]


def worker_reports() -> tuple[dict, ...]:
    """The retained per-worker snapshots, oldest first."""
    with _worker_reports_lock:
        return tuple(_worker_reports)


def reset_telemetry() -> None:
    """Clear all telemetry state — called at worker-process entry so a
    forked child does not re-report metrics inherited from its parent,
    and by tests."""
    reset_metrics()
    reset_tracer()
    with _worker_reports_lock:
        _worker_reports.clear()
