"""Human progress reporting for long generation runs.

:class:`ProgressReporter` renders a progress line (edges done, edges/s,
ETA, pipeline queue high-water) to a stream.  On a TTY it is a single
carriage-return-refreshed line; on anything else (CI logs, redirected
stderr) it emits throttled newline-terminated lines instead, so the log
is not one garbled ``\\r``-spliced line.  It is push-driven — generation
call sites invoke it with the cumulative edge count after each block or
task — and throttles its own redraws, so callers can invoke it as often
as they like.
"""

from __future__ import annotations

import sys
import time
from typing import IO

from .metrics import global_registry

__all__ = ["ProgressReporter", "human_count"]

#: Gauge consulted for the queue-depth readout (set by the pipelined
#: disk sink in :mod:`repro.formats.pipeline`).
QUEUE_GAUGE = "pipeline.queue_high_water"

#: Non-TTY floor on the redraw interval: a line per 2 s keeps CI logs
#: informative without flooding them at the TTY refresh cadence.
NON_TTY_MIN_INTERVAL = 2.0

_UNITS = ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"))


def human_count(value: float) -> str:
    """``1234567`` -> ``"1.23M"`` (graph-scale friendly)."""
    for scale, suffix in _UNITS:
        if value >= scale:
            return f"{value / scale:.2f}{suffix}"
    return f"{value:.0f}"


class ProgressReporter:
    """Throttled progress display (single-line on TTYs, line-per-update
    elsewhere).

    Call :meth:`update` with the cumulative number of edges produced so
    far (it is also ``__call__``, so the reporter can be handed around
    as a plain ``progress(edges_done)`` callback); call :meth:`finish`
    once to terminate the line.  ``tty`` overrides the
    ``stream.isatty()`` autodetection (tests, forced modes).
    """

    def __init__(self, total_edges: int | None = None,
                 stream: IO[str] | None = None,
                 min_interval: float = 0.2,
                 tty: bool | None = None) -> None:
        self.total_edges = total_edges
        self.edges_done = 0
        self._stream = stream if stream is not None else sys.stderr
        if tty is None:
            isatty = getattr(self._stream, "isatty", None)
            try:
                tty = bool(isatty()) if callable(isatty) else False
            except (OSError, ValueError):
                tty = False
        self._tty = tty
        self._min_interval = (min_interval if tty
                              else max(min_interval, NON_TTY_MIN_INTERVAL))
        self._started = time.monotonic()
        self._last_draw = 0.0
        self._drew = False
        self._finished = False

    def update(self, edges_done: int, *, force: bool = False) -> None:
        if self._finished:
            return
        self.edges_done = edges_done
        now = time.monotonic()
        if now < self._last_draw:
            # Clock went backwards (suspend/resume, container migration):
            # re-arm the throttle instead of muting until it catches up.
            self._last_draw = now
        if not force and now - self._last_draw < self._min_interval:
            return
        self._last_draw = now
        self._draw(now)

    __call__ = update

    def _draw(self, now: float) -> None:
        elapsed = max(now - self._started, 1e-9)
        rate = self.edges_done / elapsed
        parts = [f"{human_count(self.edges_done)} edges",
                 f"{human_count(rate)} edges/s"]
        if self.total_edges:
            remaining = max(self.total_edges - self.edges_done, 0)
            if rate > 0:
                parts.append(f"ETA {remaining / rate:.0f}s")
            pct = 100.0 * self.edges_done / self.total_edges
            parts.insert(0, f"{pct:5.1f}%")
        # Read-only registry view: a snapshot lookup, not the gauge
        # accessor, so drawing progress never *creates* the instrument.
        queue_data = global_registry().snapshot().get(QUEUE_GAUGE)
        queue_high = queue_data["value"] if queue_data else 0.0
        if queue_high:
            parts.append(f"queue<={int(queue_high)}")
        line = "  ".join(parts)
        if self._tty:
            self._stream.write("\r" + line.ljust(72))
        else:
            self._stream.write(line + "\n")
        self._stream.flush()
        self._drew = True

    def finish(self) -> None:
        """Draw the final state and terminate the progress line."""
        if self._finished:
            return
        self._draw(time.monotonic())
        self._finished = True
        if self._drew and self._tty:
            self._stream.write("\n")
            self._stream.flush()
