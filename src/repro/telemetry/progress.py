"""Human progress reporting for long generation runs.

:class:`ProgressReporter` renders a single carriage-return-refreshed
line (edges done, edges/s, ETA, pipeline queue high-water) to a stream.
It is push-driven — generation call sites invoke it with the cumulative
edge count after each block or task — and throttles its own redraws, so
callers can invoke it as often as they like.
"""

from __future__ import annotations

import sys
import time
from typing import IO

from .metrics import global_registry

__all__ = ["ProgressReporter", "human_count"]

#: Gauge consulted for the queue-depth readout (set by the pipelined
#: disk sink in :mod:`repro.formats.pipeline`).
QUEUE_GAUGE = "pipeline.queue_high_water"

_UNITS = ((1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k"))


def human_count(value: float) -> str:
    """``1234567`` -> ``"1.23M"`` (graph-scale friendly)."""
    for scale, suffix in _UNITS:
        if value >= scale:
            return f"{value / scale:.2f}{suffix}"
    return f"{value:.0f}"


class ProgressReporter:
    """Throttled single-line progress display.

    Call :meth:`update` with the cumulative number of edges produced so
    far (it is also ``__call__``, so the reporter can be handed around
    as a plain ``progress(edges_done)`` callback); call :meth:`finish`
    once to terminate the line.
    """

    def __init__(self, total_edges: int | None = None,
                 stream: IO[str] | None = None,
                 min_interval: float = 0.2) -> None:
        self.total_edges = total_edges
        self.edges_done = 0
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval = min_interval
        self._started = time.monotonic()
        self._last_draw = 0.0
        self._drew = False
        self._finished = False

    def update(self, edges_done: int, *, force: bool = False) -> None:
        if self._finished:
            return
        self.edges_done = edges_done
        now = time.monotonic()
        if not force and now - self._last_draw < self._min_interval:
            return
        self._last_draw = now
        self._draw(now)

    __call__ = update

    def _draw(self, now: float) -> None:
        elapsed = max(now - self._started, 1e-9)
        rate = self.edges_done / elapsed
        parts = [f"{human_count(self.edges_done)} edges",
                 f"{human_count(rate)} edges/s"]
        if self.total_edges:
            remaining = max(self.total_edges - self.edges_done, 0)
            if rate > 0:
                parts.append(f"ETA {remaining / rate:.0f}s")
            pct = 100.0 * self.edges_done / self.total_edges
            parts.insert(0, f"{pct:5.1f}%")
        queue_high = global_registry().gauge(QUEUE_GAUGE, mode="max").value
        if queue_high:
            parts.append(f"queue<={int(queue_high)}")
        line = "  ".join(parts)
        self._stream.write("\r" + line.ljust(72))
        self._stream.flush()
        self._drew = True

    def finish(self) -> None:
        """Draw the final state and terminate the progress line."""
        if self._finished:
            return
        self._draw(time.monotonic())
        self._finished = True
        if self._drew:
            self._stream.write("\n")
            self._stream.flush()
