"""Exporters: structured logging, JSON report, Prometheus text format.

One *report* is the JSON-able pair of the metric snapshot and the span
trees::

    {"metrics": {...}, "spans": [...]}

Everything here renders or ships that shape; nothing in this module is
on a hot path.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from pathlib import Path
from typing import Mapping

from .metrics import global_registry, merge_metrics
from .spans import merge_span_trees, tracer

__all__ = [
    "LOG_LEVEL_ENV_VAR",
    "configure_logging",
    "get_logger",
    "build_report",
    "merge_reports",
    "write_json_report",
    "to_prometheus",
    "log_report",
]

#: Environment variable naming the stdlib log level for the ``repro``
#: logger hierarchy (``DEBUG``/``INFO``/``WARNING``/... or an integer).
LOG_LEVEL_ENV_VAR = "TRILLIONG_LOG_LEVEL"

_ROOT_LOGGER = "repro"
_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro.*`` hierarchy.

    ``get_logger("dist.faults")`` -> ``repro.dist.faults``.  Names that
    already start with ``repro`` are used as-is, so modules can pass
    ``__name__`` directly.
    """
    if not name:
        full = _ROOT_LOGGER
    elif name == _ROOT_LOGGER or name.startswith(_ROOT_LOGGER + "."):
        full = name
    else:
        full = f"{_ROOT_LOGGER}.{name}"
    return logging.getLogger(full)


def configure_logging(level: int | str | None = None,
                      stream=None) -> logging.Logger:
    """Install a handler on the ``repro`` root logger (idempotent).

    ``level`` defaults to ``TRILLIONG_LOG_LEVEL`` (itself defaulting to
    ``WARNING`` so library use stays silent).  Re-calling only adjusts
    the level — handlers are never stacked.
    """
    global _configured
    root = logging.getLogger(_ROOT_LOGGER)
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV_VAR, "WARNING")
    if isinstance(level, str):
        level = level.strip().upper()
        if level.isdigit():
            level = int(level)
    root.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s",
            datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    return root


def build_report(extra: Mapping[str, object] | None = None) -> dict:
    """Snapshot the live registry + tracer into one report dict."""
    report = {
        "metrics": global_registry().snapshot(),
        "spans": tracer().snapshot(),
    }
    if extra:
        report.update(extra)
    return report


def merge_reports(*reports: Mapping) -> dict:
    """Pure merge of reports (metrics by metric semantics, spans by
    name-aligned tree merge); associative, ignores extra keys."""
    return {
        "metrics": merge_metrics(*(r.get("metrics", {}) for r in reports)),
        "spans": merge_span_trees(*(r.get("spans", ()) for r in reports)),
    }


def write_json_report(path: Path | str,
                      report: Mapping | None = None) -> Path:
    """Dump a report (default: a fresh :func:`build_report`) as JSON."""
    path = Path(path)
    if report is None:
        report = build_report()
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return f"trilliong_{cleaned}"


def to_prometheus(metrics: Mapping[str, Mapping] | None = None) -> str:
    """Render a metric snapshot in the Prometheus text exposition
    format (histograms as cumulative ``_bucket``/``_sum``/``_count``)."""
    if metrics is None:
        metrics = global_registry().snapshot()
    lines: list[str] = []
    for name in sorted(metrics):
        data = metrics[name]
        prom = _prom_name(name)
        kind = data.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_num(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_num(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(data["bounds"], data["counts"]):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_num(bound)}"}} {cumulative}')
            cumulative += data["counts"][-1]
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_num(data['sum'])}")
            lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Render floats Prometheus-style: integral values without the
    trailing ``.0`` so counters read naturally."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def log_report(report: Mapping | None = None,
               logger: logging.Logger | None = None,
               level: int = logging.INFO) -> None:
    """Emit a report through the ``repro.telemetry`` logger: one line
    per metric, one line per span node (indented by depth)."""
    if report is None:
        report = build_report()
    if logger is None:
        logger = get_logger("telemetry")
    if not logger.isEnabledFor(level):
        return
    for name, data in report.get("metrics", {}).items():
        kind = data.get("type")
        if kind == "histogram":
            logger.log(level, "metric %s: count=%d sum=%s",
                       name, data["count"], _num(data["sum"]))
        else:
            logger.log(level, "metric %s: %s", name, _num(data["value"]))

    def walk(node: Mapping, depth: int) -> None:
        logger.log(
            level, "span %s%s: count=%d total=%.6fs exclusive=%.6fs",
            "  " * depth, node["name"], node["count"],
            node["total_seconds"], node["exclusive_seconds"])
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in report.get("spans", ()):
        walk(root, 0)
