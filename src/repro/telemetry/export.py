"""Exporters: structured logging, JSON report, Prometheus text format.

One *report* is the JSON-able pair of the metric snapshot and the span
trees, stamped with the report schema version::

    {"schema_version": 1, "metrics": {...}, "spans": [...]}

Everything here renders or ships that shape; nothing in this module is
on a hot path.  Reports are written atomically (tmp + fsync + rename —
the same discipline as ``repro.util.spill``, re-implemented locally
because the telemetry layer sits below ``repro.util`` in the import
layering), so a crash mid-dump never leaves a truncated report behind.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from pathlib import Path
from typing import Mapping

from .metrics import global_registry, merge_metrics
from .spans import merge_span_trees, tracer

__all__ = [
    "LOG_LEVEL_ENV_VAR",
    "SCHEMA_VERSION",
    "configure_logging",
    "get_logger",
    "build_report",
    "merge_reports",
    "write_json_report",
    "to_prometheus",
    "escape_label_value",
    "log_report",
]

#: Version of the report shape.  Reports written before versioning are
#: treated as version 1 (the shape has not changed, only gained the
#: stamp); :func:`merge_reports` refuses explicit mismatches.
SCHEMA_VERSION = 1

#: Environment variable naming the stdlib log level for the ``repro``
#: logger hierarchy (``DEBUG``/``INFO``/``WARNING``/... or an integer).
LOG_LEVEL_ENV_VAR = "TRILLIONG_LOG_LEVEL"

_ROOT_LOGGER = "repro"
_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro.*`` hierarchy.

    ``get_logger("dist.faults")`` -> ``repro.dist.faults``.  Names that
    already start with ``repro`` are used as-is, so modules can pass
    ``__name__`` directly.
    """
    if not name:
        full = _ROOT_LOGGER
    elif name == _ROOT_LOGGER or name.startswith(_ROOT_LOGGER + "."):
        full = name
    else:
        full = f"{_ROOT_LOGGER}.{name}"
    return logging.getLogger(full)


def configure_logging(level: int | str | None = None,
                      stream=None) -> logging.Logger:
    """Install a handler on the ``repro`` root logger (idempotent).

    ``level`` defaults to ``TRILLIONG_LOG_LEVEL`` (itself defaulting to
    ``WARNING`` so library use stays silent).  Re-calling only adjusts
    the level — handlers are never stacked.
    """
    global _configured
    root = logging.getLogger(_ROOT_LOGGER)
    if level is None:
        level = os.environ.get(LOG_LEVEL_ENV_VAR, "WARNING")
    if isinstance(level, str):
        level = level.strip().upper()
        if level.isdigit():
            level = int(level)
    root.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(asctime)s %(levelname)s %(name)s: %(message)s",
            datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    return root


def build_report(extra: Mapping[str, object] | None = None) -> dict:
    """Snapshot the live registry + tracer into one report dict."""
    report = {
        "schema_version": SCHEMA_VERSION,
        "metrics": global_registry().snapshot(),
        "spans": tracer().snapshot(),
    }
    if extra:
        report.update(extra)
    return report


def _report_version(report: Mapping) -> int:
    """A report's schema version; missing means pre-versioning = 1."""
    raw = report.get("schema_version", SCHEMA_VERSION)
    try:
        return int(raw)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise ValueError(
            f"unintelligible report schema_version: {raw!r}") from None


def merge_reports(*reports: Mapping) -> dict:
    """Pure merge of reports (metrics by metric semantics, spans by
    name-aligned tree merge); associative, ignores extra keys.

    Refuses reports whose ``schema_version`` differs from
    :data:`SCHEMA_VERSION` (a silent cross-version merge could blend
    incompatible metric semantics); reports without the stamp are
    tolerated as version 1.
    """
    for report in reports:
        version = _report_version(report)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"cannot merge report with schema_version={version} "
                f"(this build writes {SCHEMA_VERSION})")
    return {
        "schema_version": SCHEMA_VERSION,
        "metrics": merge_metrics(*(r.get("metrics", {}) for r in reports)),
        "spans": merge_span_trees(*(r.get("spans", ()) for r in reports)),
    }


def write_json_report(path: Path | str,
                      report: Mapping | None = None) -> Path:
    """Dump a report (default: a fresh :func:`build_report`) as JSON,
    atomically: ``.partial.<pid>`` + fsync + rename, then fsync the
    directory, so a crash mid-dump never leaves a truncated report and
    a rename survives power loss."""
    path = Path(path)
    if report is None:
        report = build_report()
    doc = dict(report)
    doc.setdefault("schema_version", SCHEMA_VERSION)
    tmp = path.with_name(f"{path.name}.partial.{os.getpid()}")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:
        return path  # platform without directory fds; rename still atomic
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


def _prom_name(name: str) -> str:
    """Sanitize to a legal Prometheus metric name.

    The exposition format allows ``[a-zA-Z_:][a-zA-Z0-9_:]*``; runs of
    anything else collapse to a single ``_`` so ``gen.alias.build++``
    reads ``trilliong_gen_alias_build_`` rather than sprouting one
    underscore per bad character.  The ``trilliong_`` prefix also
    guarantees the first character is legal.
    """
    cleaned = "".join(c if (c.isascii() and c.isalnum()) or c in "_:"
                      else "_" for c in name)
    while "__" in cleaned:
        cleaned = cleaned.replace("__", "_")
    return f"trilliong_{cleaned}"


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double-quote, and newline must be escaped inside the
    double-quoted label value."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def to_prometheus(metrics: Mapping[str, Mapping] | None = None) -> str:
    """Render a metric snapshot in the Prometheus text exposition
    format (histograms as cumulative ``_bucket``/``_sum``/``_count``)."""
    if metrics is None:
        metrics = global_registry().snapshot()
    lines: list[str] = []
    for name in sorted(metrics):
        data = metrics[name]
        prom = _prom_name(name)
        kind = data.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_num(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_num(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(data["bounds"], data["counts"]):
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_num(bound)}"}} {cumulative}')
            cumulative += data["counts"][-1]
            lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{prom}_sum {_num(data['sum'])}")
            lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Render floats Prometheus-style: integral values without the
    trailing ``.0`` so counters read naturally."""
    f = float(value)
    return str(int(f)) if f.is_integer() else repr(f)


def log_report(report: Mapping | None = None,
               logger: logging.Logger | None = None,
               level: int = logging.INFO) -> None:
    """Emit a report through the ``repro.telemetry`` logger: one line
    per metric, one line per span node (indented by depth)."""
    if report is None:
        report = build_report()
    if logger is None:
        logger = get_logger("telemetry")
    if not logger.isEnabledFor(level):
        return
    for name, data in report.get("metrics", {}).items():
        kind = data.get("type")
        if kind == "histogram":
            logger.log(level, "metric %s: count=%d sum=%s",
                       name, data["count"], _num(data["sum"]))
        else:
            logger.log(level, "metric %s: %s", name, _num(data["value"]))

    def walk(node: Mapping, depth: int) -> None:
        logger.log(
            level, "span %s%s: count=%d total=%.6fs exclusive=%.6fs",
            "  " * depth, node["name"], node["count"],
            node["total_seconds"], node["exclusive_seconds"])
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in report.get("spans", ()):
        walk(root, 0)
