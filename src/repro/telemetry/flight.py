"""Flight recorder: a bounded in-process time-series sampler.

Everything else in :mod:`repro.telemetry` reports *post hoc* — counters
and span trees surface after ``generate()`` returns.  The flight
recorder closes the in-flight gap: a daemon thread samples the metrics
registry plus process vitals on a fixed interval into a bounded ring
buffer, so a run that stalls, leaks memory, or thrashes its merge fan-in
carries its own recent history.

Each sample is one JSON-able dict::

    {"elapsed": 1.5,            # seconds since the recorder started
     "wall": 1723111845.2,      # epoch seconds (display only)
     "rss_bytes": 104857600,    # resident set size (/proc/self/statm)
     "io_read_bytes": ...,      # cumulative read_bytes (/proc/self/io)
     "io_write_bytes": ...,     # cumulative write_bytes (/proc/self/io)
     "metrics": {"generator.edges": 4096.0, ...},   # flattened registry
     "spans": {"MainThread": ["generate", "format.write_blocks"]}}

Process vitals come straight from ``/proc/self`` (no psutil); on
platforms without procfs those fields are simply absent.  The
``metrics`` map flattens the registry snapshot — counters and gauges to
their value, histograms to their observation count — which keeps a
sample small enough that a full ring is a few hundred KB.

The recorder is **read-only** introspection (reprolint RPL509): it never
creates or updates instruments, never draws from an RNG stream, and
never touches generator state, so enabling it cannot change the output
bytes.

Switches
--------
``TRILLIONG_FLIGHT`` enables the recorder (``1``/``true`` for the
default cadence, or a float interval in seconds);
``TRILLIONG_FLIGHT_INTERVAL`` / ``TRILLIONG_FLIGHT_CAPACITY`` override
the cadence and the ring size.  Programmatic use goes through
:func:`start_flight` / :func:`stop_flight` or the
:func:`flight_session` context manager (what
``TrillionG(flight=...)`` and the CLI ``--flight`` use).

Crash forensics
---------------
A recorder given a ``dump_path`` rewrites its tail there (atomically,
small JSON) after every sample, so a worker that is ``SIGKILL``-ed or
hangs past its timeout still leaves its last N seconds of time series
on disk for the supervisor to collect — see
:mod:`repro.dist.faults`, which attaches the tail to the failed
``TaskAttempt``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Mapping

from .metrics import global_registry
from .spans import tracer

__all__ = [
    "FLIGHT_ENV",
    "FLIGHT_INTERVAL_ENV",
    "FLIGHT_CAPACITY_ENV",
    "DEFAULT_FLIGHT_INTERVAL",
    "DEFAULT_FLIGHT_CAPACITY",
    "FlightRecorder",
    "flatten_metrics",
    "read_proc_vitals",
    "resolve_flight_interval",
    "flight_interval_from_env",
    "start_flight",
    "stop_flight",
    "current_recorder",
    "flight_session",
]

#: Enables the recorder: ``1``/``true``/``yes``/``on`` for the default
#: cadence, or a float interval in seconds (``TRILLIONG_FLIGHT=0.25``).
FLIGHT_ENV = "TRILLIONG_FLIGHT"
#: Overrides the sampling interval in seconds.
FLIGHT_INTERVAL_ENV = "TRILLIONG_FLIGHT_INTERVAL"
#: Overrides the ring-buffer capacity (number of retained samples).
FLIGHT_CAPACITY_ENV = "TRILLIONG_FLIGHT_CAPACITY"

#: Default sampling cadence: 2 Hz keeps a 240-sample ring at two minutes
#: of history while costing one registry snapshot per tick.
DEFAULT_FLIGHT_INTERVAL = 0.5
DEFAULT_FLIGHT_CAPACITY = 240

#: How many trailing samples a ``dump_path`` rewrite retains — the crash
#: forensics window shipped with failed task attempts.
DUMP_TAIL_SAMPLES = 120

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "no", "off"})

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_proc_vitals() -> dict[str, int]:
    """RSS and cumulative I/O byte counts from ``/proc/self``.

    Returns an empty dict on platforms without procfs (the recorder then
    records metrics and span stacks only).  ``/proc/self/io`` may be
    absent or unreadable even on Linux (permissions inside some
    sandboxes); each field is independent best-effort.
    """
    vitals: dict[str, int] = {}
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        vitals["rss_bytes"] = int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        with open("/proc/self/io", "r", encoding="ascii") as handle:
            for line in handle:
                key, _, value = line.partition(":")
                if key == "read_bytes":
                    vitals["io_read_bytes"] = int(value)
                elif key == "write_bytes":
                    vitals["io_write_bytes"] = int(value)
    except (OSError, ValueError):
        pass
    return vitals


def flatten_metrics(snapshot: Mapping[str, Mapping]) -> dict[str, float]:
    """Flatten a registry snapshot to ``{name: value}`` for sampling:
    counters and gauges keep their value, histograms flatten to their
    observation count (``<name>.count``)."""
    flat: dict[str, float] = {}
    for name, data in snapshot.items():
        kind = data.get("type")
        if kind in ("counter", "gauge"):
            flat[name] = float(data["value"])
        elif kind == "histogram":
            flat[f"{name}.count"] = float(data["count"])
    return flat


class FlightRecorder:
    """Bounded ring-buffer sampler thread over the live telemetry state.

    :meth:`start` launches the daemon sampler; :meth:`stop` joins it
    (taking one final sample so short runs never end empty).
    :meth:`tail` returns the most recent samples; :meth:`snapshot` the
    JSON-able whole — the shape shipped across the worker snapshot
    protocol and served by ``GET /flight``.
    """

    def __init__(self, interval: float | None = None,
                 capacity: int | None = None, *,
                 dump_path: Path | str | None = None) -> None:
        if interval is None:
            interval = flight_interval_from_env() or DEFAULT_FLIGHT_INTERVAL
        if capacity is None:
            capacity = _capacity_from_env()
        self.interval = max(0.01, float(interval))
        self.capacity = max(1, int(capacity))
        self.dump_path = Path(dump_path) if dump_path is not None else None
        self._samples: list[dict] = []
        self._dropped = 0
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._started_monotonic: float | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "FlightRecorder":
        """Launch the sampler thread (idempotent while running)."""
        if self.running:
            return self
        self._stop_event.clear()
        self._started_monotonic = time.monotonic()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="trilliong-flight")
        self._thread.start()
        return self

    def stop(self, *, remove_dump: bool = False) -> "FlightRecorder":
        """Stop and join the sampler; records one final sample first so
        even a sub-interval run leaves a time series behind."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join()
            self._thread = None
        if remove_dump and self.dump_path is not None:
            self.dump_path.unlink(missing_ok=True)
        return self

    # -- sampling --------------------------------------------------------

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self.sample()
        self.sample()        # final sample at stop: short runs stay visible

    def sample(self) -> dict:
        """Take one sample now (the sampler thread's tick; callable
        directly in tests or for an on-demand reading)."""
        now = time.monotonic()
        started = self._started_monotonic
        sample: dict = {
            "elapsed": round(now - started, 6) if started is not None
            else 0.0,
            "wall": time.time(),
        }
        sample.update(read_proc_vitals())
        sample["metrics"] = flatten_metrics(global_registry().snapshot())
        active = tracer().active_stacks()
        if active:
            sample["spans"] = active
        with self._lock:
            self._samples.append(sample)
            if len(self._samples) > self.capacity:
                drop = len(self._samples) - self.capacity
                del self._samples[:drop]
                self._dropped += drop
        if self.dump_path is not None:
            self._dump()
        return sample

    def _dump(self) -> None:
        """Atomically rewrite the dump file with the recent tail.

        Best-effort by design: forensics must never fail the run, so any
        OSError (disk full, directory vanished mid-retry) is swallowed.
        """
        doc = self.snapshot(limit=DUMP_TAIL_SAMPLES)
        assert self.dump_path is not None
        tmp = self.dump_path.with_name(
            f"{self.dump_path.name}.partial.{os.getpid()}")
        try:
            tmp.write_text(json.dumps(doc) + "\n", encoding="utf-8")
            tmp.replace(self.dump_path)
        except OSError:
            tmp.unlink(missing_ok=True)

    # -- reading ---------------------------------------------------------

    def tail(self, limit: int | None = None) -> list[dict]:
        """The most recent ``limit`` samples (all retained by default)."""
        with self._lock:
            samples = list(self._samples)
        if limit is not None and limit >= 0:
            samples = samples[-limit:]
        return samples

    @property
    def dropped(self) -> int:
        """Samples evicted from the ring so far."""
        with self._lock:
            return self._dropped

    def snapshot(self, limit: int | None = None) -> dict:
        """JSON-able recorder state: config plus the retained samples."""
        with self._lock:
            samples = list(self._samples)
            dropped = self._dropped
        if limit is not None and limit >= 0:
            dropped += max(0, len(samples) - limit)
            samples = samples[-limit:]
        return {
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "dropped": dropped,
            "samples": samples,
        }


# ---------------------------------------------------------------------------
# Process-wide recorder + configuration resolution
# ---------------------------------------------------------------------------


def flight_interval_from_env() -> float | None:
    """The sampling interval the environment asks for, or ``None`` when
    the recorder is not enabled via ``TRILLIONG_FLIGHT``."""
    raw = os.environ.get(FLIGHT_ENV, "").strip().lower()
    if raw in _FALSY:
        return None
    interval_raw = os.environ.get(FLIGHT_INTERVAL_ENV, "").strip()
    if interval_raw:
        try:
            return max(0.01, float(interval_raw))
        except ValueError:
            return DEFAULT_FLIGHT_INTERVAL
    if raw in _TRUTHY:
        return DEFAULT_FLIGHT_INTERVAL
    try:
        return max(0.01, float(raw))
    except ValueError:
        return DEFAULT_FLIGHT_INTERVAL


def resolve_flight_interval(setting: bool | float | None
                            ) -> float | None:
    """Resolve a ``flight=`` parameter to a sampling interval.

    ``None`` defers to the environment, ``False`` forces off, ``True``
    means the default cadence, a number is the interval in seconds.
    """
    if setting is None:
        return flight_interval_from_env()
    if setting is False:
        return None
    if setting is True:
        return flight_interval_from_env() or DEFAULT_FLIGHT_INTERVAL
    return max(0.01, float(setting))


def _capacity_from_env() -> int:
    raw = os.environ.get(FLIGHT_CAPACITY_ENV, "").strip()
    if not raw:
        return DEFAULT_FLIGHT_CAPACITY
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_FLIGHT_CAPACITY


_CURRENT: FlightRecorder | None = None
_CURRENT_LOCK = threading.Lock()


def current_recorder() -> FlightRecorder | None:
    """This process's running recorder, if any (``GET /flight`` reads
    it; ``None`` when flight recording is off)."""
    return _CURRENT


def start_flight(interval: float | None = None, *,
                 dump_path: Path | str | None = None) -> FlightRecorder:
    """Start (or return the already-running) process-wide recorder."""
    global _CURRENT
    with _CURRENT_LOCK:
        if _CURRENT is not None and _CURRENT.running:
            return _CURRENT
        _CURRENT = FlightRecorder(interval, dump_path=dump_path).start()
        return _CURRENT


def stop_flight(*, remove_dump: bool = False) -> FlightRecorder | None:
    """Stop the process-wide recorder; returns it (with its samples
    intact) so callers can ship the final snapshot."""
    global _CURRENT
    with _CURRENT_LOCK:
        recorder, _CURRENT = _CURRENT, None
    if recorder is not None:
        recorder.stop(remove_dump=remove_dump)
    return recorder


class flight_session:
    """Context manager running the process-wide recorder for one job.

    ``setting`` follows :func:`resolve_flight_interval`.  With
    ``propagate_env=True`` the resolved interval is exported as
    ``TRILLIONG_FLIGHT`` for the duration of the block, so worker
    *subprocesses* launched inside it run their own recorders — the
    programmatic twin of setting the variable in the shell.  Yields the
    recorder (or ``None`` when flight recording stays off).
    """

    def __init__(self, setting: bool | float | None = None, *,
                 propagate_env: bool = False) -> None:
        self.interval = resolve_flight_interval(setting)
        self._propagate = propagate_env
        self._saved_env: str | None = None
        self._had_env = False
        self.recorder: FlightRecorder | None = None

    def __enter__(self) -> FlightRecorder | None:
        if self.interval is None:
            return None
        if self._propagate:
            self._had_env = FLIGHT_ENV in os.environ
            self._saved_env = os.environ.get(FLIGHT_ENV)
            os.environ[FLIGHT_ENV] = repr(self.interval)
        self.recorder = start_flight(self.interval)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.interval is None:
            return
        if self._propagate:
            if self._had_env and self._saved_env is not None:
                os.environ[FLIGHT_ENV] = self._saved_env
            else:
                os.environ.pop(FLIGHT_ENV, None)
        stop_flight()
