"""The TrillionG system facade (Section 5): one entry point that wires the
recursive vector engine, the Figure 6 partitioner, and the output formats
together — the equivalent of the paper's Spark driver program.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from .core.generator import (AdjacencyBlock, IdeaToggles,
                             RecursiveVectorGenerator)
from .core.seed import GRAPH500, SeedMatrix
from .dist.checkpoint import CheckpointedRun
from .dist.faults import FaultPlan, RetryPolicy
from .dist.runner import ClusterSpec, DistributedResult, LocalCluster
from .formats import WriteResult, get_format
from .telemetry import (build_report, flight_session, span, start_server,
                        telemetry_enabled, worker_reports)

__all__ = ["TrillionG", "TrillionGResult"]


@dataclass
class TrillionGResult:
    """Outcome of a TrillionG run.

    ``encode_seconds``/``write_seconds`` break the output cost into
    format encoding vs. ``file.write`` wall time (summed across workers
    for distributed runs; the two overlap when the write pipeline is on).
    ``telemetry`` holds the full metrics + span report for the run
    (:func:`repro.telemetry.build_report`), or ``None`` when telemetry is
    disabled via ``TRILLIONG_TELEMETRY=0``.
    """

    paths: list[Path]
    num_vertices: int
    num_edges: int
    bytes_written: int
    elapsed_seconds: float
    skew: float = 1.0
    encode_seconds: float = 0.0
    write_seconds: float = 0.0
    telemetry: dict | None = None

    @property
    def edges_per_second(self) -> float:
        """End-to-end edge throughput (0 when untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.num_edges / self.elapsed_seconds

    @property
    def bytes_per_second(self) -> float:
        """End-to-end byte throughput (0 when untimed)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.bytes_written / self.elapsed_seconds


class TrillionG:
    """End-to-end synthetic graph generation to disk.

    Examples
    --------
    >>> from repro import TrillionG
    >>> tg = TrillionG(scale=12, edge_factor=16, seed=7)
    >>> result = tg.generate_to("graph.adj6", fmt="adj6")  # doctest: +SKIP

    Parameters mirror the paper's configuration surface: Graph500 standard
    workload by default, optional NSKG noise, choice of engine, and a
    machines x threads cluster shape for parallel generation.
    """

    def __init__(self, scale: int, edge_factor: int = 16,
                 seed_matrix: SeedMatrix | None = None, *,
                 num_edges: int | None = None,
                 noise: float = 0.0,
                 engine: str = "vectorized",
                 sampler: str | None = None,
                 ideas: IdeaToggles | None = None,
                 seed: int = 0,
                 block_size: int = 4096,
                 bundle_depth: int = 8,
                 cluster: ClusterSpec | None = None,
                 retry: RetryPolicy | None = None,
                 faults: FaultPlan | None = None,
                 flight: bool | float | None = None,
                 serve_telemetry: int | None = None) -> None:
        self.generator = RecursiveVectorGenerator(
            scale, edge_factor,
            seed_matrix if seed_matrix is not None else GRAPH500,
            num_edges=num_edges, noise=noise, engine=engine,
            sampler=sampler, ideas=ideas, seed=seed,
            block_size=block_size, bundle_depth=bundle_depth)
        self.cluster = cluster
        self.retry = retry
        self.faults = faults
        #: Flight recorder: ``None`` defers to ``TRILLIONG_FLIGHT``,
        #: ``True``/``False`` force it, a number sets the sampling
        #: interval in seconds.  The recorder's time series lands under
        #: ``telemetry["flight"]`` on the result.
        self.flight = flight
        #: Introspection HTTP port for the duration of ``generate_to``
        #: (``0`` = ephemeral); ``None`` defers to
        #: ``TRILLIONG_SERVE_TELEMETRY``.
        self.serve_telemetry = serve_telemetry

    @property
    def num_vertices(self) -> int:
        return self.generator.num_vertices

    @property
    def num_edges(self) -> int:
        return self.generator.num_edges

    def generate_edges(self) -> np.ndarray:
        """Materialize the whole graph in memory (small scales only)."""
        return self.generator.edges()

    def generate_to(self, path: Path | str, fmt: str = "adj6",
                    processes: int | None = None, *,
                    resume: bool = False,
                    blocks_per_chunk: int = 16,
                    progress: Callable[[int], None] | None = None
                    ) -> TrillionGResult:
        """Generate to disk.

        Without a cluster, writes one file sequentially.  With a cluster,
        runs the Figure 6 partitioner and writes one part file per worker
        into the directory ``path``.  With ``resume=True``, generation is
        checkpointed into the directory ``path`` (one chunk file per
        ``blocks_per_chunk`` blocks plus a manifest) and a killed run can
        simply be re-invoked: only missing chunks are regenerated, and
        the final output is bit-identical either way.

        ``progress`` is called with the cumulative edge count as work
        lands (per block sequentially, per worker result distributed) —
        pass a :class:`repro.telemetry.ProgressReporter` for a live
        terminal line.

        Live introspection (both read-only — they cannot change the
        output bytes): with ``flight=...`` a flight recorder samples the
        run (and, on a cluster, each worker samples itself — the env var
        is propagated for the duration); with ``serve_telemetry=...`` an
        HTTP server exposes ``/metrics`` ``/progress`` ``/spans``
        ``/flight`` while the run is in progress.
        """
        session = flight_session(self.flight,
                                 propagate_env=self.cluster is not None)
        with session as recorder:
            server = start_server(self.serve_telemetry,
                                  total_edges=self.num_edges)
            try:
                result = self._generate(path, fmt, processes,
                                        resume=resume,
                                        blocks_per_chunk=blocks_per_chunk,
                                        progress=progress)
            finally:
                if server is not None:
                    server.stop()
            if recorder is not None and result.telemetry is not None:
                recorder.sample()
                result.telemetry["flight"] = recorder.snapshot()
        return result

    def _generate(self, path: Path | str, fmt: str,
                  processes: int | None, *, resume: bool,
                  blocks_per_chunk: int,
                  progress: Callable[[int], None] | None
                  ) -> TrillionGResult:
        if resume:
            return self._generate_resumable(path, fmt, processes,
                                            blocks_per_chunk, progress)
        if self.cluster is None:
            with span("generate", scale=self.generator.scale,
                      fmt=fmt) as sp:
                writer = get_format(fmt)
                result: WriteResult = writer.write_blocks(
                    path, self._blocks_with_progress(progress),
                    self.num_vertices)
            return TrillionGResult([Path(path)], self.num_vertices,
                                   result.num_edges, result.bytes_written,
                                   sp.seconds,
                                   encode_seconds=result.encode_seconds,
                                   write_seconds=result.write_seconds,
                                   telemetry=self._report())
        with span("generate", scale=self.generator.scale, fmt=fmt):
            runner = LocalCluster(self.cluster)
            dist: DistributedResult = runner.generate_to_files(
                self.generator, path, fmt, processes=processes,
                retry=self.retry, faults=self.faults, progress=progress)
        total_bytes = sum(p.stat().st_size for p in dist.paths)
        return TrillionGResult(dist.paths, self.num_vertices,
                               dist.num_edges, total_bytes,
                               dist.elapsed_seconds, dist.skew,
                               encode_seconds=dist.encode_seconds,
                               write_seconds=dist.write_seconds,
                               telemetry=self._report())

    def _generate_resumable(self, path: Path | str, fmt: str,
                            processes: int | None,
                            blocks_per_chunk: int,
                            progress: Callable[[int], None] | None
                            ) -> TrillionGResult:
        """Checkpointed generation: sequential without a cluster, the
        supervised parallel scatter with one."""
        if self.cluster is None:
            with span("generate", scale=self.generator.scale,
                      fmt=fmt, resume=True) as sp:
                run = CheckpointedRun(self.generator, path, fmt,
                                      blocks_per_chunk)
                run.run()
                if progress is not None:
                    progress(run.num_edges)
            paths = run.chunk_paths()
            return TrillionGResult(paths, self.num_vertices,
                                   run.num_edges,
                                   sum(p.stat().st_size for p in paths),
                                   sp.seconds,
                                   telemetry=self._report())
        with span("generate", scale=self.generator.scale, fmt=fmt,
                  resume=True):
            runner = LocalCluster(self.cluster)
            dist = runner.generate_checkpointed(
                self.generator, path, fmt, blocks_per_chunk,
                processes=processes, retry=self.retry,
                faults=self.faults, progress=progress)
        run = dist.checkpoint
        assert run is not None
        paths = run.chunk_paths()
        return TrillionGResult(paths, self.num_vertices, run.num_edges,
                               sum(p.stat().st_size for p in paths),
                               dist.elapsed_seconds, dist.skew,
                               telemetry=self._report())

    def _blocks_with_progress(
            self, progress: Callable[[int], None] | None
    ) -> Iterator[AdjacencyBlock]:
        """Yield blocks, reporting the cumulative edge count per block."""
        done = 0
        for block in self.generator.iter_blocks():
            yield block
            if progress is not None:
                done += block.num_edges
                progress(done)

    @staticmethod
    def _report() -> dict | None:
        """Snapshot the telemetry report, or ``None`` when disabled.

        Distributed runs also carry the verbatim per-worker snapshots
        (``worker_reports``) so trace export can draw one track per
        worker instead of only the merged aggregate.
        """
        if not telemetry_enabled():
            return None
        reports = worker_reports()
        extra = {"worker_reports": list(reports)} if reports else None
        return build_report(extra)
