"""Layer-free algorithmic utilities.

``util`` sits at the bottom of the package layering (see
``docs/static_analysis.md``): it may be imported from anywhere —
``core``, ``models``, ``dist``, ``formats`` — and must not import any of
those layers back.  It currently holds the external-sort machinery and
the hash shuffle, which the WES baselines (``models``) and the
distributed runners (``dist``) share.
"""

from .external_sort import (DEFAULT_CHUNK_ITEMS, DEFAULT_FAN_IN, MergePlan,
                            collect_chunks, external_sort_unique,
                            iter_unique_keys, merge_sorted_runs, write_run)
from .shuffle import (hash_partition, mix64, partition_sizes,
                      partition_slices)
from .spill import SpillStore, fsync_dir, fsync_file, write_run_chunks

__all__ = [
    "DEFAULT_CHUNK_ITEMS", "DEFAULT_FAN_IN", "MergePlan",
    "collect_chunks", "external_sort_unique", "iter_unique_keys",
    "merge_sorted_runs", "write_run", "write_run_chunks",
    "SpillStore", "fsync_file", "fsync_dir",
    "hash_partition", "mix64", "partition_sizes", "partition_slices",
]
