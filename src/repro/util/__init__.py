"""Layer-free algorithmic utilities.

``util`` sits at the bottom of the package layering (see
``docs/static_analysis.md``): it may be imported from anywhere —
``core``, ``models``, ``dist``, ``formats`` — and must not import any of
those layers back.  It currently holds the external-sort machinery and
the hash shuffle, which the WES baselines (``models``) and the
distributed runners (``dist``) share.
"""

from .external_sort import external_sort_unique, merge_sorted_runs, write_run
from .shuffle import hash_partition, mix64, partition_sizes

__all__ = [
    "external_sort_unique", "merge_sorted_runs", "write_run",
    "hash_partition", "mix64", "partition_sizes",
]
