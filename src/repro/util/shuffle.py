"""Hash shuffle of packed edge keys across workers (WES/p's line 7).

The shuffle hashes each edge key to a destination worker.  A multiplicative
mix (Fibonacci hashing) is applied first so that the skewed key space of a
scale-free graph does not map whole hub rows to one worker — although, as
the paper observes, hubs still concentrate and the resulting partition skew
is what limits WES/p's scalability.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mix64", "hash_partition", "partition_slices",
           "partition_sizes"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def mix64(keys: np.ndarray) -> np.ndarray:
    """SplitMix64-style finalizer over an int array (vectorized)."""
    x = keys.astype(np.uint64)
    x = (x + _GOLDEN)
    z = x
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


def partition_slices(keys: np.ndarray,
                     num_workers: int) -> tuple[np.ndarray, np.ndarray]:
    """Single-pass hash partition as ``(grouped_keys, offsets)``.

    ``grouped_keys`` holds every key reordered so worker ``w``'s
    partition is the contiguous slice
    ``grouped_keys[offsets[w]:offsets[w + 1]]`` — one stable argsort of
    the worker assignment plus one bincount, instead of ``num_workers``
    full boolean-mask passes over the key array.  Within each partition
    the original key order is preserved (the sort is stable), so
    consumers observe exactly the per-worker sequences the masked
    implementation produced.  ``offsets`` has ``num_workers + 1``
    entries; slicing it is zero-copy (numpy views).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    keys = np.asarray(keys, dtype=np.int64)
    if num_workers == 1:
        return keys, np.array([0, keys.size], dtype=np.int64)
    worker = (mix64(keys) % np.uint64(num_workers)).astype(np.int64)
    order = np.argsort(worker, kind="stable")
    counts = np.bincount(worker, minlength=num_workers)
    offsets = np.zeros(num_workers + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return keys[order], offsets


def hash_partition(keys: np.ndarray, num_workers: int) -> list[np.ndarray]:
    """Split ``keys`` into ``num_workers`` hash partitions.

    A thin list view over :func:`partition_slices`: the returned arrays
    are zero-copy slices of one grouped buffer.
    """
    grouped, offsets = partition_slices(keys, num_workers)
    return [grouped[offsets[w]:offsets[w + 1]]
            for w in range(num_workers)]


def partition_sizes(keys: np.ndarray, num_workers: int) -> np.ndarray:
    """Sizes of the hash partitions (for skew accounting)."""
    if num_workers == 1:
        return np.array([len(keys)], dtype=np.int64)
    worker = (mix64(np.asarray(keys)) % np.uint64(num_workers))
    return np.bincount(worker.astype(np.int64),
                       minlength=num_workers).astype(np.int64)
