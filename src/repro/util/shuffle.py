"""Hash shuffle of packed edge keys across workers (WES/p's line 7).

The shuffle hashes each edge key to a destination worker.  A multiplicative
mix (Fibonacci hashing) is applied first so that the skewed key space of a
scale-free graph does not map whole hub rows to one worker — although, as
the paper observes, hubs still concentrate and the resulting partition skew
is what limits WES/p's scalability.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mix64", "hash_partition", "partition_sizes"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


def mix64(keys: np.ndarray) -> np.ndarray:
    """SplitMix64-style finalizer over an int array (vectorized)."""
    x = keys.astype(np.uint64)
    x = (x + _GOLDEN)
    z = x
    z ^= z >> np.uint64(30)
    z *= np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(27)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


def hash_partition(keys: np.ndarray, num_workers: int) -> list[np.ndarray]:
    """Split ``keys`` into ``num_workers`` hash partitions."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if num_workers == 1:
        return [np.asarray(keys, dtype=np.int64)]
    worker = (mix64(np.asarray(keys))
              % np.uint64(num_workers)).astype(np.int64)
    return [np.asarray(keys, dtype=np.int64)[worker == w]
            for w in range(num_workers)]


def partition_sizes(keys: np.ndarray, num_workers: int) -> np.ndarray:
    """Sizes of the hash partitions (for skew accounting)."""
    if num_workers == 1:
        return np.array([len(keys)], dtype=np.int64)
    worker = (mix64(np.asarray(keys)) % np.uint64(num_workers))
    return np.bincount(worker.astype(np.int64),
                       minlength=num_workers).astype(np.int64)
