"""Atomic spill-run persistence for the external-memory merge engine.

The engine in :mod:`repro.util.external_sort` works over *runs*: flat
little-endian int64 files of sorted packed edge keys (``u * |V| + v``).
This module owns their durability discipline:

- every run becomes visible under its final name only via an atomic
  rename of a fully-written, flushed, fsynced ``*.partial`` temporary —
  a crash can never leave a torn run that a resumed merge would consume
  silently (the reader additionally rejects size-not-multiple-of-8
  files with :class:`~repro.errors.DataError`);
- :class:`SpillStore` names and tracks the runs of one producer and
  hands the whole set to the streaming merge
  (:func:`~repro.util.external_sort.iter_unique_keys`) in one call;
- every spill is counted in the ``extsort.*`` telemetry family
  (``docs/observability.md``) and, under ``TRILLIONG_SANITIZE=1``,
  recorded on the sanitizer write ledger in submission order — which is
  disk order, exactly the discipline of the format write pipeline.

``fsync_file`` / ``fsync_dir`` live here (the bottom layer) so both the
spill path and the checkpoint manifests in :mod:`repro.dist.checkpoint`
share one implementation.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..sanitize import record_write, sanitize_enabled
from ..telemetry import registry

__all__ = ["fsync_file", "fsync_dir", "write_run", "write_run_chunks",
           "SpillStore"]


def fsync_file(path: Path | str) -> None:
    """Flush ``path``'s data to stable storage."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path | str) -> None:
    """Flush a directory entry (after a rename) to stable storage.

    Best-effort: some platforms/filesystems refuse to fsync a directory
    handle; a rename there is as durable as it gets.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _RunLabel:
    """Stand-in passed to the sanitizer so a spill is recorded under its
    *final* name: the ``.partial.<pid>`` temporary the bytes physically
    go through embeds the pid and would make traces non-comparable."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


def write_run_chunks(chunks: Iterable[np.ndarray], path: Path | str
                     ) -> tuple[Path, int]:
    """Stream int64 key chunks into one run file atomically.

    Writes to ``<path>.partial.<pid>``, flushes, fsyncs, then renames
    into place (and fsyncs the directory entry), so ``path`` either does
    not exist or holds a complete run.  Returns ``(path, items)``.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.partial.{os.getpid()}")
    items = 0
    trace = sanitize_enabled()
    label = _RunLabel(path.name)
    try:
        with open(tmp, "wb") as handle:
            for chunk in chunks:
                arr = np.ascontiguousarray(np.asarray(chunk,
                                                      dtype=np.int64))
                if arr.size == 0:
                    continue
                if trace:
                    record_write(label, arr)
                handle.write(memoryview(arr))
                items += int(arr.size)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
    finally:
        tmp.unlink(missing_ok=True)
    fsync_dir(path.parent)
    reg = registry()
    reg.counter("extsort.runs_spilled").inc()
    reg.counter("extsort.spill_bytes").inc(items * 8)
    return path, items


def write_run(keys: np.ndarray, path: Path | str) -> Path:
    """Spill one sorted run of int64 keys to ``path`` atomically."""
    run_path, _ = write_run_chunks((keys,), path)
    return run_path


class SpillStore:
    """A directory of sorted spill runs plus their streaming merge.

    Producers (the disk-based generators, the distributed reducers) call
    :meth:`add_run` once per sorted in-memory batch, then consume
    :meth:`iter_unique` — the bounded-RAM multi-pass merge over
    everything spilled, with intermediate merge passes written under
    ``<directory>/merge``.
    """

    def __init__(self, directory: Path | str, *, prefix: str = "run"
                 ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._prefix = prefix
        self._runs: list[Path] = []

    @property
    def runs(self) -> tuple[Path, ...]:
        """The spilled run paths, in spill order."""
        return tuple(self._runs)

    @property
    def num_runs(self) -> int:
        return len(self._runs)

    def add_run(self, keys: np.ndarray) -> Path:
        """Spill one sorted key batch as the next run."""
        path = self.directory / f"{self._prefix}-{len(self._runs):06d}.run"
        write_run(keys, path)
        self._runs.append(path)
        return path

    def iter_unique(self, *, chunk_items: int | None = None,
                    fan_in: int | None = None, prefetch: bool = True,
                    resume: bool = False) -> Iterator[np.ndarray]:
        """Stream the sorted, duplicate-free union of every run.

        Peak memory is ``O(fan_in * chunk_items)`` keys regardless of
        the total spilled volume; see
        :func:`repro.util.external_sort.iter_unique_keys`.
        """
        from .external_sort import (DEFAULT_CHUNK_ITEMS, DEFAULT_FAN_IN,
                                    iter_unique_keys)
        return iter_unique_keys(
            self._runs,
            chunk_items=(DEFAULT_CHUNK_ITEMS if chunk_items is None
                         else chunk_items),
            fan_in=DEFAULT_FAN_IN if fan_in is None else fan_in,
            spill_dir=self.directory / "merge",
            prefetch=prefetch, resume=resume)
