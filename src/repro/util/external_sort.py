"""External sort with duplicate elimination: the bounded-RAM merge engine.

The disk-based WES variants (RMAT-disk, WES/p-disk) eliminate repeated
edges by external sort: sorted runs are spilled to disk during generation
(:mod:`repro.util.spill`) and k-way merged afterwards with equal keys
collapsed.  Runs are flat little-endian int64 files of packed edge keys
(``u * |V| + v``).

The engine is pipelined and memory-bounded end to end
(``docs/external_memory.md``):

- :func:`merge_sorted_runs` streams one k-way merge in chunks, so its
  peak memory is ``O(k * chunk)`` keys;
- :func:`iter_unique_keys` caps ``k`` at a configurable **fan-in**:
  when more runs exist than the fan-in, groups of ``fan_in`` runs are
  merged into intermediate runs (a *merge pass*, planned by
  :class:`MergePlan`) until one final merge of at most ``fan_in`` runs
  can stream to the consumer — peak memory ``O(fan_in * chunk)`` keys
  regardless of run count or total volume;
- run readers optionally **prefetch**: a daemon thread reads the next
  chunk while the merge consumes the current one (the
  ``ThreadedSink`` pattern from :mod:`repro.formats.pipeline`, with the
  same deferred-error discipline — a reader thread failure surfaces on
  the consumer side, never silently truncates a merge);
- intermediate merge passes are **resumable**: with ``resume=True`` a
  manifest (fsync + atomic rename, like the checkpoint layer) records
  completed intermediate runs, and a re-run after SIGKILL skips them —
  including adoption of runs completed in the rename -> manifest
  window, after verifying they are strictly increasing.

Everything is observable through the ``extsort.*`` telemetry family
(``docs/observability.md``).
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from ..errors import ConfigurationError, DataError
from ..telemetry import Stopwatch, registry
from .spill import fsync_dir, write_run, write_run_chunks

__all__ = ["DEFAULT_CHUNK_ITEMS", "DEFAULT_FAN_IN", "MergePlan",
           "write_run", "merge_sorted_runs", "iter_unique_keys",
           "collect_chunks", "external_sort_unique"]

#: Keys buffered per run by the merge (512 KiB of int64 per reader).
DEFAULT_CHUNK_ITEMS = 1 << 16
#: Runs merged at once before an intermediate pass is triggered.
DEFAULT_FAN_IN = 16


class _RunReader:
    """Chunked sequential reader over one sorted run file.

    Holds one file handle for the lifetime of the reader (a k-way merge
    calls ``next_chunk`` O(total/chunk) times per run; reopening and
    seeking every call costs a syscall pair per chunk and defeats the
    OS readahead).  Close via :meth:`close` or use as a context manager.

    Rejects files whose size is not a whole number of int64 keys: runs
    are written atomically (:mod:`repro.util.spill`), so a ragged size
    means a torn artifact from a foreign writer — merging its prefix
    silently would corrupt a resumed run.
    """

    def __init__(self, path: Path, chunk_items: int) -> None:
        self._path = Path(path)
        self._chunk = max(chunk_items, 1)
        self._offset = 0
        size = self._path.stat().st_size
        if size % 8 != 0:
            raise DataError(
                f"torn spill run {self._path.name}: {size} bytes is not "
                "a whole number of int64 keys (crashed non-atomic "
                "writer?); delete the file and regenerate")
        self._total = size // 8
        self._file = open(self._path, "rb")

    def next_chunk(self) -> np.ndarray | None:
        """Return the next chunk of keys, or None at end of run."""
        if self._offset >= self._total:
            return None
        count = min(self._chunk, self._total - self._offset)
        # The handle is private and only advanced here, so the file
        # position is always exactly offset * 8: plain sequential reads.
        chunk = np.fromfile(self._file, dtype=np.int64, count=count)
        self._offset += count
        return chunk

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "_RunReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __iter__(self) -> Iterator[int]:
        while True:
            chunk = self.next_chunk()
            if chunk is None:
                return
            yield from chunk.tolist()


class _PrefetchReader:
    """Double-buffered read-ahead over a :class:`_RunReader`.

    A daemon thread keeps a small bounded queue of upcoming chunks
    filled, so disk latency overlaps the merge's CPU work — the read
    side of the ``ThreadedSink`` pattern (:mod:`repro.formats.pipeline`)
    with the same torn-handoff discipline: an exception in the reader
    thread is parked and re-raised on the *consumer* side by the next
    :meth:`next_chunk`, never swallowed into a silently-short run.

    Time the consumer spends blocked on an empty queue (i.e. disk slower
    than merge) accumulates into ``extsort.readahead_wait_seconds``.
    """

    #: Chunks buffered ahead of the consumer (double buffering).
    DEPTH = 2
    _DONE = object()

    def __init__(self, path: Path, chunk_items: int) -> None:
        self._reader = _RunReader(path, chunk_items)
        self._queue: queue.Queue = queue.Queue(maxsize=self.DEPTH)
        self._error: BaseException | None = None
        self._error_lock = threading.Lock()
        self._stop = threading.Event()
        self._wait_watch = Stopwatch()
        self._thread = threading.Thread(
            target=self._pump, name=f"extsort-prefetch-{Path(path).name}",
            daemon=True)
        self._thread.start()

    def _pump(self) -> None:
        try:
            while not self._stop.is_set():
                chunk = self._reader.next_chunk()
                self._put(chunk if chunk is not None else self._DONE)
                if chunk is None:
                    return
        except (OSError, ValueError, DataError) as exc:
            with self._error_lock:
                self._error = exc
            self._put(self._DONE)

    def _put(self, item: object) -> None:
        # Bounded put with a stop check so close() never deadlocks
        # against a full queue the consumer stopped draining.
        while True:
            try:
                self._queue.put(item, timeout=0.05)
                return
            except queue.Full:
                if self._stop.is_set():
                    return

    def _check(self) -> None:
        with self._error_lock:
            error, self._error = self._error, None
        if error is not None:
            raise error

    def next_chunk(self) -> np.ndarray | None:
        with self._wait_watch:
            item = self._queue.get()
        if item is self._DONE:
            self._check()
            return None
        return item  # type: ignore[return-value]

    def close(self) -> None:
        self._stop.set()
        # Drain so a blocked producer put() can observe the stop flag.
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join()
        self._reader.close()
        registry().counter("extsort.readahead_wait_seconds").inc(
            self._wait_watch.seconds)

    def __enter__(self) -> "_PrefetchReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def merge_sorted_runs(paths: Iterable[Path],
                      chunk_items: int = DEFAULT_CHUNK_ITEMS, *,
                      prefetch: bool = False) -> Iterator[np.ndarray]:
    """K-way merge of sorted runs, yielding sorted, duplicate-free chunks.

    The merge loop is fully vectorized: with every live run holding a
    non-empty buffered chunk, everything at or below
    ``bound = min(buffer tails)`` across *all* runs is already buffered,
    so each iteration slices those prefixes out (one ``searchsorted``
    per run), emits ``np.unique`` of their concatenation, and refills
    the run(s) whose buffer drained.  At least one whole chunk is
    consumed per iteration, so the loop runs O(total / chunk_items)
    times regardless of how tightly the runs interleave — a per-element
    heap merge degrades to O(total) Python steps on runs that each span
    the whole key space, which is exactly what RMAT spills look like.

    Keys equal to ``bound`` may recur at the head of a refilled chunk
    (an intra-run duplicate straddling a chunk boundary); the
    ``last_emitted`` guard drops them on the next iteration.

    With ``prefetch`` each run is read through a background read-ahead
    thread (:class:`_PrefetchReader`), overlapping disk I/O with merge
    CPU.  Peak buffered volume (per-run chunks plus the pending output)
    is sampled into the ``extsort.peak_buffered_items`` max-gauge.
    """
    peak_gauge = registry().gauge("extsort.peak_buffered_items",
                                  mode="max")
    readers: list[_RunReader | _PrefetchReader] = []
    try:
        for p in paths:
            readers.append(_PrefetchReader(p, chunk_items) if prefetch
                           else _RunReader(p, chunk_items))
        buffers: dict[int, np.ndarray] = {}

        def refill(idx: int) -> None:
            while True:
                chunk = readers[idx].next_chunk()
                if chunk is None:
                    buffers.pop(idx, None)
                    return
                if chunk.size:
                    buffers[idx] = chunk
                    return

        for idx in range(len(readers)):
            refill(idx)

        last_emitted: int | None = None
        while buffers:
            bound = min(int(arr[-1]) for arr in buffers.values())
            parts = []
            for idx in list(buffers):
                arr = buffers[idx]
                cut = int(np.searchsorted(arr, bound, side="right"))
                if cut == 0:
                    continue
                parts.append(arr[:cut])
                if cut < arr.size:
                    buffers[idx] = arr[cut:]
                else:
                    refill(idx)
            # The concatenation is k already-sorted runs — timsort's
            # best case, and far faster than hash-based np.unique.
            merged = np.sort(np.concatenate(parts), kind="stable")
            keep = np.empty(merged.size, dtype=bool)
            keep[0] = True
            np.not_equal(merged[1:], merged[:-1], out=keep[1:])
            merged = merged[keep]
            if last_emitted is not None:
                start = int(np.searchsorted(merged, last_emitted,
                                            side="right"))
                merged = merged[start:]
            peak_gauge.set(float(
                sum(int(a.size) for a in buffers.values())
                + int(merged.size)))
            if merged.size:
                last_emitted = int(merged[-1])
                yield merged
    finally:
        # Generator finalization (exhaustion, close(), or an exception
        # mid-merge) must not leak the per-run handles or threads.
        for reader in readers:
            reader.close()


@dataclass(frozen=True)
class MergePlan:
    """Deterministic multi-pass merge schedule for bounded fan-in.

    ``passes[k]`` holds the ``(lo, hi)`` group slices over the run list
    entering intermediate pass ``k`` (each group at most ``fan_in`` runs
    wide, groups in run order); after the last intermediate pass at most
    ``fan_in`` runs remain for the final streaming merge.  The schedule
    is a pure function of ``(num_runs, fan_in)`` — the property resume
    relies on to re-derive intermediate run names after a crash.
    """

    num_runs: int
    fan_in: int
    passes: tuple[tuple[tuple[int, int], ...], ...]

    @classmethod
    def plan(cls, num_runs: int, fan_in: int) -> "MergePlan":
        if fan_in < 2:
            raise ConfigurationError("fan_in must be >= 2")
        if num_runs < 0:
            raise ConfigurationError("num_runs must be >= 0")
        passes: list[tuple[tuple[int, int], ...]] = []
        n = num_runs
        while n > fan_in:
            groups = tuple((lo, min(lo + fan_in, n))
                           for lo in range(0, n, fan_in))
            passes.append(groups)
            n = len(groups)
        return cls(num_runs, fan_in, tuple(passes))

    @property
    def num_intermediate_passes(self) -> int:
        return len(self.passes)

    @property
    def num_intermediate_runs(self) -> int:
        return sum(len(groups) for groups in self.passes)


class _MergeManifest:
    """Resume ledger for completed intermediate merge runs.

    The checkpoint-manifest discipline (:mod:`repro.dist.checkpoint`)
    applied to merge passes: a JSON manifest keyed by a **signature** of
    the merge inputs (run basenames + sizes + fan-in) records every
    intermediate run that finished, and is itself written via fsync +
    atomic rename so power loss never surfaces a truncated ledger.

    On open: stale ``*.partial*`` temporaries are swept; if the manifest
    is missing, unparsable, or signed for different inputs, leftover
    intermediate runs are **purged** (their provenance cannot be
    verified) and the merge starts clean.  A run completed in the
    rename -> manifest window of a matching-signature crash is *adopted*
    after verifying it is strictly increasing, instead of re-merged.
    """

    FILENAME = "extsort-manifest.json"

    def __init__(self, directory: Path, run_paths: list[Path],
                 fan_in: int) -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self.signature = self._signature(run_paths, fan_in)
        self.completed: dict[str, int] = {}
        matched = self._load()
        self._sweep(purge_runs=not matched)

    @staticmethod
    def _signature(run_paths: list[Path], fan_in: int) -> str:
        doc = {"fan_in": fan_in,
               "runs": [[Path(p).name, Path(p).stat().st_size]
                        for p in run_paths]}
        payload = json.dumps(doc, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def _load(self) -> bool:
        """Parse the manifest; True iff it matches this merge's inputs."""
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
            if doc.get("signature") != self.signature:
                return False
            self.completed = {str(name): int(size)
                              for name, size in doc["completed"].items()}
            return True
        except (OSError, json.JSONDecodeError, KeyError, TypeError,
                ValueError, AttributeError):
            return False

    def _sweep(self, *, purge_runs: bool) -> None:
        for tmp in self.directory.glob("*.partial*"):
            tmp.unlink(missing_ok=True)
        if purge_runs:
            # No trustworthy ledger: leftover intermediates may belong
            # to different inputs (same deterministic names), so they
            # cannot be adopted — sortedness alone does not prove
            # provenance.
            for stale in self.directory.glob("merge-*.run"):
                stale.unlink(missing_ok=True)
            self.completed = {}

    def mark(self, path: Path) -> None:
        """Record ``path`` as a completed intermediate run (durable)."""
        self.completed[path.name] = path.stat().st_size
        doc = {"signature": self.signature, "completed": self.completed}
        tmp = self.path.with_name(
            f"{self.path.name}.partial.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(doc, handle)
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(self.path)
        finally:
            tmp.unlink(missing_ok=True)
        fsync_dir(self.directory)

    def is_complete(self, path: Path, chunk_items: int) -> bool:
        """True iff ``path`` is a finished intermediate run we may reuse."""
        recorded = self.completed.get(path.name)
        if recorded is not None:
            if path.exists() and path.stat().st_size == recorded \
                    and recorded % 8 == 0:
                return True
            del self.completed[path.name]
            return False
        if not path.exists():
            return False
        # Rename -> manifest crash window: the file carries our
        # deterministic name and the ledger's signature matches this
        # input set, so adopt it once its content checks out.
        if _verify_strictly_increasing(path, chunk_items):
            self.mark(path)
            return True
        path.unlink(missing_ok=True)
        return False


def _verify_strictly_increasing(path: Path, chunk_items: int) -> bool:
    """Streaming check that a run is sorted and duplicate-free."""
    try:
        with _RunReader(path, chunk_items) as reader:
            last: int | None = None
            while (chunk := reader.next_chunk()) is not None:
                if chunk.size == 0:
                    continue
                if last is not None and int(chunk[0]) <= last:
                    return False
                if chunk.size > 1 and not bool(
                        np.all(chunk[1:] > chunk[:-1])):
                    return False
                last = int(chunk[-1])
        return True
    except (DataError, OSError):
        return False


def iter_unique_keys(paths: Iterable[Path], *,
                     chunk_items: int = DEFAULT_CHUNK_ITEMS,
                     fan_in: int = DEFAULT_FAN_IN,
                     spill_dir: Path | str | None = None,
                     prefetch: bool = True,
                     resume: bool = False) -> Iterator[np.ndarray]:
    """Stream the sorted, duplicate-free union of sorted runs.

    The bounded-RAM entry point: at most ``fan_in`` runs are ever open
    in one merge, so peak memory is ``O(fan_in * chunk_items)`` keys.
    More runs than ``fan_in`` trigger intermediate merge passes
    (:class:`MergePlan`) whose outputs land in ``spill_dir`` (a private
    temporary directory when ``None``).  With ``resume=True`` (requires
    a persistent ``spill_dir``) completed intermediate runs from an
    interrupted earlier call are skipped via :class:`_MergeManifest`.
    """
    runs = [Path(p) for p in paths]
    if fan_in < 2:
        raise ConfigurationError("fan_in must be >= 2")
    if chunk_items < 1:
        raise ConfigurationError("chunk_items must be >= 1")
    if resume and spill_dir is None:
        raise ConfigurationError(
            "resume=True requires a persistent spill_dir")
    reg = registry()
    reg.gauge("extsort.fan_in").set(float(fan_in))
    if len(runs) <= fan_in:
        yield from merge_sorted_runs(runs, chunk_items, prefetch=prefetch)
        return
    own: tempfile.TemporaryDirectory | None = None
    if spill_dir is None:
        own = tempfile.TemporaryDirectory(prefix="extsort-")
        work = Path(own.name)
    else:
        work = Path(spill_dir)
        work.mkdir(parents=True, exist_ok=True)
    try:
        plan = MergePlan.plan(len(runs), fan_in)
        manifest = _MergeManifest(work, runs, fan_in) if resume else None
        level_runs = runs
        for level, groups in enumerate(plan.passes):
            next_runs: list[Path] = []
            for gi, (lo, hi) in enumerate(groups):
                out = work / f"merge-L{level:02d}-G{gi:05d}.run"
                if manifest is not None and manifest.is_complete(
                        out, chunk_items):
                    reg.counter("extsort.merge_runs_resumed").inc()
                else:
                    write_run_chunks(
                        merge_sorted_runs(level_runs[lo:hi], chunk_items,
                                          prefetch=prefetch), out)
                    if manifest is not None:
                        manifest.mark(out)
                next_runs.append(out)
            reg.counter("extsort.merge_passes").inc()
            level_runs = next_runs
        yield from merge_sorted_runs(level_runs, chunk_items,
                                     prefetch=prefetch)
    finally:
        if own is not None:
            own.cleanup()


def collect_chunks(chunks: Iterable[np.ndarray]) -> np.ndarray:
    """Materialize a key-chunk stream into one int64 array.

    The engine's *explicit* in-memory terminal: APIs whose contract is a
    whole edge array (``ScopeBasedGenerator.generate``) route through
    this helper so every full materialization is visible and greppable.
    Inline collection of a merge stream in the producer layers
    (``np.concatenate(list(...))`` and friends) is flagged by reprolint
    RPL520 — stream to a writer instead whenever possible.
    """
    parts = [np.asarray(chunk, dtype=np.int64) for chunk in chunks]
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


def external_sort_unique(paths: Iterable[Path],
                         chunk_items: int = DEFAULT_CHUNK_ITEMS, *,
                         fan_in: int = DEFAULT_FAN_IN,
                         spill_dir: Path | str | None = None
                         ) -> np.ndarray:
    """Merge sorted runs into one duplicate-free sorted array.

    Compatibility wrapper over :func:`iter_unique_keys` +
    :func:`collect_chunks` — by construction it holds the whole merged
    set in memory, so the bounded-RAM paths (models, dist) must use the
    streaming API instead (enforced by reprolint RPL520).
    """
    return collect_chunks(iter_unique_keys(
        paths, chunk_items=chunk_items, fan_in=fan_in,
        spill_dir=spill_dir, prefetch=False))
