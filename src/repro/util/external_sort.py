"""External sort with duplicate elimination.

The disk-based WES variants (RMAT-disk, WES/p-disk) eliminate repeated
edges by external sort: sorted runs are spilled to disk during generation
and k-way merged afterwards with equal keys collapsed.  Runs are flat
little-endian int64 files of packed edge keys (``u * |V| + v``).

The merge streams each run in bounded chunks, so peak memory is
``O(num_runs * chunk)`` regardless of the total edge count.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

__all__ = ["write_run", "external_sort_unique", "merge_sorted_runs"]


def write_run(keys: np.ndarray, path: Path) -> Path:
    """Spill one sorted run of int64 keys to ``path``."""
    np.asarray(keys, dtype=np.int64).tofile(path)
    return Path(path)


class _RunReader:
    """Chunked sequential reader over one sorted run file.

    Holds one file handle for the lifetime of the reader (a k-way merge
    calls ``next_chunk`` O(total/chunk) times per run; reopening and
    seeking every call costs a syscall pair per chunk and defeats the
    OS readahead).  Close via :meth:`close` or use as a context manager.
    """

    def __init__(self, path: Path, chunk_items: int) -> None:
        self._path = Path(path)
        self._chunk = max(chunk_items, 1)
        self._offset = 0
        self._total = self._path.stat().st_size // 8
        self._file = open(self._path, "rb")

    def next_chunk(self) -> np.ndarray | None:
        """Return the next chunk of keys, or None at end of run."""
        if self._offset >= self._total:
            return None
        count = min(self._chunk, self._total - self._offset)
        # The handle is private and only advanced here, so the file
        # position is always exactly offset * 8: plain sequential reads.
        chunk = np.fromfile(self._file, dtype=np.int64, count=count)
        self._offset += count
        return chunk

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "_RunReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __iter__(self) -> Iterator[int]:
        while True:
            chunk = self.next_chunk()
            if chunk is None:
                return
            yield from chunk.tolist()


def merge_sorted_runs(paths: Iterable[Path],
                      chunk_items: int = 1 << 16) -> Iterator[np.ndarray]:
    """K-way merge of sorted runs, yielding sorted, duplicate-free chunks.

    Uses a chunk-level merge: repeatedly take the run whose buffered chunk
    has the smallest head, emit the prefix that is safely below every other
    run's head, and refill.  Falls back to heapq element merge only inside
    overlapping regions via numpy merging, keeping the loop vectorized.
    """
    readers = []
    try:
        for p in paths:
            readers.append(_RunReader(p, chunk_items))
        # Simple robust strategy: heap of (first_key, run_index).
        heap: list[tuple[int, int]] = []
        chunks: dict[int, np.ndarray] = {}
        positions: dict[int, int] = {}
        for idx, reader in enumerate(readers):
            chunk = reader.next_chunk()
            if chunk is not None and chunk.size:
                chunks[idx] = chunk
                positions[idx] = 0
                heapq.heappush(heap, (int(chunk[0]), idx))

        pending: list[np.ndarray] = []
        pending_items = 0
        last_emitted: int | None = None

        def flush() -> Iterator[np.ndarray]:
            nonlocal pending, pending_items, last_emitted
            if not pending:
                return
            merged = np.concatenate(pending)
            pending = []
            pending_items = 0
            if merged.size:
                out = np.sort(merged)
                keep = np.empty(out.size, dtype=bool)
                keep[0] = last_emitted is None or out[0] != last_emitted
                np.not_equal(out[1:], out[:-1], out=keep[1:])
                out = out[keep]
                if out.size:
                    last_emitted = int(out[-1])
                    yield out

        while heap:
            _, idx = heapq.heappop(heap)
            chunk = chunks[idx]
            pos = positions[idx]
            if heap:
                # Emit the part of this chunk that is <= the next run's
                # head; anything beyond may interleave with other runs.
                bound = heap[0][0]
                cut = int(np.searchsorted(chunk, bound, side="right"))
                cut = max(cut, pos + 1)
            else:
                cut = chunk.size
            pending.append(chunk[pos:cut])
            pending_items += cut - pos
            if cut < chunk.size:
                positions[idx] = cut
                heapq.heappush(heap, (int(chunk[cut]), idx))
            else:
                refill = readers[idx].next_chunk()
                if refill is not None and refill.size:
                    chunks[idx] = refill
                    positions[idx] = 0
                    heapq.heappush(heap, (int(refill[0]), idx))
                else:
                    chunks.pop(idx, None)
                    positions.pop(idx, None)
            if pending_items >= chunk_items:
                yield from flush()
        yield from flush()
    finally:
        # Generator finalization (exhaustion, close(), or an exception
        # mid-merge) must not leak the per-run handles.
        for reader in readers:
            reader.close()


def external_sort_unique(paths: Iterable[Path],
                         chunk_items: int = 1 << 16) -> np.ndarray:
    """Merge sorted runs into one duplicate-free sorted array."""
    parts = list(merge_sorted_runs(paths, chunk_items))
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)
