"""Output validation: check a generated graph against its configuration.

A synthetic-graph generator's outputs feed benchmarks, so a wrong graph
silently invalidates whole experiments.  This module re-derives the
properties a correct TrillionG output must have — simple (duplicate-free),
IDs in range, realized edge count consistent with Theorem 1, and the
Lemma 6 degree slope of the configured seed — and reports them as a
structured check list (also exposed as ``trilliong verify`` on the CLI).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .analysis.degree import out_degrees
from .analysis.fitting import fit_kronecker_class_slope
from .core.seed import SeedMatrix

__all__ = ["Check", "ValidationReport", "validate_edges"]


@dataclass(frozen=True)
class Check:
    """One validation check's outcome."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass
class ValidationReport:
    """All checks for one graph."""

    checks: list[Check]

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def failed(self) -> list[Check]:
        return [c for c in self.checks if not c.passed]

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.checks)


def validate_edges(edges: np.ndarray, num_vertices: int, *,
                   seed_matrix: SeedMatrix | None = None,
                   expected_edges: int | None = None,
                   expect_simple: bool = True,
                   slope_tolerance: float = 0.35) -> ValidationReport:
    """Validate a generated edge array.

    Parameters
    ----------
    edges, num_vertices:
        The graph to check.
    seed_matrix:
        When given, the out-degree Zipf class slope is checked against
        Lemma 6's prediction for this seed.
    expected_edges:
        When given, the realized count must lie within 5 standard
        deviations of the Theorem 1 target (binomial spread), unless hub
        scopes were clipped at |V|.
    expect_simple:
        Require no repeated (u, v) pairs (TrillionG's default contract).
    """
    checks: list[Check] = []
    m = edges.shape[0]

    # Structure.
    shape_ok = edges.ndim == 2 and (m == 0 or edges.shape[1] == 2)
    checks.append(Check("shape", shape_ok,
                        f"edge array shape {edges.shape}"))
    if not shape_ok:
        return ValidationReport(checks)

    if m:
        in_range = bool(edges.min() >= 0 and edges.max() < num_vertices)
        checks.append(Check(
            "ids-in-range", in_range,
            f"ids span [{edges.min()}, {edges.max()}] for "
            f"|V|={num_vertices}"))
    else:
        checks.append(Check("ids-in-range", True, "empty graph"))

    if expect_simple and m:
        packed = edges[:, 0] * np.int64(num_vertices) + edges[:, 1]
        unique = int(np.unique(packed).size)
        checks.append(Check(
            "no-duplicate-edges", unique == m,
            f"{m - unique} duplicate pairs" if unique != m
            else "all pairs distinct"))

    if expected_edges is not None:
        spread = 5 * math.sqrt(max(expected_edges, 1)) + 10
        deviation = abs(m - expected_edges)
        degrees = out_degrees(edges, num_vertices) if m else \
            np.zeros(num_vertices, dtype=np.int64)
        clipped = bool((degrees >= num_vertices).any())
        count_ok = deviation < spread or (clipped and m < expected_edges)
        checks.append(Check(
            "edge-count", count_ok,
            f"realized {m} vs target {expected_edges} "
            f"(tolerance ±{spread:.0f}"
            + (", hub clipped" if clipped else "") + ")"))

    if seed_matrix is not None and m:
        degrees = out_degrees(edges, num_vertices)
        predicted = seed_matrix.out_zipf_slope()
        try:
            measured = fit_kronecker_class_slope(degrees)
            slope_ok = abs(measured - predicted) < slope_tolerance
            detail = (f"measured {measured:.3f} vs Lemma 6 "
                      f"{predicted:.3f}")
        except ValueError as exc:
            slope_ok = False
            detail = f"slope fit failed: {exc}"
        checks.append(Check("zipf-slope", slope_ok, detail))

    return ValidationReport(checks)
