"""Seed fitting and GSCALER-style graph scaling (paper Section 8 future
work, built on the recursive vector model)."""

from .moments import SeedFit, edge_bit_moments, fit_seed_matrix
from .scaler import GraphScaler

__all__ = ["SeedFit", "edge_bit_moments", "fit_seed_matrix", "GraphScaler"]
