"""GSCALER-style graph scaling on top of the recursive vector model.

GSCALER (cited as the representative sampling-based method, Section 8)
produces a large graph *similar to a given small graph*.  TrillionG's
stochastic machinery enables a simple, scalable version of the same idea:

1. fit a seed matrix to the input graph (:mod:`repro.fit.moments`) —
   this captures its in-/out-degree skews and their correlation;
2. re-generate at any target scale with the recursive vector model,
   keeping the observed edge density (``|E|/|V|``).

The scaled graph matches the original in mean degree, Zipf slopes of both
degree marginals, and the source/destination bit correlation — the
"in-/out-degree correlation of nodes and edges" GSCALER is built around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.generator import RecursiveVectorGenerator
from ..errors import ConfigurationError
from .moments import SeedFit, fit_seed_matrix

__all__ = ["GraphScaler"]


@dataclass
class GraphScaler:
    """Fit once, then generate similar graphs at arbitrary scales.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import RecursiveVectorGenerator
    >>> from repro.fit import GraphScaler
    >>> small = RecursiveVectorGenerator(10, 8, seed=1).edges()
    >>> scaler = GraphScaler.fit(small, num_vertices=1024)
    >>> big = scaler.scale_to(scale=14, seed=2)   # 16x the vertices
    """

    fit_result: SeedFit

    @classmethod
    def fit(cls, edges: np.ndarray, num_vertices: int) -> "GraphScaler":
        """Fit the scaler to an observed graph."""
        return cls(fit_seed_matrix(edges, num_vertices))

    @property
    def seed_matrix(self):
        return self.fit_result.seed_matrix

    def generator(self, scale: int, seed: int = 0, *,
                  noise: float = 0.0,
                  engine: str = "vectorized") -> RecursiveVectorGenerator:
        """Build a generator for the scaled graph (``|V| = 2**scale``),
        preserving the fitted seed and the observed edge density."""
        if scale < 1:
            raise ConfigurationError("scale must be >= 1")
        num_edges = max(int(round(self.fit_result.edge_factor
                                  * (1 << scale))), 1)
        return RecursiveVectorGenerator(
            scale, seed_matrix=self.seed_matrix, num_edges=num_edges,
            noise=noise, engine=engine, seed=seed)

    def scale_to(self, scale: int, seed: int = 0, **kwargs) -> np.ndarray:
        """Generate the scaled graph's edges."""
        return self.generator(scale, seed, **kwargs).edges()
