"""Seed-matrix estimation from an observed graph (moment matching).

Section 8 of the paper points at GSCALER-style scaling — "synthetically
scaling a given graph" — as future work for TrillionG.  The missing piece
is recovering RMAT seed parameters from an observed graph; this module
does it with closed-form moment matching, a light-weight alternative to
KronFit's likelihood maximization.

Derivation
----------
Under the RMAT process with ``|V| = 2^L``, each edge's (source bit,
destination bit) pair at every level is drawn from the seed matrix, so for
an edge ``(u, v)`` chosen by the process:

- ``E[Bits(u)] / L   = gamma + delta``   (source bit is 1),
- ``E[Bits(v)] / L   = beta + delta``    (destination bit is 1),
- ``E[Bits(u & v)]/L = delta``           (both bits are 1).

Averaging the three popcount statistics over the observed edges therefore
identifies ``delta``, then ``beta``, ``gamma``, and ``alpha = 1 - rest``
directly.  The estimator is consistent; its error shrinks like
``1 / sqrt(|E| * L)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.seed import SeedMatrix
from ..errors import ConfigurationError

__all__ = ["SeedFit", "fit_seed_matrix", "edge_bit_moments"]


@dataclass(frozen=True)
class SeedFit:
    """Result of fitting a seed matrix to an observed edge set."""

    seed_matrix: SeedMatrix
    levels: int
    num_edges: int
    #: Raw per-level bit moments (source-1, destination-1, both-1).
    moments: tuple[float, float, float]

    @property
    def edge_factor(self) -> float:
        """Observed ``|E| / |V|`` (for regenerating at the same density)."""
        return self.num_edges / (1 << self.levels)


def edge_bit_moments(edges: np.ndarray,
                     levels: int) -> tuple[float, float, float]:
    """Per-level fractions of (source=1, destination=1, both=1) bits."""
    if edges.shape[0] == 0:
        raise ConfigurationError("cannot fit a seed to an empty graph")
    u = edges[:, 0].astype(np.uint64)
    v = edges[:, 1].astype(np.uint64)
    total_bits = edges.shape[0] * levels
    src_ones = float(np.bitwise_count(u).sum(dtype=np.int64)) / total_bits
    dst_ones = float(np.bitwise_count(v).sum(dtype=np.int64)) / total_bits
    both_ones = float(np.bitwise_count(u & v).sum(dtype=np.int64)) \
        / total_bits
    return src_ones, dst_ones, both_ones


def fit_seed_matrix(edges: np.ndarray, num_vertices: int,
                    clip: float = 1e-4) -> SeedFit:
    """Estimate the 2x2 seed matrix that generated ``edges``.

    Parameters
    ----------
    edges:
        Observed ``(m, 2)`` edge array over ``[0, num_vertices)``.
    num_vertices:
        Must be a power of two (vertex IDs are read as L-bit strings).
    clip:
        Lower bound applied to each estimated entry so downstream
        generators never receive a degenerate (zero) parameter from a
        finite sample.
    """
    if num_vertices < 2 or num_vertices & (num_vertices - 1):
        raise ConfigurationError(
            "fit_seed_matrix requires |V| to be a power of two")
    levels = num_vertices.bit_length() - 1
    src_ones, dst_ones, both_ones = edge_bit_moments(edges, levels)
    delta = both_ones
    gamma = src_ones - delta
    beta = dst_ones - delta
    alpha = 1.0 - delta - gamma - beta
    values = np.clip([alpha, beta, gamma, delta], clip, None)
    values = values / values.sum()
    seed = SeedMatrix.rmat(*values)
    return SeedFit(seed, levels, edges.shape[0],
                   (src_ones, dst_ones, both_ones))
