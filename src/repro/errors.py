"""Exception hierarchy for the TrillionG reproduction.

All library errors derive from :class:`TrillionGError` so callers can catch
one base class.  Simulated resource failures (e.g. an out-of-memory abort in
the cluster cost model, mirroring the paper's "O.O.M" bars in Figures 11 and
14) raise :class:`OutOfMemoryError` rather than actually exhausting RAM.
"""

from __future__ import annotations

__all__ = [
    "TrillionGError",
    "ConfigurationError",
    "SeedMatrixError",
    "FormatError",
    "DataError",
    "OutOfMemoryError",
    "CapacityError",
    "GenerationError",
    "WorkerError",
    "TaskTimeout",
    "ContractViolation",
]


class TrillionGError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigurationError(TrillionGError, ValueError):
    """An invalid parameter, seed matrix, or graph configuration."""


class SeedMatrixError(ConfigurationError):
    """A seed probability matrix is malformed (shape, range, or sum)."""


class FormatError(TrillionGError, ValueError):
    """A graph file is malformed or uses an unknown format name."""


class DataError(TrillionGError, ValueError):
    """An on-disk intermediate artifact is malformed.

    Raised by the external-memory layer when a spill run fails its shape
    invariants (e.g. a file whose size is not a whole number of int64
    keys — the signature of a torn, non-atomic write).  Distinct from
    :class:`FormatError`, which covers the *graph output* formats; this
    covers the engine's own scratch files, where silently merging a torn
    run would corrupt a resumed generation.
    """


class OutOfMemoryError(TrillionGError, MemoryError):
    """A (simulated or enforced) memory budget was exceeded.

    The scope-based generators accept a ``memory_budget`` in bytes; a
    generator whose working set provably exceeds the budget raises this
    instead of thrashing, which is how the paper's O.O.M outcomes are
    reproduced deterministically.
    """

    def __init__(self, message: str, required_bytes: int | None = None,
                 budget_bytes: int | None = None) -> None:
        super().__init__(message)
        self.required_bytes = required_bytes
        self.budget_bytes = budget_bytes


class CapacityError(TrillionGError, RuntimeError):
    """A simulated hardware resource other than memory was exhausted
    (e.g. disk capacity in the cluster cost model)."""


class GenerationError(TrillionGError, RuntimeError):
    """Edge generation failed to converge (e.g. a scope could not reach its
    requested size because the scope is smaller than the requested count)."""


class WorkerError(TrillionGError, RuntimeError):
    """A distributed worker task failed permanently.

    Raised by the fault-tolerant scheduler (:mod:`repro.dist.faults`) once
    a task has exhausted its retry budget, or by output validation when a
    worker reported success but its part file is missing/corrupt.  Carries
    the task index and the full per-attempt history so callers can see
    every crash, timeout, and fallback that led here.
    """

    def __init__(self, message: str, *, task_index: int | None = None,
                 attempts: tuple = ()) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.attempts = tuple(attempts)


class TaskTimeout(WorkerError):
    """A worker task exceeded its per-attempt wall-clock budget on every
    allowed attempt (the hung process is killed before each retry)."""

    def __init__(self, message: str, *, task_index: int | None = None,
                 attempts: tuple = (),
                 timeout_seconds: float | None = None) -> None:
        super().__init__(message, task_index=task_index, attempts=attempts)
        self.timeout_seconds = timeout_seconds


class ContractViolation(TrillionGError, AssertionError):
    """A runtime invariant checked by :mod:`repro.contracts` failed.

    Raised only when contract checking is enabled (``TRILLIONG_CONTRACTS=1``
    or :func:`repro.contracts.enable_contracts`); production runs pay no
    cost for disabled contracts.
    """
