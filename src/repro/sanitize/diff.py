"""Trace diffing: root-cause a byte divergence to the first diverging
draw or write.

``python -m repro.sanitize.diff a.json b.json`` compares two trace
artifacts written by :func:`repro.sanitize.write_trace`.  Because the
graph is a pure function of ``(params, seed, format)``, two runs of the
same configuration must record identical event streams; the first
event where they disagree *is* the root cause — everything downstream
(including the final file bytes) diverges from there.

Comparison order mirrors causality: derivations first (a different
stream key means the seeding scheme itself changed), then draws (same
streams, different values or draw order), then writes (same draws,
different encoding or write order).  Events are compared on their
run-stable projections — thread *names*, stream keys, per-file write
sequence numbers, CRC fingerprints — never on process-specific state.

Exit codes: 0 traces agree, 1 diverged, 2 unreadable input.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .trace import load_trace

__all__ = ["Divergence", "diff_traces", "main", "build_parser"]

#: (category, projection fields) in causal comparison order.  Writes
#: compare on position and content, *not* the output file name — two
#: runs of the same configuration writing to differently-named paths
#: (``run1.adj6`` vs ``run2.adj6``) must still agree.
_PROJECTIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("derivations", ("key",)),
    ("draws", ("key", "method", "crc")),
    ("writes", ("file_seq", "nbytes", "crc")),
)


@dataclass(frozen=True)
class Divergence:
    """The first point where two traces disagree."""

    category: str            #: ``derivations`` | ``draws`` | ``writes``
    index: int               #: position in the category's event list
    left: dict | None        #: event from trace A (None: A ran out)
    right: dict | None       #: event from trace B (None: B ran out)

    def render(self) -> str:
        noun = self.category.rstrip("s")
        if self.left is None:
            return (f"trace A ends at {noun} #{self.index}; trace B "
                    f"continues with {_describe(self.right)}")
        if self.right is None:
            return (f"trace B ends at {noun} #{self.index}; trace A "
                    f"continues with {_describe(self.left)}")
        return (f"first diverging {noun} at #{self.index}:\n"
                f"  A: {_describe(self.left)}\n"
                f"  B: {_describe(self.right)}")


def _describe(event: dict | None) -> str:
    if event is None:
        return "<none>"
    if "method" in event:
        return (f"{event.get('key')}.{event.get('method')}() "
                f"crc={event.get('crc')} [thread {event.get('thread')}]")
    if "file" in event:
        return (f"{event.get('file')}[{event.get('file_seq')}] "
                f"{event.get('nbytes')} bytes crc={event.get('crc')}")
    return (f"{event.get('key')} at {event.get('site')} "
            f"[thread {event.get('thread')}]")


def diff_traces(a: dict, b: dict) -> Divergence | None:
    """The first diverging event between two loaded traces, or ``None``
    when they agree on every derivation, draw, and write."""
    for category, fields in _PROJECTIONS:
        left_events = a.get(category, [])
        right_events = b.get(category, [])
        for i in range(max(len(left_events), len(right_events))):
            left = left_events[i] if i < len(left_events) else None
            right = right_events[i] if i < len(right_events) else None
            if left is None or right is None:
                return Divergence(category, i, left, right)
            if any(left.get(f) != right.get(f) for f in fields):
                return Divergence(category, i, left, right)
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitize.diff",
        description="Compare two determinism-sanitizer traces and "
                    "pinpoint the first diverging derivation, draw, or "
                    "write.")
    parser.add_argument("trace_a", type=Path, help="baseline trace JSON")
    parser.add_argument("trace_b", type=Path, help="candidate trace JSON")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        a = load_trace(args.trace_a)
        b = load_trace(args.trace_b)
    except (OSError, ValueError) as exc:
        print(f"sanitize.diff: error: {exc}", file=sys.stderr)
        return 2

    for label, doc in (("A", a), ("B", b)):
        for violation in doc.get("violations", []):
            print(f"trace {label} violation: "
                  f"[{violation.get('code')}] {violation.get('message')}")

    divergence = diff_traces(a, b)
    if divergence is None:
        counts = ", ".join(
            f"{len(a.get(c, []))} {c}" for c, _ in _PROJECTIONS)
        print(f"traces agree ({counts})")
        return 0
    print(divergence.render())
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
